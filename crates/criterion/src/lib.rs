//! Minimal stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim implements the subset of the API used by
//! `grafter-bench/benches/fusion.rs` — [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`] — with straightforward
//! wall-clock timing: each benchmark runs a small fixed number of samples
//! and reports the median iteration time to stdout. Swapping in the real
//! crate later is a one-line `Cargo.toml` change; no bench source changes.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized between measurements.
///
/// The shim times one routine invocation per batch regardless of variant,
/// so the variants only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` directly, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.times.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on a fresh input from `setup` each sample; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.times.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&mut self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.sort();
        self.times[self.times.len() / 2]
    }
}

fn report(name: &str, median: Duration) {
    println!("{name:<40} median {median:>12.3?}");
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects
    /// (ignored under `--test`, which pins every benchmark to one
    /// sample, mirroring real criterion's smoke mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Runs one benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.median());
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.median());
        self
    }

    /// Finishes the group (a no-op in the shim, kept for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            test_mode,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.median());
        self
    }

    /// Applies CLI configuration. Like real criterion, `--test` switches
    /// to smoke mode: every benchmark runs once, just to prove it works
    /// (`cargo bench -- --test`, the CI bench-smoke gate).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
            self.sample_size = 1;
        }
        self
    }

    /// Runs every registered group (invoked by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// An opaque wrapper preventing the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
