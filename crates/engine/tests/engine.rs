//! Engine/Session API contract tests: builder validation, typed errors,
//! backend parity, session overrides, batch determinism.

use grafter::{FusionOptions, Stage};
use grafter_cachesim::CacheHierarchy;
use grafter_engine::{Backend, BatchOptions, Engine};
use grafter_runtime::{Heap, NodeId, PureRegistry, Value};

/// A heterogeneous batch input (mixed closure types need boxing).
type BoxedInput = Box<dyn FnOnce(&mut Heap) -> NodeId + Send>;

const LIST: &str = r#"
    tree class Node {
        child Node* next;
        int a = 0; int b = 0;
        virtual traversal incA() {}
        virtual traversal incB() {}
    }
    tree class Cons : Node {
        traversal incA() { a = a + 1; this->next->incA(); }
        traversal incB() { b = b + 1; this->next->incB(); }
    }
    tree class End : Node { }
"#;

fn list_engine(backend: Backend) -> Engine {
    Engine::builder()
        .source(LIST)
        .entry("Node", &["incA", "incB"])
        .backend(backend)
        .build()
        .unwrap()
}

/// Builds an `n`-long Cons chain, returning its root.
fn build_chain(heap: &mut Heap, n: usize) -> NodeId {
    let mut cur = heap.alloc_by_name("End").unwrap();
    for _ in 0..n {
        let c = heap.alloc_by_name("Cons").unwrap();
        heap.set_child_by_name(c, "next", Some(cur)).unwrap();
        cur = c;
    }
    cur
}

#[test]
fn builder_rejects_missing_program_and_entry() {
    let err = Engine::builder().build().unwrap_err();
    assert_eq!(err.stage(), Stage::Config);
    assert!(err.to_string().contains("source"), "{err}");

    let err = Engine::builder().source(LIST).build().unwrap_err();
    assert_eq!(err.stage(), Stage::Config);
    assert!(err.to_string().contains("entry"), "{err}");

    let empty: &[&str] = &[];
    let err = Engine::builder()
        .source(LIST)
        .entry("Node", empty)
        .build()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Config);
}

#[test]
fn builder_surfaces_typed_compile_and_fuse_errors() {
    let err = Engine::builder()
        .source("tree class X { child Missing* c; }")
        .entry("X", &["t"])
        .build()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Sema);
    assert!(err.is_compile());
    assert!(err.span().is_some());
    assert!(err.to_string().contains('^'), "caret snippet: {err}");

    let err = Engine::builder()
        .source(LIST)
        .entry("Nope", &["incA"])
        .build()
        .unwrap_err();
    assert_eq!(err.stage(), Stage::Fuse);
    assert!(err.to_string().contains("unknown tree class"), "{err}");
}

#[test]
fn engine_compiles_and_fuses_once_with_metrics() {
    let engine = list_engine(Backend::Interp);
    let m = engine.fusion_metrics();
    assert!(m.fully_fused);
    assert_eq!(m.passes, 1);
    assert!(engine.module().is_none(), "interp tier lowers nothing");
    assert!(engine.render_cpp().contains("__stub0"));

    let vm = list_engine(Backend::Vm);
    assert!(vm.module().is_some(), "vm tier caches its module");

    let unfused = Engine::builder()
        .source(LIST)
        .entry("Node", &["incA", "incB"])
        .fusion(FusionOptions::unfused())
        .build()
        .unwrap();
    assert_eq!(unfused.fusion_metrics().passes, 2);
}

#[test]
fn sessions_run_and_backends_agree() {
    let interp = list_engine(Backend::Interp);
    let vm = list_engine(Backend::Vm);
    let mut reports = Vec::new();
    let mut snaps = Vec::new();
    for engine in [&interp, &vm] {
        let mut s = engine.session().with_cache(CacheHierarchy::tiny());
        let root = s.build_tree(|heap| build_chain(heap, 9));
        let report = s.run(root).unwrap();
        assert_eq!(report.metrics.visits, 10);
        assert_eq!(s.get_field(root, "a").unwrap(), Value::Int(1));
        assert!(report.cache.is_some());
        snaps.push(s.snapshot(root));
        reports.push(report);
    }
    assert_eq!(snaps[0], snaps[1], "backends leave identical trees");
    assert_eq!(
        reports[0].metrics, reports[1].metrics,
        "bit-identical counters"
    );
    assert_eq!(
        reports[0].cache, reports[1].cache,
        "identical cache traffic"
    );
    // Report equality itself compares outcome (not wall, not backend tag
    // — backends differ here, so compare fields above instead).
    assert_ne!(reports[0].backend, reports[1].backend);
}

#[test]
fn session_runs_repeatedly_with_fresh_counters() {
    let engine = list_engine(Backend::Vm);
    let mut s = engine.session();
    let root = s.build_tree(|heap| build_chain(heap, 4));
    let first = s.run(root).unwrap();
    let second = s.run(root).unwrap();
    assert_eq!(first, second, "counters reset between runs");
    assert_eq!(
        s.get_field(root, "a").unwrap(),
        Value::Int(2),
        "the tree itself keeps mutating"
    );
}

#[test]
fn session_wrappers_return_config_errors() {
    let engine = list_engine(Backend::Interp);
    let mut s = engine.session();
    let err = s.alloc("Nope").unwrap_err();
    assert_eq!(err.stage(), Stage::Config);
    let node = s.alloc("Cons").unwrap();
    assert_eq!(
        s.set_child(node, "prev", None).unwrap_err().stage(),
        Stage::Config
    );
    assert_eq!(
        s.set_field(node, "zzz", Value::Int(0)).unwrap_err().stage(),
        Stage::Config
    );
    assert_eq!(s.get_field(node, "zzz").unwrap_err().stage(), Stage::Config);
}

#[test]
fn runtime_failures_are_typed_runtime_errors() {
    // `Cons` recurses through `next`, which stays null: guaranteed null
    // dereference on both backends.
    let src = r#"
        tree class N {
            child N* next;
            int a = 0;
            virtual traversal t() {}
        }
        tree class C : N { traversal t() { a = this->next.a + 1; } }
        tree class E : N { }
    "#;
    for backend in [Backend::Interp, Backend::Vm] {
        let engine = Engine::builder()
            .source(src)
            .entry("N", &["t"])
            .backend(backend)
            .build()
            .unwrap();
        let mut s = engine.session();
        let root = s.alloc("C").unwrap();
        let err = s.run(root).unwrap_err();
        assert!(err.is_runtime(), "{backend}: {err}");
        assert_eq!(err.stage(), Stage::Runtime);
        assert!(err.to_string().contains("null"), "{backend}: {err}");
    }
}

#[test]
fn engine_level_pures_args_and_cache_flow_into_sessions() {
    let src = r#"
        pure int magic(int x);
        tree class N {
            child N* next;
            int a = 0;
            virtual traversal t(int seed) {}
        }
        tree class C : N { traversal t(int seed) { a = magic(seed); } }
        tree class E : N { }
    "#;
    let mut pures = PureRegistry::with_math();
    pures.register("magic", |a| Value::Int(a[0].as_i64() * 7));
    let engine = Engine::builder()
        .source(src)
        .entry("N", &["t"])
        .pures(pures)
        .args(vec![vec![Value::Int(6)]])
        .cache(CacheHierarchy::tiny())
        .build()
        .unwrap();

    let mut s = engine.session();
    let root = s.alloc("C").unwrap();
    let report = s.run(root).unwrap();
    assert_eq!(s.get_field(root, "a").unwrap(), Value::Int(42));
    assert!(
        report.cache.is_some(),
        "engine-level cache prototype applies"
    );

    // Per-session overrides win.
    let mut s = engine
        .session()
        .with_args(vec![vec![Value::Int(2)]])
        .without_cache();
    let root = s.alloc("C").unwrap();
    let report = s.run(root).unwrap();
    assert_eq!(s.get_field(root, "a").unwrap(), Value::Int(14));
    assert!(report.cache.is_none());
}

#[test]
fn run_batch_preserves_input_order_and_matches_sequential() {
    let engine = list_engine(Backend::Vm);
    // Different-sized chains so each slot's report is distinguishable.
    let sizes: Vec<usize> = (1..=12).collect();
    let inputs: Vec<_> = sizes
        .iter()
        .map(|&n| move |heap: &mut Heap| build_chain(heap, n))
        .collect();
    let sequential: Vec<_> = sizes
        .iter()
        .map(|&n| {
            let mut s = engine.session();
            let root = s.build_tree(|heap| build_chain(heap, n));
            s.run(root).unwrap()
        })
        .collect();
    for workers in [1, 4, 8] {
        let inputs = inputs.clone();
        let batch = engine
            .run_batch_with(inputs, &BatchOptions::with_workers(workers))
            .unwrap();
        assert_eq!(batch, sequential, "{workers} workers");
        for (report, &n) in batch.iter().zip(&sizes) {
            assert_eq!(report.metrics.visits, n as u64 + 1);
        }
    }
    assert!(engine
        .run_batch::<fn(&mut Heap) -> NodeId>(Vec::new())
        .unwrap()
        .is_empty());
}

#[test]
fn empty_batch_returns_no_reports() {
    let engine = list_engine(Backend::Interp);
    let none: Vec<fn(&mut Heap) -> NodeId> = Vec::new();
    assert!(engine.run_batch(none).unwrap().is_empty());
    // The worker clamp (`opts.workers.clamp(1, n)`) panics when `n == 0`;
    // the empty batch must short-circuit before it, whatever the
    // configured worker count.
    for workers in [0, 1, 8] {
        let none: Vec<fn(&mut Heap) -> NodeId> = Vec::new();
        assert!(engine
            .try_run_batch(none, &BatchOptions::with_workers(workers))
            .is_empty());
    }
    // workers == 0 on a nonempty batch clamps up to one worker.
    let one = vec![|heap: &mut Heap| build_chain(heap, 3)];
    let reports = engine
        .run_batch_with(one, &BatchOptions::with_workers(0))
        .unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].metrics.visits, 4);
}

#[test]
fn session_reset_reuses_the_arena_bit_identically() {
    for backend in [Backend::Interp, Backend::Vm] {
        let engine = list_engine(backend);
        // One pooled session serving several requests...
        let mut pooled = engine.session();
        let mut served = Vec::new();
        for _ in 0..3 {
            pooled.reset();
            let root = pooled.build_tree(|h| build_chain(h, 8));
            served.push((pooled.run(root).unwrap(), pooled.snapshot(root)));
        }
        // ...must be indistinguishable from a fresh session per request.
        let mut fresh = engine.session();
        let root = fresh.build_tree(|h| build_chain(h, 8));
        let expect = (fresh.run(root).unwrap(), fresh.snapshot(root));
        for got in &served {
            assert_eq!(got, &expect, "{backend:?}");
        }
    }
}

#[test]
fn try_run_batch_keeps_per_input_failures() {
    let src = r#"
        tree class N {
            child N* next;
            int a = 0;
            virtual traversal t() {}
        }
        tree class C : N { traversal t() { a = this->next.a + 1; } }
        tree class E : N { }
    "#;
    let engine = Engine::builder()
        .source(src)
        .entry("N", &["t"])
        .build()
        .unwrap();
    // Input 0 and 2 null-deref; input 1 is fine.
    let mk_bad = |heap: &mut Heap| heap.alloc_by_name("C").unwrap();
    let mk_ok = |heap: &mut Heap| {
        let e = heap.alloc_by_name("E").unwrap();
        let c = heap.alloc_by_name("C").unwrap();
        heap.set_child_by_name(c, "next", Some(e)).unwrap();
        c
    };
    let inputs: Vec<BoxedInput> = vec![Box::new(mk_bad), Box::new(mk_ok), Box::new(mk_bad)];
    let results = engine.try_run_batch(inputs, &BatchOptions::with_workers(3));
    assert_eq!(results.len(), 3);
    assert!(results[0].is_err() && results[2].is_err());
    assert!(results[1].is_ok());
    assert!(results[0].as_ref().unwrap_err().is_runtime());

    // run_batch surfaces the first failure by *input* order.
    let inputs: Vec<BoxedInput> = vec![Box::new(mk_ok), Box::new(mk_bad)];
    let err = engine.run_batch(inputs).unwrap_err();
    assert!(err.is_runtime());
}

#[test]
fn warnings_survive_to_the_engine_deduplicated() {
    let src = format!("pure int mystery(int x);\n{LIST}");
    let engine = Engine::builder()
        .source(src)
        .entry("Node", &["incA"])
        .build()
        .unwrap();
    assert_eq!(engine.warnings().len(), 1);
    assert!(engine.warnings()[0].message.contains("never called"));
}

#[test]
fn opt_level_defaults_to_o2_and_is_configurable() {
    use grafter_engine::OptLevel;

    let default = list_engine(Backend::Vm);
    assert_eq!(default.opt_level(), OptLevel::O2);
    assert_eq!(default.module().unwrap().opt_report().level, OptLevel::O2);

    let o0 = Engine::builder()
        .source(LIST)
        .entry("Node", &["incA", "incB"])
        .backend(Backend::Vm)
        .opt_level(OptLevel::O0)
        .build()
        .unwrap();
    assert_eq!(o0.opt_level(), OptLevel::O0);
    assert!(o0.module().unwrap().opt_report().passes.is_empty());
    // Optimization strictly shrinks this module (superinstructions fire
    // on the increment-and-recurse bodies).
    assert!(default.module().unwrap().n_ops() < o0.module().unwrap().n_ops());
}

#[test]
fn opt_level_is_excluded_from_report_equality() {
    use grafter_engine::OptLevel;

    let run_at = |level: OptLevel| {
        let engine = Engine::builder()
            .source(LIST)
            .entry("Node", &["incA", "incB"])
            .backend(Backend::Vm)
            .opt_level(level)
            .build()
            .unwrap();
        let mut session = engine.session();
        let root = session.build_tree(|h| build_chain(h, 16));
        let report = session.run(root).expect("runs");
        (report, session.snapshot(root))
    };
    let (r0, s0) = run_at(OptLevel::O0);
    let (r2, s2) = run_at(OptLevel::O2);
    assert_eq!(r0.opt_level, OptLevel::O0);
    assert_eq!(r2.opt_level, OptLevel::O2);
    // The optimizer's bit-identity contract, observed through the API.
    assert_eq!(r0, r2);
    assert_eq!(s0, s2);
    // Display names the tier and level for VM runs.
    assert!(format!("{r2}").starts_with("[vm O2]"));
}
