//! Per-request execution contexts over a shared engine.

use std::time::Instant;

use grafter::{Diag, Error, Stage};
use grafter_cachesim::CacheHierarchy;
use grafter_obs::{ExecCounters, RunTrace, TierProfile};
use grafter_runtime::{Heap, Interp, NodeId, PureRegistry, SnapValue, Value};
use grafter_vm::{Backend, Jit, JitMode, Vm};

use crate::engine::Engine;
use crate::par::{ParHost, ParallelOptions};
use crate::report::Report;

/// One request's execution context: a heap plus run configuration,
/// borrowed from a shared [`Engine`].
///
/// Sessions are cheap to open and independent of each other — each owns
/// its heap and (when attached) its simulated cache, so any number can
/// run concurrently against one `Arc<Engine>`. Configuration defaults
/// come from the engine (pures, entry arguments, cache prototype) and can
/// be overridden per session with the `with_*` builders.
///
/// Tree construction goes through the session's typed wrappers
/// ([`Session::alloc`], [`Session::set_child`], [`Session::set_field`])
/// or directly through [`Session::heap_mut`] for bulk builders.
pub struct Session<'e> {
    engine: &'e Engine,
    heap: Heap,
    pures: Option<PureRegistry>,
    args: Option<Vec<Vec<Value>>>,
    cache: Option<CacheHierarchy>,
    parallel: Option<ParallelOptions>,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine) -> Self {
        Session::on(engine, engine.new_heap())
    }

    pub(crate) fn on(engine: &'e Engine, heap: Heap) -> Self {
        Session {
            engine,
            heap,
            pures: None,
            args: None,
            cache: engine.cache.clone(),
            parallel: None,
        }
    }

    /// The engine this session runs against.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The session's heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the session's heap (bulk tree builders).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Replaces the pure registry for this session only.
    pub fn with_pures(mut self, pures: PureRegistry) -> Self {
        self.pures = Some(pures);
        self
    }

    /// Replaces the per-traversal entry arguments for this session only.
    pub fn with_args(mut self, args: Vec<Vec<Value>>) -> Self {
        self.args = Some(args);
        self
    }

    /// Attaches (or replaces) a cache-model prototype for this session; a
    /// fresh clone simulates each run, and the run's [`Report`] carries
    /// its statistics.
    pub fn with_cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Detaches cache simulation for this session (overriding an
    /// engine-level prototype).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Overrides the engine's intra-tree parallelism for this session
    /// only. With more than one worker (and no cache model attached),
    /// statically certified independent sibling subtrees fork across the
    /// persistent worker pool; results stay bit-identical to a
    /// sequential run.
    pub fn with_parallel(mut self, parallel: ParallelOptions) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Allocates a node of `class`.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Config`] error when the class name does not
    /// resolve.
    pub fn alloc(&mut self, class: &str) -> Result<NodeId, Error> {
        self.heap
            .alloc_by_name(class)
            .ok_or_else(|| self.config_error(format!("unknown tree class `{class}`")))
    }

    /// Sets child field `field` of `node` (`None` = null).
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Config`] error when the field does not resolve
    /// on the node's class.
    pub fn set_child(
        &mut self,
        node: NodeId,
        field: &str,
        child: Option<NodeId>,
    ) -> Result<(), Error> {
        self.heap
            .set_child_by_name(node, field, child)
            .map(|_| ())
            .ok_or_else(|| self.config_error(format!("unknown child field `{field}`")))
    }

    /// Sets data field `field` of `node` (dotted struct paths allowed,
    /// e.g. `"Text.Length"`).
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Config`] error when the field does not resolve
    /// on the node's class.
    pub fn set_field(&mut self, node: NodeId, field: &str, value: Value) -> Result<(), Error> {
        self.heap
            .set_by_name(node, field, value)
            .ok_or_else(|| self.config_error(format!("unknown field `{field}`")))
    }

    /// Reads data field `field` of `node`.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Config`] error when the field does not resolve
    /// on the node's class.
    pub fn get_field(&self, node: NodeId, field: &str) -> Result<Value, Error> {
        self.heap
            .get_by_name(node, field)
            .ok_or_else(|| self.config_error(format!("unknown field `{field}`")))
    }

    /// Runs an arbitrary tree builder against the session's heap and
    /// returns the root it produced.
    pub fn build_tree(&mut self, build: impl FnOnce(&mut Heap) -> NodeId) -> NodeId {
        build(&mut self.heap)
    }

    /// Clears the session's heap for the next input while keeping the
    /// arena's capacity, so a session serving many requests allocates
    /// only while its largest tree is still growing the pool.
    ///
    /// A reset session is observationally identical to a fresh one: the
    /// next tree gets the same simulated addresses, so `Report`s and
    /// snapshots are bit-identical to an un-pooled run. Per-session
    /// overrides (pures, args, cache) are kept.
    pub fn reset(&mut self) {
        self.heap.reset();
    }

    /// A value-semantics snapshot of the subtree under `root` (class name
    /// plus slot values per node, pre-order) — the heap-state fingerprint
    /// the differential and concurrency suites compare.
    pub fn snapshot(&self, root: NodeId) -> Vec<(String, Vec<SnapValue>)> {
        self.heap.snapshot(root)
    }

    /// Executes the engine's fused program on `root`, collecting a
    /// [`Report`].
    ///
    /// Can be called repeatedly (e.g. on a tree the previous run
    /// mutated); each run gets fresh counters and, when a cache model is
    /// attached, a fresh simulated cache.
    ///
    /// # Errors
    ///
    /// Returns a [`Stage::Runtime`] [`Error`] on null dereferences,
    /// missing pure implementations or unresolvable dispatch — rendered
    /// identically for both backends.
    pub fn run(&mut self, root: NodeId) -> Result<Report, Error> {
        let engine = self.engine;
        let args = self.args.as_ref().unwrap_or(&engine.args);
        let pures = self.pures.as_ref().unwrap_or(&engine.pures).clone();
        let cache = self.cache.clone();
        let runtime_err = |e: grafter_runtime::RuntimeError| {
            Error::from_diag(
                Diag::error_global(Stage::Runtime, e.to_string()),
                &engine.src,
            )
        };

        let global_names = engine.program().globals.iter().map(|g| g.name.clone());
        // Run-side profiling exists only when the engine has a probe; the
        // unprobed paths are exactly the pre-observability ones (the VM
        // hooks monomorphize away, the jit compiles without counters).
        let probing = engine.probe.is_some();
        // Intra-tree parallelism: fork statically certified independent
        // sibling subtrees across the worker pool. Only without a cache
        // model (cache simulation is address-ordered) and only when the
        // program has at least one certified parallel-safe call run;
        // everything observable — snapshots, metrics, globals — is
        // bit-identical to the sequential path below.
        let par = self
            .parallel
            .clone()
            .unwrap_or_else(|| engine.parallel.clone());
        let use_parallel = par.workers > 1 && cache.is_none() && engine.fused.par.any_parallel();
        // `wall` times the execution alone; executor setup and the
        // post-run globals readout stay outside the measured region.
        let (metrics, cache_stats, globals, wall, profile) = if use_parallel {
            // The orchestrator interprets the top `fork_depth` levels and
            // hands whole subtrees to the engine's tier below them; the
            // cross-tier metric model is bit-identical, so each tier's
            // sequential report is reproduced exactly.
            let mut host = ParHost::new(engine, par, pures.clone(), probing);
            let mut interp = Interp::with_pures(&engine.fused, pures);
            if probing && matches!(engine.backend, Backend::Interp) {
                interp = interp.with_class_counts();
            }
            let start = Instant::now();
            interp
                .run_with_host(&mut self.heap, root, args, &mut host)
                .map_err(runtime_err)?;
            let wall = start.elapsed();
            let globals = global_names
                .map(|name| {
                    let value = interp.global(&name).expect("declared global resolves");
                    (name, value)
                })
                .collect();
            let metrics = match engine.backend {
                // Release-mode JIT reports visits only; the interpreted
                // fork levels must not leak full counts into its report.
                Backend::Jit(JitMode::Release) => {
                    crate::par::release_visits_only(interp.metrics.clone())
                }
                _ => interp.metrics.clone(),
            };
            let profile = match engine.backend {
                Backend::Interp => interp.take_class_counts().map(|counts| TierProfile {
                    class_visits: engine
                        .program()
                        .classes
                        .iter()
                        .zip(counts)
                        .filter(|&(_, n)| n > 0)
                        .map(|(c, n)| (c.name.clone(), n))
                        .collect(),
                    ..TierProfile::default()
                }),
                // Compiled-tier histograms cover the subtrees the tier
                // executed (per-worker counters merged at join); the
                // interpreted fork levels contribute no per-site rows.
                Backend::Vm => host.take_exec_counters().map(|c| {
                    engine
                        .module
                        .as_ref()
                        .expect("vm engine holds its module (lowered at build)")
                        .profile(&c)
                }),
                Backend::Jit(_) => host.take_chain_counters().map(|c| {
                    engine
                        .jit
                        .as_ref()
                        .expect("jit engine holds its closure program (compiled at build)")
                        .profile(
                            &c,
                            engine
                                .module
                                .as_ref()
                                .expect("jit engine holds its module (lowered at build)"),
                        )
                }),
            };
            (metrics, None, globals, wall, profile)
        } else {
            match engine.backend {
                Backend::Interp => {
                    let mut interp = Interp::with_pures(&engine.fused, pures);
                    if let Some(cache) = cache {
                        interp = interp.with_cache(cache);
                    }
                    if probing {
                        interp = interp.with_class_counts();
                    }
                    let start = Instant::now();
                    interp
                        .run(&mut self.heap, root, args)
                        .map_err(runtime_err)?;
                    let wall = start.elapsed();
                    let globals = global_names
                        .map(|name| {
                            let value = interp.global(&name).expect("declared global resolves");
                            (name, value)
                        })
                        .collect();
                    let profile = interp.take_class_counts().map(|counts| TierProfile {
                        class_visits: engine
                            .program()
                            .classes
                            .iter()
                            .zip(counts)
                            .filter(|&(_, n)| n > 0)
                            .map(|(c, n)| (c.name.clone(), n))
                            .collect(),
                        ..TierProfile::default()
                    });
                    (
                        interp.metrics,
                        interp.cache.as_ref().map(CacheHierarchy::stats),
                        globals,
                        wall,
                        profile,
                    )
                }
                Backend::Vm => {
                    let module = engine
                        .module
                        .as_ref()
                        .expect("vm engine holds its module (lowered at build)");
                    let mut vm = Vm::with_pures(module, pures);
                    if let Some(cache) = cache {
                        vm = vm.with_cache(cache);
                    }
                    let start = Instant::now();
                    let profile = if probing {
                        let mut counters = ExecCounters::new(module.n_functions(), module.n_ops());
                        vm.run_probed(&mut self.heap, root, args, &mut counters)
                            .map_err(runtime_err)?;
                        Some(module.profile(&counters))
                    } else {
                        vm.run(&mut self.heap, root, args).map_err(runtime_err)?;
                        None
                    };
                    let wall = start.elapsed();
                    let globals = global_names
                        .map(|name| {
                            let value = vm.global(&name).expect("declared global resolves");
                            (name, value)
                        })
                        .collect();
                    (
                        vm.metrics,
                        vm.cache.as_ref().map(CacheHierarchy::stats),
                        globals,
                        wall,
                        profile,
                    )
                }
                Backend::Jit(_) => {
                    let program = engine
                        .jit
                        .as_ref()
                        .expect("jit engine holds its closure program (compiled at build)");
                    let mut jit = Jit::with_pures(program, pures);
                    if let Some(cache) = cache {
                        jit = jit.with_cache(cache);
                    }
                    if probing {
                        jit = jit.with_counters();
                    }
                    let start = Instant::now();
                    jit.run(&mut self.heap, root, args).map_err(runtime_err)?;
                    let wall = start.elapsed();
                    let globals = global_names
                        .map(|name| {
                            let value = jit.global(&name).expect("declared global resolves");
                            (name, value)
                        })
                        .collect();
                    let module = engine
                        .module
                        .as_ref()
                        .expect("jit engine holds its module (lowered at build)");
                    let profile = jit.take_counters().map(|c| program.profile(&c, module));
                    (
                        jit.metrics().clone(),
                        jit.cache().map(CacheHierarchy::stats),
                        globals,
                        wall,
                        profile,
                    )
                }
            }
        };
        let trace = profile.map(|profile| {
            Box::new(RunTrace {
                tier: engine.backend.to_string(),
                wall,
                profile,
            })
        });
        if let (Some(probe), Some(trace)) = (&engine.probe, &trace) {
            probe.on_run(trace);
        }
        Ok(Report {
            backend: engine.backend,
            opt_level: engine.opt_level,
            fusion: engine.fusion,
            metrics,
            cache: cache_stats,
            globals,
            wall,
            trace,
        })
    }

    /// Consumes the session into its heap (e.g. to hand the mutated tree
    /// to a follow-up engine).
    pub fn into_heap(self) -> Heap {
        self.heap
    }

    fn config_error(&self, message: String) -> Error {
        Error::from_diag(Diag::error_global(Stage::Config, message), &self.engine.src)
    }
}
