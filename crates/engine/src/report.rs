//! The unified result of one engine run.

use std::fmt;
use std::time::Duration;

use grafter::FusionMetrics;
use grafter_cachesim::HierarchyStats;
use grafter_obs::json::JsonWriter;
use grafter_runtime::{Metrics, Value};
use grafter_vm::{Backend, OptLevel};

/// Everything one run produced, in one struct.
///
/// Earlier API generations scattered this across four places:
/// compile-side [`FusionMetrics`] on the artifact, runtime [`Metrics`]
/// from the interpreter, cache statistics on the optional hierarchy, and
/// wall-clock measured by each caller. A `Report` carries all of them.
///
/// # Equality
///
/// `PartialEq` compares the *deterministic outcome* — backend, fusion
/// metrics, runtime counters and simulated cache traffic — and ignores
/// [`Report::wall`], which varies run to run, and [`Report::opt_level`],
/// which by the optimizer's bit-identity contract cannot change the
/// outcome (the differential suites assert exactly this by comparing
/// `O0`/`O1`/`O2` reports). Two runs of the same program on identical
/// trees compare equal even across threads; this is what the concurrency
/// test suite asserts.
#[derive(Clone, Debug)]
pub struct Report {
    /// The execution tier that ran.
    pub backend: Backend,
    /// Bytecode optimization level of the engine's module (excluded from
    /// equality; meaningful on [`Backend::Vm`]).
    pub opt_level: OptLevel,
    /// Compile-side fusion statistics of the engine's program.
    pub fusion: FusionMetrics,
    /// The run's performance counters (visits, instructions, loads,
    /// stores).
    pub metrics: Metrics,
    /// Simulated cache traffic, when the engine/session attached a cache
    /// model.
    pub cache: Option<HierarchyStats>,
    /// Final values of the program's global variables after the run, in
    /// declaration order — how global accumulators (e.g. the kd-tree
    /// workload's `INTEGRAL`) surface without access to the executor.
    pub globals: Vec<(String, Value)>,
    /// Wall-clock time of the execution (excluded from equality).
    pub wall: Duration,
    /// Runtime profile of the run — `Some` exactly when the engine has a
    /// probe attached (excluded from equality: profiles describe *how*
    /// the run executed, not its deterministic outcome; the parity suite
    /// asserts probed and unprobed reports compare equal).
    pub trace: Option<Box<grafter_obs::RunTrace>>,
}

impl Report {
    /// Modelled runtime in cycles: instructions plus memory stalls when a
    /// cache was attached, bare instructions otherwise.
    pub fn cycles(&self) -> u64 {
        match &self.cache {
            Some(stats) => self.metrics.cycles(stats),
            None => self.metrics.instructions,
        }
    }

    /// Throughput of this run in visits per second of wall time.
    pub fn visits_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.metrics.visits as f64 / secs
        }
    }

    /// The final value of global variable `name` after the run.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as one JSON object (what `grafterc --run
    /// --json` prints and what the `grafter-server` protocol streams).
    /// Built on the shared [`grafter_obs::json::JsonWriter`] with stable
    /// keys; durations are nanoseconds, and the `trace` key is non-null
    /// exactly when the run was probed.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_obj();
        w.key("backend").str(&self.backend.to_string());
        w.key("opt_level").str(&self.opt_level.to_string());
        let f = &self.fusion;
        w.key("fusion").begin_obj();
        w.key("functions").num(f.functions);
        w.key("stubs").num(f.stubs);
        w.key("passes").num(f.passes);
        w.key("fully_fused").bool(f.fully_fused);
        w.key("fused_pairs").num(f.fused_pairs);
        w.key("missed_pairs").num(f.missed_pairs);
        w.key("blocked_pairs").num(f.blocked_pairs);
        w.end_obj();
        let m = &self.metrics;
        w.key("metrics").begin_obj();
        w.key("visits").num(m.visits);
        w.key("instructions").num(m.instructions);
        w.key("loads").num(m.loads);
        w.key("stores").num(m.stores);
        w.end_obj();
        w.key("cycles").num(self.cycles());
        match &self.cache {
            None => w.key("cache").null(),
            Some(c) => {
                w.key("cache").begin_obj();
                w.key("accesses").num(c.accesses);
                w.key("cycles").num(c.cycles);
                w.key("levels").begin_arr();
                for l in &c.levels {
                    w.begin_obj();
                    w.key("hits").num(l.hits);
                    w.key("misses").num(l.misses);
                    w.end_obj();
                }
                w.end_arr();
                w.end_obj()
            }
        };
        w.key("globals").begin_arr();
        for (name, value) in &self.globals {
            w.begin_obj();
            w.key("name").str(name);
            w.key("value");
            write_value(&mut w, value);
            w.end_obj();
        }
        w.end_arr();
        w.key("wall_ns").num(self.wall.as_nanos());
        match &self.trace {
            None => w.key("trace").null(),
            Some(t) => {
                w.key("trace").begin_obj();
                w.key("tier").str(&t.tier);
                w.key("wall_ns").num(t.wall.as_nanos());
                let named = |w: &mut JsonWriter, key: &str, rows: &[(String, u64)]| {
                    w.key(key).begin_arr();
                    for (name, n) in rows {
                        w.begin_obj();
                        w.key("name").str(name);
                        w.key("count").num(*n);
                        w.end_obj();
                    }
                    w.end_arr();
                };
                named(&mut w, "func_hits", &t.profile.func_hits);
                named(&mut w, "block_hits", &t.profile.block_hits);
                named(&mut w, "class_visits", &t.profile.class_visits);
                w.key("op_fires").begin_arr();
                for op in &t.profile.op_fires {
                    w.begin_obj();
                    w.key("name").str(&op.name);
                    w.key("fires").num(op.fires);
                    w.key("superinstruction").bool(op.superinstruction);
                    w.end_obj();
                }
                w.end_arr();
                w.end_obj()
            }
        };
        w.end_obj();
        w.finish()
    }
}

/// Writes a [`Value`] as a JSON literal (node refs become their id, null
/// refs `null`; non-finite floats fall back to a quoted string to keep
/// the document parseable).
fn write_value(w: &mut JsonWriter, v: &Value) {
    match v {
        Value::Int(i) => w.num(*i),
        Value::Float(x) => w.float(*x),
        Value::Bool(b) => w.bool(*b),
        Value::Ref(None) => w.null(),
        Value::Ref(Some(n)) => w.num(n.0),
    };
}

impl PartialEq for Report {
    /// Deterministic-outcome equality; see the type docs. `wall` and
    /// `opt_level` are intentionally ignored.
    fn eq(&self, other: &Self) -> bool {
        self.backend == other.backend
            && self.fusion == other.fusion
            && self.metrics == other.metrics
            && self.cache == other.cache
            && self.globals == other.globals
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.backend == Backend::Interp {
            write!(f, "[{}]", self.backend)?;
        } else {
            // Compiled tiers (vm, jit, jit-release) name the bytecode
            // level their module was optimized at.
            write!(f, "[{} {}]", self.backend, self.opt_level)?;
        }
        write!(
            f,
            " {} visit(s), {} instruction(s), {} load(s), {} store(s)",
            self.metrics.visits, self.metrics.instructions, self.metrics.loads, self.metrics.stores
        )?;
        if let Some(cache) = &self.cache {
            write!(f, ", {} cache access(es)", cache.accesses)?;
        }
        write!(f, ", {} cycle(s), {:?} wall", self.cycles(), self.wall)
    }
}
