//! The unified result of one engine run.

use std::fmt;
use std::time::Duration;

use grafter::FusionMetrics;
use grafter_cachesim::HierarchyStats;
use grafter_runtime::{Metrics, Value};
use grafter_vm::{Backend, OptLevel};

/// Everything one run produced, in one struct.
///
/// Earlier API generations scattered this across four places:
/// compile-side [`FusionMetrics`] on the artifact, runtime [`Metrics`]
/// from the interpreter, cache statistics on the optional hierarchy, and
/// wall-clock measured by each caller. A `Report` carries all of them.
///
/// # Equality
///
/// `PartialEq` compares the *deterministic outcome* — backend, fusion
/// metrics, runtime counters and simulated cache traffic — and ignores
/// [`Report::wall`], which varies run to run, and [`Report::opt_level`],
/// which by the optimizer's bit-identity contract cannot change the
/// outcome (the differential suites assert exactly this by comparing
/// `O0`/`O1`/`O2` reports). Two runs of the same program on identical
/// trees compare equal even across threads; this is what the concurrency
/// test suite asserts.
#[derive(Clone, Debug)]
pub struct Report {
    /// The execution tier that ran.
    pub backend: Backend,
    /// Bytecode optimization level of the engine's module (excluded from
    /// equality; meaningful on [`Backend::Vm`]).
    pub opt_level: OptLevel,
    /// Compile-side fusion statistics of the engine's program.
    pub fusion: FusionMetrics,
    /// The run's performance counters (visits, instructions, loads,
    /// stores).
    pub metrics: Metrics,
    /// Simulated cache traffic, when the engine/session attached a cache
    /// model.
    pub cache: Option<HierarchyStats>,
    /// Final values of the program's global variables after the run, in
    /// declaration order — how global accumulators (e.g. the kd-tree
    /// workload's `INTEGRAL`) surface without access to the executor.
    pub globals: Vec<(String, Value)>,
    /// Wall-clock time of the execution (excluded from equality).
    pub wall: Duration,
}

impl Report {
    /// Modelled runtime in cycles: instructions plus memory stalls when a
    /// cache was attached, bare instructions otherwise.
    pub fn cycles(&self) -> u64 {
        match &self.cache {
            Some(stats) => self.metrics.cycles(stats),
            None => self.metrics.instructions,
        }
    }

    /// Throughput of this run in visits per second of wall time.
    pub fn visits_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.metrics.visits as f64 / secs
        }
    }

    /// The final value of global variable `name` after the run.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

impl PartialEq for Report {
    /// Deterministic-outcome equality; see the type docs. `wall` and
    /// `opt_level` are intentionally ignored.
    fn eq(&self, other: &Self) -> bool {
        self.backend == other.backend
            && self.fusion == other.fusion
            && self.metrics == other.metrics
            && self.cache == other.cache
            && self.globals == other.globals
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.backend == Backend::Interp {
            write!(f, "[{}]", self.backend)?;
        } else {
            // Compiled tiers (vm, jit, jit-release) name the bytecode
            // level their module was optimized at.
            write!(f, "[{} {}]", self.backend, self.opt_level)?;
        }
        write!(
            f,
            " {} visit(s), {} instruction(s), {} load(s), {} store(s)",
            self.metrics.visits, self.metrics.instructions, self.metrics.loads, self.metrics.stores
        )?;
        if let Some(cache) = &self.cache {
            write!(f, ", {} cache access(es)", cache.accesses)?;
        }
        write!(f, ", {} cycle(s), {:?} wall", self.cycles(), self.wall)
    }
}
