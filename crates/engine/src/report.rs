//! The unified result of one engine run.

use std::fmt;
use std::time::Duration;

use grafter::FusionMetrics;
use grafter_cachesim::HierarchyStats;
use grafter_runtime::{Metrics, Value};
use grafter_vm::{Backend, OptLevel};

/// Everything one run produced, in one struct.
///
/// Earlier API generations scattered this across four places:
/// compile-side [`FusionMetrics`] on the artifact, runtime [`Metrics`]
/// from the interpreter, cache statistics on the optional hierarchy, and
/// wall-clock measured by each caller. A `Report` carries all of them.
///
/// # Equality
///
/// `PartialEq` compares the *deterministic outcome* — backend, fusion
/// metrics, runtime counters and simulated cache traffic — and ignores
/// [`Report::wall`], which varies run to run, and [`Report::opt_level`],
/// which by the optimizer's bit-identity contract cannot change the
/// outcome (the differential suites assert exactly this by comparing
/// `O0`/`O1`/`O2` reports). Two runs of the same program on identical
/// trees compare equal even across threads; this is what the concurrency
/// test suite asserts.
#[derive(Clone, Debug)]
pub struct Report {
    /// The execution tier that ran.
    pub backend: Backend,
    /// Bytecode optimization level of the engine's module (excluded from
    /// equality; meaningful on [`Backend::Vm`]).
    pub opt_level: OptLevel,
    /// Compile-side fusion statistics of the engine's program.
    pub fusion: FusionMetrics,
    /// The run's performance counters (visits, instructions, loads,
    /// stores).
    pub metrics: Metrics,
    /// Simulated cache traffic, when the engine/session attached a cache
    /// model.
    pub cache: Option<HierarchyStats>,
    /// Final values of the program's global variables after the run, in
    /// declaration order — how global accumulators (e.g. the kd-tree
    /// workload's `INTEGRAL`) surface without access to the executor.
    pub globals: Vec<(String, Value)>,
    /// Wall-clock time of the execution (excluded from equality).
    pub wall: Duration,
    /// Runtime profile of the run — `Some` exactly when the engine has a
    /// probe attached (excluded from equality: profiles describe *how*
    /// the run executed, not its deterministic outcome; the parity suite
    /// asserts probed and unprobed reports compare equal).
    pub trace: Option<Box<grafter_obs::RunTrace>>,
}

impl Report {
    /// Modelled runtime in cycles: instructions plus memory stalls when a
    /// cache was attached, bare instructions otherwise.
    pub fn cycles(&self) -> u64 {
        match &self.cache {
            Some(stats) => self.metrics.cycles(stats),
            None => self.metrics.instructions,
        }
    }

    /// Throughput of this run in visits per second of wall time.
    pub fn visits_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.metrics.visits as f64 / secs
        }
    }

    /// The final value of global variable `name` after the run.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as one JSON object (what `grafterc --run
    /// --json` prints). Hand-rolled — the repro vendors no serde — with
    /// stable keys; durations are nanoseconds, and the `trace` key is
    /// non-null exactly when the run was probed.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let esc = grafter_obs::chrome::escape;
        let mut o = String::with_capacity(512);
        let _ = write!(
            o,
            "{{\"backend\":\"{}\",\"opt_level\":\"{}\"",
            self.backend, self.opt_level
        );
        let f = &self.fusion;
        let _ = write!(
            o,
            ",\"fusion\":{{\"functions\":{},\"stubs\":{},\"passes\":{},\"fully_fused\":{},\
             \"fused_pairs\":{},\"missed_pairs\":{}}}",
            f.functions, f.stubs, f.passes, f.fully_fused, f.fused_pairs, f.missed_pairs
        );
        let m = &self.metrics;
        let _ = write!(
            o,
            ",\"metrics\":{{\"visits\":{},\"instructions\":{},\"loads\":{},\"stores\":{}}}",
            m.visits, m.instructions, m.loads, m.stores
        );
        let _ = write!(o, ",\"cycles\":{}", self.cycles());
        match &self.cache {
            None => o.push_str(",\"cache\":null"),
            Some(c) => {
                let _ = write!(
                    o,
                    ",\"cache\":{{\"accesses\":{},\"cycles\":{},\"levels\":[",
                    c.accesses, c.cycles
                );
                for (i, l) in c.levels.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let _ = write!(o, "{{\"hits\":{},\"misses\":{}}}", l.hits, l.misses);
                }
                o.push_str("]}");
            }
        }
        o.push_str(",\"globals\":[");
        for (i, (name, value)) in self.globals.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"name\":\"{}\",\"value\":{}}}",
                esc(name),
                json_value(value)
            );
        }
        let _ = write!(o, "],\"wall_ns\":{}", self.wall.as_nanos());
        match &self.trace {
            None => o.push_str(",\"trace\":null"),
            Some(t) => {
                let _ = write!(
                    o,
                    ",\"trace\":{{\"tier\":\"{}\",\"wall_ns\":{}",
                    esc(&t.tier),
                    t.wall.as_nanos()
                );
                let named = |o: &mut String, key: &str, rows: &[(String, u64)]| {
                    let _ = write!(o, ",\"{key}\":[");
                    for (i, (name, n)) in rows.iter().enumerate() {
                        if i > 0 {
                            o.push(',');
                        }
                        let _ = write!(o, "{{\"name\":\"{}\",\"count\":{n}}}", esc(name));
                    }
                    o.push(']');
                };
                named(&mut o, "func_hits", &t.profile.func_hits);
                named(&mut o, "block_hits", &t.profile.block_hits);
                named(&mut o, "class_visits", &t.profile.class_visits);
                o.push_str(",\"op_fires\":[");
                for (i, op) in t.profile.op_fires.iter().enumerate() {
                    if i > 0 {
                        o.push(',');
                    }
                    let _ = write!(
                        o,
                        "{{\"name\":\"{}\",\"fires\":{},\"superinstruction\":{}}}",
                        esc(&op.name),
                        op.fires,
                        op.superinstruction
                    );
                }
                o.push_str("]}");
            }
        }
        o.push('}');
        o
    }
}

/// A [`Value`] as a JSON literal (node refs become their id, null refs
/// `null`; non-finite floats fall back to a quoted string to keep the
/// document parseable).
fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(x) if x.is_finite() => format!("{x}"),
        Value::Float(x) => format!("\"{x}\""),
        Value::Bool(b) => b.to_string(),
        Value::Ref(None) => "null".to_string(),
        Value::Ref(Some(n)) => n.0.to_string(),
    }
}

impl PartialEq for Report {
    /// Deterministic-outcome equality; see the type docs. `wall` and
    /// `opt_level` are intentionally ignored.
    fn eq(&self, other: &Self) -> bool {
        self.backend == other.backend
            && self.fusion == other.fusion
            && self.metrics == other.metrics
            && self.cache == other.cache
            && self.globals == other.globals
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.backend == Backend::Interp {
            write!(f, "[{}]", self.backend)?;
        } else {
            // Compiled tiers (vm, jit, jit-release) name the bytecode
            // level their module was optimized at.
            write!(f, "[{} {}]", self.backend, self.opt_level)?;
        }
        write!(
            f,
            " {} visit(s), {} instruction(s), {} load(s), {} store(s)",
            self.metrics.visits, self.metrics.instructions, self.metrics.loads, self.metrics.stores
        )?;
        if let Some(cache) = &self.cache {
            write!(f, ", {} cache access(es)", cache.accesses)?;
        }
        write!(f, ", {} cycle(s), {:?} wall", self.cycles(), self.wall)
    }
}
