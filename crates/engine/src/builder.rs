//! Engine configuration and the build step that compiles everything once.

use std::sync::Arc;
use std::time::{Duration, Instant};

use grafter::pipeline::Compiled;
use grafter::{fuse, Error, FusionMetrics, FusionOptions};
use grafter_obs::{CompileTrace, Probe, Span};
use grafter_runtime::{Layouts, PureRegistry, Value};
use grafter_vm::{jit, lower_with, Backend, OptLevel, VmOptions};

use crate::engine::Engine;
use grafter_cachesim::CacheHierarchy;

/// Configures and builds an [`Engine`].
///
/// Two inputs are required: the program (via [`EngineBuilder::source`] or
/// a pre-compiled [`EngineBuilder::compiled`] artifact) and the entry
/// sequence ([`EngineBuilder::entry`]). Everything else has defaults:
/// fusion on with the paper's cutoffs, the interpreter backend, math
/// pures, no entry arguments, no cache simulation.
///
/// [`EngineBuilder::build`] is the single compile-everything-once step:
/// frontend (when given source), fusion compiler, and — on
/// [`Backend::Vm`] — bytecode lowering each run exactly once, however
/// many sessions and threads the engine later serves.
#[derive(Default)]
pub struct EngineBuilder {
    source: Option<String>,
    compiled: Option<Compiled>,
    root: Option<String>,
    passes: Vec<String>,
    fusion: Option<FusionOptions>,
    backend: Backend,
    opt_level: OptLevel,
    pures: Option<PureRegistry>,
    args: Vec<Vec<Value>>,
    cache: Option<CacheHierarchy>,
    probe: Option<Arc<dyn Probe>>,
    parallel: Option<crate::par::ParallelOptions>,
}

impl EngineBuilder {
    pub(crate) fn new() -> Self {
        EngineBuilder::default()
    }

    /// The DSL source to compile. Mutually exclusive with
    /// [`EngineBuilder::compiled`] (the compiled artifact wins).
    pub fn source(mut self, src: impl Into<String>) -> Self {
        self.source = Some(src.into());
        self
    }

    /// A pre-compiled frontend artifact (skips re-running the frontend
    /// when many engines share one program, e.g. fused + unfused pairs).
    pub fn compiled(mut self, compiled: Compiled) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// The entry sequence: traversals invoked back-to-back on a root of
    /// static type `root_class`.
    pub fn entry<S: AsRef<str>>(mut self, root_class: impl Into<String>, passes: &[S]) -> Self {
        self.root = Some(root_class.into());
        self.passes = passes.iter().map(|p| p.as_ref().to_string()).collect();
        self
    }

    /// Fusion knobs (defaults to [`FusionOptions::default`]; pass
    /// [`FusionOptions::unfused`] for the one-pass-per-traversal
    /// baseline).
    pub fn fusion(mut self, opts: FusionOptions) -> Self {
        self.fusion = Some(opts);
        self
    }

    /// The execution tier (default: [`Backend::Interp`]). On
    /// [`Backend::Vm`] the build lowers the bytecode module, once.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Bytecode optimization level of the VM tier (default
    /// [`OptLevel::O2`]; ignored by the interpreter backend).
    ///
    /// Whatever the level, execution stays observationally bit-identical
    /// — same snapshots, [`Report`](crate::Report) metrics and cache
    /// traffic — optimization only sheds dispatch overhead.
    pub fn opt_level(mut self, opt_level: OptLevel) -> Self {
        self.opt_level = opt_level;
        self
    }

    /// Replaces the default math pure registry for every session.
    pub fn pures(mut self, pures: PureRegistry) -> Self {
        self.pures = Some(pures);
        self
    }

    /// Default per-traversal entry arguments for every session
    /// (overridable per session with `Session::with_args`).
    pub fn args(mut self, args: Vec<Vec<Value>>) -> Self {
        self.args = args;
        self
    }

    /// Attaches a cache-hierarchy prototype: every session starts with a
    /// fresh clone and its report carries the simulated traffic.
    pub fn cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches an observability probe (e.g.
    /// [`grafter_obs::TraceProbe`]). The build delivers its
    /// [`CompileTrace`] to the probe, every session run records a runtime
    /// profile (per-function/per-block hit counters, opcode fire
    /// histograms, interpreter class-visit counts) delivered as a
    /// [`grafter_obs::RunTrace`], and batch runs report per-worker
    /// telemetry. Without a probe none of the run-side counters exist —
    /// the hooks monomorphize away and execution is bit-identical.
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Default intra-tree parallelism for every session (overridable per
    /// session with `Session::with_parallel`). With more than one worker,
    /// runs without a cache model fork statically certified independent
    /// sibling subtrees across the persistent worker pool — bit-identical
    /// results, less wall time. Default: sequential.
    pub fn parallel(mut self, parallel: crate::par::ParallelOptions) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Compiles, fuses and (for the VM tier) lowers — each exactly once —
    /// into an immutable, `Send + Sync` [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`]: [`Stage::Config`] for builder misuse
    /// (no program, no entry), the originating stage for frontend or
    /// fusion failures.
    ///
    /// [`Stage::Config`]: grafter_frontend::Stage::Config
    pub fn build(self) -> Result<Engine, Error> {
        let build_start = Instant::now();
        let mut spans: Vec<Span> = Vec::new();
        let compiled = match (self.compiled, self.source) {
            (Some(c), _) => c,
            (None, Some(src)) => {
                let t = build_start.elapsed();
                let (c, parse, sema) = Compiled::compile_timed(src)?;
                spans.push(Span {
                    name: "parse".to_string(),
                    start: t,
                    dur: parse,
                    meta: vec![("bytes".to_string(), c.source().len().to_string())],
                });
                spans.push(Span {
                    name: "sema".to_string(),
                    start: t + parse,
                    dur: sema,
                    meta: vec![("classes".to_string(), c.program().classes.len().to_string())],
                });
                c
            }
            (None, None) => {
                return Err(Error::config(
                    "engine needs a program: call `.source(..)` or `.compiled(..)`",
                ))
            }
        };
        let Some(root) = self.root else {
            return Err(Error::config(
                "engine needs an entry sequence: call `.entry(root_class, passes)`",
            ));
        };
        if self.passes.is_empty() {
            return Err(Error::config(
                "engine needs at least one entry traversal in `.entry(..)`",
            ));
        }

        let opts = self.fusion.unwrap_or_default();
        let passes: Vec<&str> = self.passes.iter().map(String::as_str).collect();
        let t = build_start.elapsed();
        let fused = fuse(compiled.program(), &root, &passes, &opts)
            .map_err(|e| Error::from_diag(e.into(), compiled.source()))?;
        spans.push(Span {
            name: "fusion".to_string(),
            start: t,
            dur: build_start.elapsed() - t,
            meta: vec![
                ("functions".to_string(), fused.n_functions().to_string()),
                ("stubs".to_string(), fused.stubs.len().to_string()),
                (
                    "fused_pairs".to_string(),
                    fused.coverage.fused_pairs.to_string(),
                ),
                (
                    "missed_pairs".to_string(),
                    fused.coverage.missed_pairs.to_string(),
                ),
                (
                    "blocked_pairs".to_string(),
                    fused.coverage.blocked_pairs.to_string(),
                ),
                (
                    "verdicts".to_string(),
                    fused.explain.pairs.len().to_string(),
                ),
            ],
        });
        let fusion = FusionMetrics {
            functions: fused.n_functions(),
            stubs: fused.stubs.len(),
            passes: fused.entries.len(),
            fully_fused: fused.fully_fused(),
            fused_pairs: fused.coverage.fused_pairs,
            missed_pairs: fused.coverage.missed_pairs,
            blocked_pairs: fused.coverage.blocked_pairs,
        };
        // The compile-once step of the compiled tiers: lowering (and
        // bytecode optimization) happens here and nowhere else in the
        // engine's lifetime. The jit tier additionally compiles the
        // optimized module into its closure program, also exactly once.
        let module = match self.backend {
            Backend::Interp => None,
            Backend::Vm | Backend::Jit(_) => {
                let t = build_start.elapsed();
                let m = lower_with(
                    &fused,
                    &VmOptions {
                        opt_level: self.opt_level,
                    },
                );
                let dur = build_start.elapsed() - t;
                spans.push(Span {
                    name: "lower".to_string(),
                    start: t,
                    dur,
                    meta: vec![
                        ("ops".to_string(), m.n_ops().to_string()),
                        ("opt_level".to_string(), format!("{}", self.opt_level)),
                    ],
                });
                // Each optimization pass already timed itself
                // (`PassStat::wall_ns`); lay the per-pass spans out
                // back-to-back at the tail of the lower span.
                let opt_total: u64 = m.opt_report().passes.iter().map(|p| p.wall_ns).sum();
                let mut cursor = (t + dur)
                    .checked_sub(Duration::from_nanos(opt_total))
                    .unwrap_or(t);
                for p in &m.opt_report().passes {
                    let d = Duration::from_nanos(p.wall_ns);
                    spans.push(Span {
                        name: format!("opt/{}", p.pass),
                        start: cursor,
                        dur: d,
                        meta: vec![
                            ("before".to_string(), p.before.to_string()),
                            ("after".to_string(), p.after.to_string()),
                            ("unit".to_string(), p.unit.to_string()),
                            ("rewrites".to_string(), p.rewrites.to_string()),
                            ("action".to_string(), p.action.to_string()),
                        ],
                    });
                    cursor += d;
                }
                Some(m)
            }
        };
        let jit = match self.backend {
            Backend::Jit(mode) => module.as_ref().map(|m| {
                let t = build_start.elapsed();
                let p = jit::compile_with(m, mode, self.probe.is_some());
                spans.push(Span {
                    name: "jit".to_string(),
                    start: t,
                    dur: build_start.elapsed() - t,
                    meta: vec![
                        ("blocks".to_string(), p.n_blocks().to_string()),
                        ("mode".to_string(), format!("{mode:?}")),
                    ],
                });
                p
            }),
            _ => None,
        };
        let mut warnings = compiled.warnings().clone();
        warnings.dedup();
        // Computed once here; every session heap shares the fused
        // program's own `Arc` (no second program copy) and these layouts.
        let shared_program = Arc::clone(&fused.program);
        let shared_layouts = Arc::new(Layouts::new(&shared_program));
        let compile_trace = CompileTrace {
            spans,
            total: build_start.elapsed(),
        };
        if let Some(probe) = &self.probe {
            probe.on_compile(&compile_trace);
        }
        Ok(Engine {
            src: compiled.source().to_string(),
            fused,
            fusion,
            module,
            jit,
            backend: self.backend,
            opt_level: self.opt_level,
            shared_program,
            shared_layouts,
            pures: self.pures.unwrap_or_else(PureRegistry::with_math),
            args: self.args,
            cache: self.cache,
            warnings,
            probe: self.probe,
            parallel: self.parallel.unwrap_or_default(),
            compile_trace,
        })
    }
}
