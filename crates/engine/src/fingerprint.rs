//! Stable identity for a compiled engine configuration.
//!
//! A serving layer that caches `Arc<Engine>`s needs a hashable key that
//! changes exactly when the compiled artifact would: same key ⇒ the
//! cached engine is a correct answer, different key ⇒ a separate compile.
//! [`EngineKey`] spells the configuration out field by field — source
//! (by hash), entry point, fusion options, backend and optimization
//! level — rather than pre-hashing everything into one opaque `u64`, so
//! collisions are confined to the 64-bit source hash and cache misses
//! are debuggable by inspecting the key.

use grafter::FusionOptions;
use grafter_vm::{Backend, OptLevel};

/// 64-bit FNV-1a over `bytes` — the repo's standard dependency-free hash
/// (cheap, stable across runs and platforms, good avalanche for text).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that determines a compiled [`Engine`](crate::Engine):
/// the cache key of a compiled-engine cache.
///
/// Two requests with equal keys may share one engine; two requests with
/// different keys must not. Entry arguments are folded in as a caller-
/// supplied hash ([`EngineKey::with_args_hash`]) because argument values
/// are baked into the engine at build time.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EngineKey {
    /// FNV-1a hash of the DSL source text.
    pub source_hash: u64,
    /// Root class of the entry point.
    pub root: String,
    /// Entry traversal sequence, in call order (order matters: it decides
    /// what fusion groups).
    pub passes: Vec<String>,
    /// [`FusionOptions::max_group_size`].
    pub max_group_size: usize,
    /// [`FusionOptions::max_occurrences`].
    pub max_occurrences: usize,
    /// [`FusionOptions::grouping`] (`false` = unfused baseline).
    pub grouping: bool,
    /// Execution tier the engine was built for.
    pub backend: Backend,
    /// Bytecode optimization level.
    pub opt_level: OptLevel,
    /// Hash of the entry arguments (0 when the entry takes none).
    pub args_hash: u64,
}

impl EngineKey {
    /// The key of an engine compiled from `source` with the given entry
    /// point and build configuration (no entry arguments; fold them in
    /// with [`EngineKey::with_args_hash`]).
    pub fn new<S: AsRef<str>>(
        source: &str,
        root: &str,
        passes: &[S],
        fusion: &FusionOptions,
        backend: Backend,
        opt_level: OptLevel,
    ) -> EngineKey {
        EngineKey {
            source_hash: fnv1a(source.as_bytes()),
            root: root.to_string(),
            passes: passes.iter().map(|p| p.as_ref().to_string()).collect(),
            max_group_size: fusion.max_group_size,
            max_occurrences: fusion.max_occurrences,
            grouping: fusion.grouping,
            backend,
            opt_level,
            args_hash: 0,
        }
    }

    /// Folds a hash of the entry arguments into the key (e.g. FNV-1a of
    /// their canonical wire rendering).
    pub fn with_args_hash(mut self, args_hash: u64) -> EngineKey {
        self.args_hash = args_hash;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_distinguishes_every_axis() {
        let base = EngineKey::new(
            "src",
            "Node",
            &["a", "b"],
            &FusionOptions::default(),
            Backend::Vm,
            OptLevel::O2,
        );
        assert_eq!(base, base.clone());

        let other_src = EngineKey::new(
            "src2",
            "Node",
            &["a", "b"],
            &FusionOptions::default(),
            Backend::Vm,
            OptLevel::O2,
        );
        assert_ne!(base, other_src);

        let unfused = EngineKey::new(
            "src",
            "Node",
            &["a", "b"],
            &FusionOptions::unfused(),
            Backend::Vm,
            OptLevel::O2,
        );
        assert_ne!(base, unfused);

        let interp = EngineKey::new(
            "src",
            "Node",
            &["a", "b"],
            &FusionOptions::default(),
            Backend::Interp,
            OptLevel::O2,
        );
        assert_ne!(base, interp);

        let o0 = EngineKey::new(
            "src",
            "Node",
            &["a", "b"],
            &FusionOptions::default(),
            Backend::Vm,
            OptLevel::O0,
        );
        assert_ne!(base, o0);

        // Pass *order* is part of the identity — it decides fusion groups.
        let swapped = EngineKey::new(
            "src",
            "Node",
            &["b", "a"],
            &FusionOptions::default(),
            Backend::Vm,
            OptLevel::O2,
        );
        assert_ne!(base, swapped);

        assert_ne!(base, base.clone().with_args_hash(7));
    }
}
