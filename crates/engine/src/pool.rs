//! The persistent, process-wide batch worker pool.
//!
//! [`Engine::run_batch`](crate::Engine::run_batch) originally spawned a
//! fresh set of `std::thread` workers per call — fine for one-shot CLI
//! runs, hostile to a long-running service where every request would pay
//! thread creation (and a 2 GiB stack reservation per worker). This
//! module replaces that with one process-wide pool of persistent worker
//! threads:
//!
//! - Threads are spawned lazily the first time a batch asks for them and
//!   never exit; the pool grows to the largest worker count any batch has
//!   requested and stays there. [`pool_stats`] exposes the spawn counter,
//!   so a service can assert that steady-state traffic creates **zero**
//!   new threads.
//! - Work distribution is by atomic claim (each participating worker
//!   steals the next unclaimed input index from the shared batch
//!   counter), so an idle worker drains whatever inputs remain regardless
//!   of which worker "owned" them — the same property a deque-based
//!   stealing scheduler provides, at a fraction of the machinery.
//! - Each worker thread keeps a small cache of heap arenas keyed by the
//!   program they are laid out for. A batch against an engine the worker
//!   has served before reuses the cached arena (reset, not reallocated),
//!   so steady state allocates nothing — the serving-path contract from
//!   PR 4, now across batch calls instead of only within one.
//!
//! Jobs carry a type-erased pointer into the submitting call's stack
//! frame; this is sound because the submitter always blocks on the job
//! latch before returning (the borrowed inputs outlive every access —
//! the same discipline `thread::scope` enforces, done manually so the
//! threads can outlive the scope).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use grafter_runtime::Heap;

use crate::engine::Engine;

/// Reserved (not committed) stack per pool worker. Traversals recurse
/// once per tree level, so this matches the largest stack any in-tree
/// batch caller asks for (the workload harness uses 2 GiB); batches
/// requesting more fall back to dedicated per-call threads.
pub(crate) const POOL_STACK: usize = 1 << 31;

/// Heap arenas cached per worker thread, keyed by program identity.
const HEAP_CACHE_CAP: usize = 4;

/// A telemetry snapshot of the process-wide batch worker pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (the pool never shrinks).
    pub threads: u64,
    /// Worker threads ever spawned. Equal to `threads`; a service asserts
    /// steady-state requests leave this flat (zero per-request spawns).
    pub spawned_total: u64,
    /// Batch participation jobs executed since process start.
    pub jobs_executed: u64,
    /// Worker threads executing a job right now (gauge).
    pub busy: u64,
    /// Worker threads parked waiting for work right now (gauge;
    /// `threads - busy`).
    pub idle: u64,
}

/// Stats of the process-wide pool. Zero until the first pooled batch.
pub fn pool_stats() -> PoolStats {
    match POOL.get() {
        None => PoolStats::default(),
        Some(pool) => {
            let threads = pool.spawned_total.load(Ordering::Relaxed);
            let busy = pool.jobs_in_flight.load(Ordering::Relaxed).min(threads);
            PoolStats {
                threads,
                spawned_total: threads,
                jobs_executed: pool.jobs_executed.load(Ordering::Relaxed),
                busy,
                idle: threads - busy,
            }
        }
    }
}

/// A type-erased pointer into the submitting batch's stack frame. Safety
/// contract: the submitter blocks on the job's [`Latch`] before its frame
/// unwinds, so the pointee outlives every dereference.
struct SendPtr(*const ());
// SAFETY: the pointee is a `BatchCtx` whose fields are all `Sync`
// (shared slices of `Mutex`es and atomics); the pointer itself is only
// dereferenced while the submitting frame is alive (see `Latch`).
unsafe impl Send for SendPtr {}

/// Counts outstanding job handles of one batch; the submitter blocks on
/// it, which is what makes the borrowed-context jobs sound.
pub(crate) struct Latch {
    outstanding: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Arc<Latch> {
        Arc::new(Latch {
            outstanding: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    fn done(&self) {
        let mut left = self.outstanding.lock().expect("latch lock");
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    pub(crate) fn wait(&self) {
        let mut left = self.outstanding.lock().expect("latch lock");
        while *left > 0 {
            left = self.cv.wait(left).expect("latch wait");
        }
    }
}

/// One queued unit of batch participation: `run(ctx)` claims inputs from
/// the batch's shared counter until none remain.
struct Job {
    run: unsafe fn(*const ()),
    ctx: SendPtr,
    latch: Arc<Latch>,
}

struct PoolState {
    queue: VecDeque<Job>,
    threads: u64,
}

pub(crate) struct WorkerPool {
    state: Mutex<PoolState>,
    cv: Condvar,
    spawned_total: AtomicU64,
    jobs_executed: AtomicU64,
    /// Jobs executing on pool workers right now (busy gauge).
    jobs_in_flight: AtomicU64,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

thread_local! {
    /// Set inside pool worker threads; nested batch calls from a pool
    /// worker take the dedicated-thread path instead of blocking the pool
    /// on itself.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread heap arenas kept warm between batches, matched to an
    /// engine by program identity.
    static HEAP_CACHE: RefCell<Vec<Heap>> = const { RefCell::new(Vec::new()) };
}

/// Whether the current thread is a pool worker (used to reroute nested
/// batch calls onto dedicated threads).
pub(crate) fn on_pool_worker() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// The process-wide pool, created on first use.
pub(crate) fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            threads: 0,
        }),
        cv: Condvar::new(),
        spawned_total: AtomicU64::new(0),
        jobs_executed: AtomicU64::new(0),
        jobs_in_flight: AtomicU64::new(0),
    })
}

/// A cached heap laid out for `engine`'s program, or a fresh one.
///
/// Identity is by program *allocation* (`&Program` address under the
/// engine's `Arc`): a heap holds its program `Arc` alive, so pointer
/// equality is stable and two engines share a heap only when they share
/// the program instance itself.
pub(crate) fn take_heap(engine: &Engine) -> Heap {
    HEAP_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        match cache
            .iter()
            .position(|h| std::ptr::eq(h.program(), engine.program()))
        {
            Some(i) => cache.swap_remove(i),
            None => engine.new_heap(),
        }
    })
}

/// Returns a heap to the current thread's cache (oldest evicted beyond
/// the cap). Heaps that saw a panic are dropped by the caller instead.
pub(crate) fn stash_heap(heap: Heap) {
    HEAP_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= HEAP_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(heap);
    });
}

impl WorkerPool {
    /// Grows the pool to at least `n` worker threads (never shrinks).
    pub(crate) fn ensure_threads(&'static self, n: usize) {
        let mut state = self.state.lock().expect("pool lock");
        while state.threads < n as u64 {
            state.threads += 1;
            self.spawned_total.fetch_add(1, Ordering::Relaxed);
            let id = state.threads;
            thread::Builder::new()
                .name(format!("grafter-pool-{id}"))
                .stack_size(POOL_STACK)
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker thread");
        }
    }

    fn worker_loop(&'static self) {
        IS_POOL_WORKER.with(|flag| flag.set(true));
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool lock");
                loop {
                    match state.queue.pop_front() {
                        Some(job) => break job,
                        None => state = self.cv.wait(state).expect("pool wait"),
                    }
                }
            };
            // Per-input panics are already caught inside the job; this
            // outer guard keeps anything that still unwinds (e.g. a
            // poisoned slot lock) from killing the pool thread, and
            // guarantees the latch is released either way.
            self.jobs_in_flight.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: the submitter blocks on `job.latch` until this
                // handle calls `done()`, so the context outlives the call.
                unsafe { (job.run)(job.ctx.0) }
            }));
            self.jobs_in_flight.fetch_sub(1, Ordering::Relaxed);
            self.jobs_executed.fetch_add(1, Ordering::Relaxed);
            job.latch.done();
            drop(outcome);
        }
    }

    /// Enqueues `count` participation handles for one batch; every handle
    /// runs `run(ctx)`. Returns the latch the submitter must block on
    /// before letting `ctx`'s frame unwind.
    pub(crate) fn submit(
        &'static self,
        count: usize,
        run: unsafe fn(*const ()),
        ctx: *const (),
    ) -> Arc<Latch> {
        let latch = Latch::new(count);
        {
            let mut state = self.state.lock().expect("pool lock");
            for _ in 0..count {
                state.queue.push_back(Job {
                    run,
                    ctx: SendPtr(ctx),
                    latch: Arc::clone(&latch),
                });
            }
        }
        self.cv.notify_all();
        latch
    }

    /// Blocks on `latch`, draining queued jobs (any batch's) while it is
    /// outstanding. This is the fork-join wait: a worker that forked
    /// nested subtrees helps execute queued work instead of parking, so
    /// every waiter makes progress and nested fork-join cannot deadlock
    /// the fixed-size pool — each queued job can always be run by its own
    /// submitter if no worker is free.
    pub(crate) fn wait_help(&'static self, latch: &Latch) {
        loop {
            if *latch.outstanding.lock().expect("latch lock") == 0 {
                return;
            }
            let job = {
                let mut state = self.state.lock().expect("pool lock");
                state.queue.pop_front()
            };
            match job {
                Some(job) => {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        // SAFETY: as in `worker_loop` — the job's submitter
                        // blocks on its latch until `done()`.
                        unsafe { (job.run)(job.ctx.0) }
                    }));
                    self.jobs_executed.fetch_add(1, Ordering::Relaxed);
                    job.latch.done();
                    drop(outcome);
                }
                None => {
                    // Nothing left to steal: the remaining handles of this
                    // latch are running on other threads. Their jobs never
                    // grow this latch, so a plain wait is deadlock-free.
                    latch.wait();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn latch_blocks_until_all_handles_done() {
        let latch = Latch::new(2);
        latch.done();
        let l2 = Arc::clone(&latch);
        let t = thread::spawn(move || l2.done());
        latch.wait();
        t.join().unwrap();
    }

    #[test]
    fn pool_runs_submitted_jobs_and_counts_spawns() {
        let pool = pool();
        pool.ensure_threads(2);
        let before = pool_stats();
        assert!(before.spawned_total >= 2);

        static HITS: AtomicUsize = AtomicUsize::new(0);
        unsafe fn bump(_ctx: *const ()) {
            HITS.fetch_add(1, Ordering::SeqCst);
        }
        let latch = pool.submit(4, bump, std::ptr::null());
        latch.wait();
        assert_eq!(HITS.load(Ordering::SeqCst), 4);

        // Re-submitting spawns no new threads: the pool is persistent.
        let latch = pool.submit(4, bump, std::ptr::null());
        latch.wait();
        assert_eq!(pool_stats().spawned_total, before.spawned_total);
        assert!(pool_stats().jobs_executed >= 8);
    }
}
