//! The immutable, shareable engine: one compiled program, many runs.

use std::sync::Arc;

use grafter::{cpp, DiagnosticBag, FusedProgram, FusionMetrics};
use grafter_frontend::Program;
use grafter_runtime::{Heap, Layouts, PureRegistry, Value};
use grafter_vm::{Backend, JitProgram, Module, OptLevel};

use crate::builder::EngineBuilder;
use crate::session::Session;
use grafter_cachesim::CacheHierarchy;

/// A fused program compiled for execution, immutable after
/// [`EngineBuilder::build`].
///
/// The engine owns everything that is per-*program*: the fused functions,
/// the lowered bytecode module (VM backend, lowered exactly once), the
/// resolved pure-function registry, default entry arguments and the cache
/// model prototype. Everything per-*run* (the heap, counters, simulated
/// cache state) lives in [`Session`]s, so one `Arc<Engine>` serves any
/// number of threads concurrently — `Engine` is `Send + Sync` and two
/// sessions never share mutable state.
///
/// See the [crate docs](crate) for the end-to-end example.
pub struct Engine {
    pub(crate) src: String,
    pub(crate) fused: FusedProgram,
    pub(crate) fusion: FusionMetrics,
    /// Lowered exactly once at build for the compiled tiers
    /// ([`Backend::Vm`] and [`Backend::Jit`]); `None` on the interpreter
    /// tier.
    pub(crate) module: Option<Module>,
    /// Closure-compiled exactly once at build for [`Backend::Jit`].
    pub(crate) jit: Option<JitProgram>,
    pub(crate) backend: Backend,
    /// Bytecode optimization level the module was lowered at (set even on
    /// the interpreter tier, where it has no effect).
    pub(crate) opt_level: OptLevel,
    /// Program + layouts shared by every session heap (`Arc` bumps, not
    /// program clones and layout recomputations, per session).
    pub(crate) shared_program: Arc<Program>,
    pub(crate) shared_layouts: Arc<Layouts>,
    pub(crate) pures: PureRegistry,
    pub(crate) args: Vec<Vec<Value>>,
    /// Fresh-state cache prototype cloned into each session.
    pub(crate) cache: Option<CacheHierarchy>,
    pub(crate) warnings: DiagnosticBag,
    /// Observability sink (see [`EngineBuilder::probe`]); when attached,
    /// sessions record runtime profiles and report them here.
    pub(crate) probe: Option<Arc<dyn grafter_obs::Probe>>,
    /// Default intra-tree parallelism for sessions (see
    /// [`EngineBuilder::parallel`]); `workers = 1` means sequential.
    pub(crate) parallel: crate::par::ParallelOptions,
    /// Per-stage wall times of this engine's build, recorded
    /// unconditionally (a handful of `Instant` reads).
    pub(crate) compile_trace: grafter_obs::CompileTrace,
}

impl Engine {
    /// Starts configuring a new engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Opens a session: a per-request execution context owning its own
    /// heap, pre-configured with the engine's pures, entry arguments and
    /// cache model.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Opens a session over an existing heap (e.g. a clone of a pre-built
    /// input tree, so repeated timed runs skip tree construction).
    pub fn session_on(&self, heap: Heap) -> Session<'_> {
        Session::on(self, heap)
    }

    /// The execution tier this engine was built for.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The bytecode optimization level the engine was built with
    /// (meaningful on [`Backend::Vm`]; the interpreter ignores it).
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Compile-side fusion statistics (computed once at build).
    pub fn fusion_metrics(&self) -> FusionMetrics {
        self.fusion
    }

    /// Warnings accumulated while building, deduplicated.
    pub fn warnings(&self) -> &DiagnosticBag {
        &self.warnings
    }

    /// Per-stage wall times of the build (parse/sema when built from
    /// source, fusion, lowering, each optimization pass, jit compile).
    /// Always recorded; attaching a probe additionally delivers it to
    /// [`grafter_obs::Probe::on_compile`].
    pub fn compile_trace(&self) -> &grafter_obs::CompileTrace {
        &self.compile_trace
    }

    /// The attached observability probe, if any.
    pub fn probe(&self) -> Option<&Arc<dyn grafter_obs::Probe>> {
        self.probe.as_ref()
    }

    /// The engine's default intra-tree parallelism options.
    pub fn parallel_options(&self) -> &crate::par::ParallelOptions {
        &self.parallel
    }

    /// The DSL source the engine was built from.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The resolved source program (class/field/method tables) — the
    /// same shared instance every session heap references.
    pub fn program(&self) -> &Program {
        &self.shared_program
    }

    /// The fused program the engine executes.
    pub fn fused_program(&self) -> &FusedProgram {
        &self.fused
    }

    /// The per-pair fusability verdicts of the engine's fusion run: why
    /// each same-receiver candidate pair fused, was missed, or was blocked
    /// (render with [`grafter::FusionExplain::render_text`] over
    /// [`Engine::source`], or as JSON with
    /// [`grafter::FusionExplain::render_json`]).
    pub fn explain(&self) -> &grafter::FusionExplain {
        &self.fused.explain
    }

    /// The lowered bytecode module — `Some` exactly when the engine was
    /// built with a compiled tier ([`Backend::Vm`] or [`Backend::Jit`]).
    pub fn module(&self) -> Option<&Module> {
        self.module.as_ref()
    }

    /// The closure-compiled program — `Some` exactly when the engine was
    /// built with [`Backend::Jit`].
    pub fn jit_program(&self) -> Option<&JitProgram> {
        self.jit.as_ref()
    }

    /// Renders the fused program as C++-like source (the paper's Fig. 6).
    pub fn render_cpp(&self) -> String {
        cpp::emit(&self.fused)
    }

    /// A fresh heap laid out for this engine's program (what
    /// [`Engine::session`] starts from). The program and its layouts are
    /// shared, so this is two reference-count bumps and two empty vectors.
    pub fn new_heap(&self) -> Heap {
        Heap::with_shared(
            Arc::clone(&self.shared_program),
            Arc::clone(&self.shared_layouts),
        )
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("backend", &self.backend)
            .field("opt_level", &self.opt_level)
            .field("fusion", &self.fusion)
            .field("module", &self.module.as_ref().map(|m| m.n_ops()))
            .field("jit", &self.jit.as_ref().map(|p| p.n_blocks()))
            .field("warnings", &self.warnings.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }
}
