//! Intra-tree fork-join parallelism: the [`ForkHost`] that scatters
//! statically certified independent sibling subtrees across the
//! persistent worker pool.
//!
//! The dependence analysis (`grafter::SubtreeIndependence`) marks runs of
//! scheduled sibling calls whose access automata cannot touch each
//! other's subtrees and never write globals. A parallel run executes the
//! top `fork_depth` levels of the tree in the interpreter (the
//! *orchestrator*); at each certified run it carves one [`Heap`] shard
//! per sibling (`Heap::shard_for_subtree`) and scatters them, and at
//! every other dispatch below the fork depth it hands the whole subtree
//! to the engine's tier (`ForkHost::take_over` → VM or JIT). Shards and
//! counters merge back **in sibling order**, so heap snapshots, simulated
//! addresses, [`Metrics`], and globals are bit-identical to a sequential
//! run — parallelism changes wall time and nothing else.
//!
//! Sizing: subtrees smaller than `seq_cutoff` nodes never pay a shard; a
//! certified run with fewer than two big subtrees executes in-line. Pool
//! fan-out is bounded by a permit budget of `workers - 1` shared across
//! nested forks (the submitting thread always executes too), and waiting
//! threads drain queued jobs (`WorkerPool::wait_help`), so nested
//! fork-join cannot deadlock the fixed-size pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use grafter_obs::{ChainCounters, ExecCounters};
use grafter_runtime::{
    ForkHost, ForkOutcome, ForkTask, Heap, Interp, Metrics, PureRegistry, RuntimeError, Value,
};
use grafter_vm::{Backend, Vm};

use crate::engine::Engine;
use crate::pool;

/// Tuning for intra-tree parallel runs.
///
/// The default (`workers = 1`) is sequential execution; anything above
/// one enables forking when the engine's program has at least one
/// certified parallel-safe call run. A parallel run is bit-identical to
/// a sequential one — same snapshots, metrics and globals — and is only
/// attempted when no cache model is attached (cache simulation is
/// inherently address-ordered, so cache-attached sessions always run
/// sequentially).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Total worker budget including the orchestrating thread; `1`
    /// disables forking entirely.
    pub workers: usize,
    /// Deepest tree level (root = 1) at which certified call runs fork;
    /// below it, whole subtrees run sequentially in the engine's tier.
    pub fork_depth: usize,
    /// Minimum live-node count for a subtree to be worth a shard; runs
    /// with fewer than two subtrees this big execute in-line.
    pub seq_cutoff: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            workers: 1,
            fork_depth: 4,
            seq_cutoff: 256,
        }
    }
}

impl ParallelOptions {
    /// Options with an explicit worker count and default depth/cutoff.
    pub fn with_workers(workers: usize) -> Self {
        ParallelOptions {
            workers,
            ..ParallelOptions::default()
        }
    }

    /// A worker count meaning "the machine": available parallelism.
    pub fn auto() -> Self {
        ParallelOptions::with_workers(thread::available_parallelism().map_or(4, usize::from))
    }
}

/// The engine-side [`ForkHost`]: owns the worker budget and the shared
/// probe accumulators of one parallel run. Cloned into fork workers so
/// nested certified runs keep forking against the same budget.
pub(crate) struct ParHost<'e> {
    engine: &'e Engine,
    opts: ParallelOptions,
    pures: PureRegistry,
    /// Pool-job permits left (`workers - 1` at the start of the run);
    /// shared across nested forks so total fan-out honors the budget.
    permits: Arc<AtomicIsize>,
    probing: bool,
    /// Per-worker VM histograms, merged at join (not racing).
    probe_exec: Option<Arc<Mutex<ExecCounters>>>,
    /// Per-worker JIT histograms, merged at join (not racing).
    probe_chain: Option<Arc<Mutex<ChainCounters>>>,
}

impl Clone for ParHost<'_> {
    fn clone(&self) -> Self {
        ParHost {
            engine: self.engine,
            opts: self.opts.clone(),
            pures: self.pures.clone(),
            permits: Arc::clone(&self.permits),
            probing: self.probing,
            probe_exec: self.probe_exec.clone(),
            probe_chain: self.probe_chain.clone(),
        }
    }
}

impl<'e> ParHost<'e> {
    pub(crate) fn new(
        engine: &'e Engine,
        opts: ParallelOptions,
        pures: PureRegistry,
        probing: bool,
    ) -> Self {
        let permits = Arc::new(AtomicIsize::new(opts.workers.saturating_sub(1) as isize));
        let probe_exec = (probing && matches!(engine.backend, Backend::Vm))
            .then(|| {
                engine
                    .module
                    .as_ref()
                    .map(|m| Arc::new(Mutex::new(ExecCounters::new(m.n_functions(), m.n_ops()))))
            })
            .flatten();
        let probe_chain = (probing && matches!(engine.backend, Backend::Jit(_)))
            .then(|| {
                engine
                    .jit
                    .as_ref()
                    .map(|p| Arc::new(Mutex::new(p.counters())))
            })
            .flatten();
        ParHost {
            engine,
            opts,
            pures,
            permits,
            probing,
            probe_exec,
            probe_chain,
        }
    }

    /// The merged per-worker VM histograms of the run (probed VM engines).
    pub(crate) fn take_exec_counters(&self) -> Option<ExecCounters> {
        self.probe_exec
            .as_ref()
            .map(|m| m.lock().expect("probe counters lock").clone())
    }

    /// The merged per-worker JIT histograms of the run (probed JIT
    /// engines).
    pub(crate) fn take_chain_counters(&self) -> Option<ChainCounters> {
        self.probe_chain
            .as_ref()
            .map(|m| m.lock().expect("probe counters lock").clone())
    }

    /// Class-visit probing exists only on the interpreter tier; compiled
    /// tiers derive class rows from their own histograms.
    fn probing_classes(&self) -> bool {
        self.probing && matches!(self.engine.backend, Backend::Interp)
    }

    fn acquire_permits(&self, want: usize) -> usize {
        let mut got = 0;
        while got < want {
            let cur = self.permits.load(Ordering::Acquire);
            if cur <= 0 {
                break;
            }
            if self
                .permits
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                got += 1;
            }
        }
        got
    }

    fn release_permits(&self, n: usize) {
        self.permits.fetch_add(n as isize, Ordering::AcqRel);
    }

    /// Executes one dispatched subtree whose root sits at tree level
    /// `depth`. At or above the fork depth the node is interpreted with a
    /// nested host (so certified runs below it keep forking); deeper
    /// subtrees run entirely in the engine's tier.
    fn exec_task(
        &self,
        heap: &mut Heap,
        task: ForkTask,
        globals: &[Value],
        depth: usize,
    ) -> Result<ForkOutcome, RuntimeError> {
        if self.opts.workers > 1 && depth <= self.opts.fork_depth {
            let mut host = self.clone();
            let mut interp = Interp::with_pures(&self.engine.fused, self.pures.clone());
            if self.probing_classes() {
                interp = interp.with_class_counts();
            }
            interp.set_globals_frame(globals);
            interp.run_stub_with_host(
                heap, task.stub, task.child, task.flags, task.args, &mut host, depth,
            )?;
            Ok(ForkOutcome {
                metrics: interp.metrics.clone(),
                class_visits: interp.take_class_counts(),
            })
        } else {
            self.run_tier(heap, task, globals, None)
        }
    }

    /// Runs one subtree dispatch in the engine's tier (no further
    /// forking). `copy_back`, when present, receives the executor's final
    /// global frame — used by [`ForkHost::run_subtree`], which runs
    /// sequentially and so may observe global writes.
    fn run_tier(
        &self,
        heap: &mut Heap,
        task: ForkTask,
        globals: &[Value],
        copy_back: Option<&mut [Value]>,
    ) -> Result<ForkOutcome, RuntimeError> {
        match self.engine.backend {
            Backend::Interp => {
                let mut interp = Interp::with_pures(&self.engine.fused, self.pures.clone());
                if self.probing_classes() {
                    interp = interp.with_class_counts();
                }
                interp.set_globals_frame(globals);
                interp.run_stub(heap, task.stub, task.child, task.flags, task.args)?;
                if let Some(out) = copy_back {
                    out.copy_from_slice(interp.globals_frame());
                }
                Ok(ForkOutcome {
                    metrics: interp.metrics.clone(),
                    class_visits: interp.take_class_counts(),
                })
            }
            Backend::Vm => {
                let module = self
                    .engine
                    .module
                    .as_ref()
                    .expect("vm engine holds its module (lowered at build)");
                let mut vm = Vm::with_pures(module, self.pures.clone());
                vm.set_globals_frame(globals);
                let stub = task.stub.0 as u16;
                if let Some(acc) = &self.probe_exec {
                    let mut counters = ExecCounters::new(module.n_functions(), module.n_ops());
                    vm.run_stub_probed(
                        heap,
                        stub,
                        task.child,
                        task.flags,
                        &task.args,
                        &mut counters,
                    )?;
                    acc.lock().expect("probe counters lock").merge(&counters);
                } else {
                    vm.run_stub(heap, stub, task.child, task.flags, &task.args)?;
                }
                if let Some(out) = copy_back {
                    out.copy_from_slice(vm.globals_frame());
                }
                Ok(ForkOutcome {
                    metrics: vm.metrics.clone(),
                    class_visits: None,
                })
            }
            Backend::Jit(_) => {
                let program = self
                    .engine
                    .jit
                    .as_ref()
                    .expect("jit engine holds its closure program (compiled at build)");
                let mut jit = grafter_vm::Jit::with_pures(program, self.pures.clone());
                if self.probe_chain.is_some() {
                    jit = jit.with_counters();
                }
                jit.set_globals_frame(globals);
                jit.run_stub(heap, task.stub.0 as u16, task.child, task.flags, &task.args)?;
                if let (Some(acc), Some(counters)) = (&self.probe_chain, jit.take_counters()) {
                    acc.lock().expect("probe counters lock").merge(&counters);
                }
                if let Some(out) = copy_back {
                    out.copy_from_slice(jit.globals_frame());
                }
                Ok(ForkOutcome {
                    metrics: jit.metrics().clone(),
                    class_visits: None,
                })
            }
        }
    }
}

/// A sibling's shard handed back by its worker, with the run's outcome.
type ForkResult = Mutex<Option<(Heap, Result<ForkOutcome, RuntimeError>)>>;

/// Everything one fork's workers share, borrowed from the forking call's
/// stack frame (the pool latch guarantees the frame outlives every
/// access, exactly as in the batch fan-out).
struct ForkCtx<'a> {
    host: &'a ParHost<'a>,
    /// Slot `i` holds sibling `i`'s task and shard until a worker claims
    /// it.
    slots: &'a [Mutex<Option<(ForkTask, Heap)>>],
    /// Slot `i` receives sibling `i`'s shard back plus its outcome.
    results: &'a [ForkResult],
    next: &'a AtomicUsize,
    globals: &'a [Value],
    /// Tree level of the forking node; every sibling root sits at
    /// `depth + 1`.
    depth: usize,
}

/// One worker's participation in a fork: claim sibling indices off the
/// shared counter until none remain. Runs on pool threads, on the forking
/// thread itself, and inside `wait_help` steals.
fn fork_worker(ctx: &ForkCtx<'_>) {
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.slots.len() {
            break;
        }
        let (task, mut shard) = ctx.slots[i]
            .lock()
            .expect("fork slot lock")
            .take()
            .expect("each sibling is claimed once");
        // The shard must come back for the in-order merge even if the
        // task panics, so catch here and surface a typed error.
        let result = catch_unwind(AssertUnwindSafe(|| {
            ctx.host
                .exec_task(&mut shard, task, ctx.globals, ctx.depth + 1)
        }))
        .unwrap_or_else(|payload| {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(RuntimeError::WorkerPanic(msg))
        });
        *ctx.results[i].lock().expect("fork result lock") = Some((shard, result));
    }
}

/// The type-erased pool entry point for fork participation.
///
/// # Safety
///
/// `ctx` must point at a live `ForkCtx<'_>`; the forking thread
/// guarantees this by blocking on the pool latch before the context's
/// frame unwinds.
unsafe fn fork_job(ctx: *const ()) {
    let ctx = unsafe { &*(ctx as *const ForkCtx<'_>) };
    fork_worker(ctx);
}

impl ForkHost for ParHost<'_> {
    const ENABLED: bool = true;

    fn should_fork(&mut self, depth: usize) -> bool {
        self.opts.workers > 1 && depth <= self.opts.fork_depth
    }

    fn take_over(&mut self, depth: usize) -> bool {
        // Below the fork depth the compiled tiers take whole subtrees;
        // on the interpreter tier the orchestrator IS the tier, so
        // handing over would be a pointless executor swap.
        depth > self.opts.fork_depth && !matches!(self.engine.backend, Backend::Interp)
    }

    fn fork(
        &mut self,
        heap: &mut Heap,
        depth: usize,
        tasks: Vec<ForkTask>,
        globals: &[Value],
    ) -> Result<ForkOutcome, RuntimeError> {
        let n = tasks.len();
        let big = tasks
            .iter()
            .filter(|t| heap.subtree_nodes(t.child) >= self.opts.seq_cutoff)
            .count();
        if n < 2 || big < 2 {
            // Not worth scattering: run the siblings in-line, in order,
            // on the caller's heap. Certified runs never write globals,
            // so the read-only snapshot is exact.
            let mut out = ForkOutcome::default();
            for task in tasks {
                let o = self.exec_task(heap, task, globals, depth + 1)?;
                absorb(&mut out, o);
            }
            return Ok(out);
        }

        // Scatter: every sibling gets a shard (running any sibling on the
        // parent heap while shards are live would let a parent arena grow
        // under the shards' segment pointers), carved in sibling order so
        // the merges below reproduce sequential allocation order.
        let mut slots = Vec::with_capacity(n);
        for task in tasks {
            let shard = heap.shard_for_subtree(task.child);
            slots.push(Mutex::new(Some((task, shard))));
        }
        let results: Vec<ForkResult> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let ctx = ForkCtx {
                host: self,
                slots: &slots,
                results: &results,
                next: &AtomicUsize::new(0),
                globals,
                depth,
            };
            // `n - 1` extra hands at most: the forking thread works too.
            let extra = self.acquire_permits(n - 1);
            if extra > 0 {
                let pool = pool::pool();
                pool.ensure_threads(extra);
                let latch = pool.submit(extra, fork_job, &ctx as *const ForkCtx<'_> as *const ());
                fork_worker(&ctx);
                // Drain other forks' queued jobs while waiting: this is
                // what keeps nested fork-join live on a fixed-size pool.
                pool.wait_help(&latch);
                self.release_permits(extra);
            } else {
                fork_worker(&ctx);
            }
        }

        // Join strictly in sibling order: merges renumber shard-local
        // allocations exactly as sequential execution would have, and
        // counter reduction order is fixed. The first error by sibling
        // index (the one a sequential run hits first) wins — after every
        // shard has merged back, so the heap stays sound either way.
        let mut out = ForkOutcome::default();
        let mut first_err = None;
        for slot in results {
            let (shard, result) = slot
                .into_inner()
                .expect("fork result lock")
                .expect("every sibling deposits a result");
            heap.merge_shard(shard);
            match result {
                Ok(o) => absorb(&mut out, o),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn run_subtree(
        &mut self,
        heap: &mut Heap,
        task: ForkTask,
        globals: &mut [Value],
    ) -> Result<ForkOutcome, RuntimeError> {
        let snapshot: Vec<Value> = globals.to_vec();
        self.run_tier(heap, task, &snapshot, Some(globals))
    }
}

/// Sums one worker's counters into the fork's accumulator.
fn absorb(into: &mut ForkOutcome, from: ForkOutcome) {
    into.metrics.absorb(&from.metrics);
    match (&mut into.class_visits, from.class_visits) {
        (Some(acc), Some(counts)) => {
            for (a, c) in acc.iter_mut().zip(counts) {
                *a += c;
            }
        }
        (acc @ None, Some(counts)) => *acc = Some(counts),
        _ => {}
    }
}

/// Strips a parallel JIT-release report down to the release tier's
/// contract (visits counted, everything else zero): the orchestrator's
/// interpreted fork levels charge full metrics, which a sequential
/// release run would not report.
pub(crate) fn release_visits_only(metrics: Metrics) -> Metrics {
    Metrics {
        visits: metrics.visits,
        ..Metrics::default()
    }
}
