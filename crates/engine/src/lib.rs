//! Compile-once, run-many execution for fused Grafter traversals.
//!
//! Grafter's premise (PLDI 2019) is that traversal fusion is a
//! *compile-time* transformation whose payoff comes from executing the
//! fused artifact many times over many trees. This crate makes that the
//! default shape of the API:
//!
//! - [`Engine`] — immutable and `Send + Sync`, built exactly once via
//!   [`Engine::builder`]. Building compiles the DSL source, runs the
//!   fusion compiler, and (on [`Backend::Vm`]) lowers the bytecode
//!   [`Module`](grafter_vm::Module) — each exactly once. Wrap it in an
//!   [`Arc`](std::sync::Arc) and share it across every thread serving
//!   requests.
//! - [`Session`] — a cheap per-request handle from [`Engine::session`].
//!   Each session owns its [`Heap`](grafter_runtime::Heap), exposes tree
//!   construction, and [`Session::run`] executes the engine's program,
//!   returning a unified [`Report`].
//! - [`Engine::run_batch`] — fans independent inputs out across
//!   `std::thread` workers and returns `Vec<Report>` in input order,
//!   deterministically.
//!
//! Errors are the typed [`grafter::Error`] (stage + span + rendered caret
//! snippet) rather than bare diagnostic bags.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use grafter_engine::{Backend, Engine};
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0; int b = 0;
//!         virtual traversal incA() {}
//!         virtual traversal incB() {}
//!     }
//!     tree class Cons : Node {
//!         traversal incA() { a = a + 1; this->next->incA(); }
//!         traversal incB() { b = b + 1; this->next->incB(); }
//!     }
//!     tree class End : Node { }
//! "#;
//!
//! // Compile + fuse + lower exactly once.
//! let engine = Arc::new(
//!     Engine::builder()
//!         .source(src)
//!         .entry("Node", &["incA", "incB"])
//!         .backend(Backend::Vm)
//!         .build()?,
//! );
//! assert!(engine.fusion_metrics().fully_fused);
//!
//! // Run many: each request opens a session owning its heap.
//! let mut session = engine.session();
//! let end = session.alloc("End")?;
//! let cons = session.alloc("Cons")?;
//! session.set_child(cons, "next", Some(end))?;
//! let report = session.run(cons)?;
//! assert_eq!(report.metrics.visits, 2);
//!
//! // Or fan a batch out across worker threads, results in input order.
//! let reports = engine.run_batch(
//!     (0..8)
//!         .map(|_| {
//!             |heap: &mut grafter_runtime::Heap| {
//!                 let end = heap.alloc_by_name("End").unwrap();
//!                 let cons = heap.alloc_by_name("Cons").unwrap();
//!                 heap.set_child_by_name(cons, "next", Some(end)).unwrap();
//!                 cons
//!             }
//!         })
//!         .collect(),
//! )?;
//! assert_eq!(reports.len(), 8);
//! assert!(reports.iter().all(|r| *r == report));
//! # Ok::<(), grafter_engine::Error>(())
//! ```

mod batch;
mod builder;
mod engine;
mod fingerprint;
mod par;
mod pool;
mod report;
mod session;

pub use batch::BatchOptions;
pub use builder::EngineBuilder;
pub use engine::Engine;
pub use fingerprint::{fnv1a, EngineKey};
pub use grafter::{Error, FusionMetrics, FusionOptions};
pub use grafter_obs::{
    BatchTrace, CompileTrace, NullProbe, Probe, RunTrace, TierProfile, TraceProbe,
};
pub use grafter_vm::{Backend, JitMode, OptLevel};
pub use par::ParallelOptions;
pub use pool::{pool_stats, PoolStats};
pub use report::Report;
pub use session::Session;
