//! Deterministic batch fan-out over the persistent worker pool.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use grafter::{Diag, Error, Stage};
use grafter_obs::{BatchTrace, WorkerStats};
use grafter_runtime::{Heap, NodeId};

use crate::engine::Engine;
use crate::par::ParallelOptions;
use crate::pool;
use crate::report::Report;
use crate::session::Session;

/// Tuning for [`Engine::run_batch_with`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Number of worker threads (clamped to at least 1 and at most the
    /// number of inputs). Default: the machine's available parallelism.
    pub workers: usize,
    /// Stack size per worker thread. Traversals recurse once per tree
    /// level, so deep trees (long sibling chains) need large stacks; the
    /// default of 256 MiB of *reserved* (not committed) stack covers the
    /// paper's workloads at benchmark sizes. Requests up to 2 GiB run on
    /// the persistent pool; anything larger falls back to dedicated
    /// per-call threads.
    pub stack_bytes: usize,
    /// Intra-tree parallelism applied to every input's session; `None`
    /// inherits the engine's default (see
    /// [`EngineBuilder::parallel`](crate::EngineBuilder::parallel)).
    /// Intra-tree forks draw on the same persistent pool as the batch
    /// fan-out itself — waiting threads help drain the queue, so the two
    /// levels of parallelism compose without deadlock.
    pub parallel: Option<ParallelOptions>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: thread::available_parallelism().map_or(4, usize::from),
            stack_bytes: 256 << 20,
            parallel: None,
        }
    }
}

impl BatchOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions {
            workers,
            ..BatchOptions::default()
        }
    }

    /// Sets the per-session intra-tree parallelism.
    pub fn with_parallel(mut self, parallel: ParallelOptions) -> Self {
        self.parallel = Some(parallel);
        self
    }
}

/// Where a finished input's result goes.
enum Deposit<'a> {
    /// Positional result slots (the collect-everything API).
    Slots(&'a [Mutex<Option<Result<Report, Error>>>]),
    /// Bounded in-order stream (the serving API).
    Stream(&'a StreamBuf),
}

/// The bounded reorder buffer behind [`Engine::run_batch_streamed`].
///
/// Workers deposit result `i` only once `i` is within `window` of the
/// next index the consumer will emit; the consumer drains strictly in
/// input order. Deadlock-free for any `window >= 1`: inputs are claimed
/// in ascending order, so the worker holding the next-to-emit index is
/// never the one made to wait.
struct StreamBuf {
    state: Mutex<StreamState>,
    /// Signals workers blocked on the window (consumer advanced).
    space: Condvar,
    /// Signals the consumer (a result landed).
    ready: Condvar,
    window: usize,
}

struct StreamState {
    buf: Vec<Option<Result<Report, Error>>>,
    next_emit: usize,
}

impl StreamBuf {
    fn new(n: usize, window: usize) -> StreamBuf {
        StreamBuf {
            state: Mutex::new(StreamState {
                buf: (0..n).map(|_| None).collect(),
                next_emit: 0,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            window: window.max(1),
        }
    }

    /// Called by workers: blocks while `i` is outside the emit window
    /// (backpressure), then parks the result for the consumer.
    fn deposit(&self, i: usize, result: Result<Report, Error>) {
        let mut state = self.state.lock().expect("stream lock");
        while i >= state.next_emit + self.window {
            state = self.space.wait(state).expect("stream wait");
        }
        state.buf[i] = Some(result);
        self.ready.notify_all();
    }

    /// Called by the consumer: blocks until result `i == next_emit` is
    /// available, takes it, and opens the window one slot further.
    fn take_next(&self) -> (usize, Result<Report, Error>) {
        let mut state = self.state.lock().expect("stream lock");
        loop {
            let i = state.next_emit;
            if let Some(result) = state.buf[i].take() {
                state.next_emit += 1;
                self.space.notify_all();
                return (i, result);
            }
            state = self.ready.wait(state).expect("stream wait");
        }
    }
}

/// Everything one batch's workers share, borrowed from the submitting
/// call's stack frame (the pool latch guarantees the frame outlives all
/// accesses).
struct BatchCtx<'a, F> {
    engine: &'a Engine,
    slots: &'a [Mutex<Option<F>>],
    deposit: Deposit<'a>,
    next: &'a AtomicUsize,
    n: usize,
    probing: bool,
    /// Intra-tree parallelism for each input's session (`None` inherits
    /// the engine default).
    parallel: Option<&'a ParallelOptions>,
    stats: &'a Mutex<Vec<WorkerStats>>,
    /// Batch-local worker index sequence (for telemetry labels).
    seq: &'a AtomicUsize,
}

/// Converts a caught panic payload into the typed runtime error the
/// panicking input's client receives.
fn panic_error(engine: &Engine, payload: &(dyn Any + Send)) -> Error {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    Error::from_diag(
        Diag::error_global(Stage::Runtime, format!("worker panicked: {msg}")),
        &engine.src,
    )
}

/// One worker's participation in a batch: claim inputs off the shared
/// counter until none remain. Runs on pool threads and (in the fallback
/// path) on dedicated scoped threads — the body is identical.
fn batch_worker<F>(ctx: &BatchCtx<'_, F>)
where
    F: FnOnce(&mut Heap) -> NodeId + Send,
{
    // The session is created lazily (a worker that finds the batch
    // already drained opens no heap at all) over a pooled arena, and
    // reset between inputs — observationally identical to a fresh heap
    // per input but allocation-free at steady state.
    let mut session: Option<Session<'_>> = None;
    let started = Instant::now();
    let (mut done, mut resets, mut busy) = (0u64, 0u64, Duration::ZERO);
    loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.n {
            break;
        }
        let build = ctx.slots[i]
            .lock()
            .expect("input slot lock")
            .take()
            .expect("each input is claimed once");
        let t = ctx.probing.then(Instant::now);
        let session_ref = session.get_or_insert_with(|| {
            let s = ctx.engine.session_on(pool::take_heap(ctx.engine));
            match ctx.parallel {
                Some(par) => s.with_parallel(par.clone()),
                None => s,
            }
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            session_ref.reset();
            let root = session_ref.build_tree(build);
            session_ref.run(root)
        }));
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                // The panic poisons only this pooled session: drop it
                // (its heap is *not* returned to the arena cache) and
                // serve the next input from a fresh one. The pool, the
                // batch, and the other inputs are unaffected.
                session = None;
                // `&*`: downcast the payload itself, not the `Box` (which
                // is also `Any` and would always miss).
                Err(panic_error(ctx.engine, &*payload))
            }
        };
        match &ctx.deposit {
            Deposit::Slots(results) => {
                *results[i].lock().expect("result slot lock") = Some(result);
            }
            Deposit::Stream(stream) => stream.deposit(i, result),
        }
        if let Some(t) = t {
            busy += t.elapsed();
            done += 1;
            resets += 1;
        }
    }
    if let Some(session) = session.take() {
        pool::stash_heap(session.into_heap());
    }
    if ctx.probing {
        ctx.stats
            .lock()
            .expect("worker stats lock")
            .push(WorkerStats {
                worker: ctx.seq.fetch_add(1, Ordering::Relaxed),
                inputs: done,
                resets,
                busy,
                idle: started.elapsed().saturating_sub(busy),
            });
    }
}

/// The type-erased pool entry point for a batch over builders of type `F`.
///
/// # Safety
///
/// `ctx` must point at a live `BatchCtx<'_, F>`; the submitter guarantees
/// this by blocking on the pool latch before the context's frame unwinds.
unsafe fn batch_job<F>(ctx: *const ())
where
    F: FnOnce(&mut Heap) -> NodeId + Send,
{
    let ctx = unsafe { &*(ctx as *const BatchCtx<'_, F>) };
    batch_worker(ctx);
}

impl Engine {
    /// Runs one session per input, fanned out across the persistent
    /// worker pool, and returns the reports **in input order** —
    /// bit-identical to running the same inputs sequentially, whatever
    /// the thread interleaving.
    ///
    /// Each input is a tree builder invoked on an empty session heap; the
    /// session then executes the engine's program on the root it returns.
    /// Workers pool one session (one heap arena) each and
    /// [`Session::reset`](crate::Session::reset) it between inputs, which
    /// is observationally identical to a fresh heap per input — same
    /// simulated addresses, metrics and cache traffic — but allocation-free
    /// at steady state. Sessions inherit the engine's pures, entry
    /// arguments and cache prototype.
    ///
    /// Worker threads are pooled process-wide and persist across calls
    /// (see [`pool_stats`](crate::pool_stats)): after warm-up, batches
    /// spawn zero threads.
    ///
    /// # Errors
    ///
    /// Returns the first failing input's [`Error`] (by input order, not
    /// completion order). Use [`Engine::try_run_batch`] to keep per-input
    /// results.
    pub fn run_batch<F>(&self, inputs: Vec<F>) -> Result<Vec<Report>, Error>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        self.run_batch_with(inputs, &BatchOptions::default())
    }

    /// [`Engine::run_batch`] with explicit worker count and stack size.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_batch`].
    pub fn run_batch_with<F>(
        &self,
        inputs: Vec<F>,
        opts: &BatchOptions,
    ) -> Result<Vec<Report>, Error>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        self.try_run_batch(inputs, opts).into_iter().collect()
    }

    /// Like [`Engine::run_batch_with`] but keeps every input's result, so
    /// one failing request doesn't discard the rest of the batch. An
    /// input whose builder or traversal *panics* (rather than erroring)
    /// yields a typed [`Stage::Runtime`] error for that input only; the
    /// panicking worker's pooled session is discarded and rebuilt fresh.
    pub fn try_run_batch<F>(
        &self,
        inputs: Vec<F>,
        opts: &BatchOptions,
    ) -> Vec<Result<Report, Error>>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        let n = inputs.len();
        // Guard before the worker clamp below: `clamp(1, n)` requires
        // `1 <= n` and would panic on an empty batch.
        if n == 0 {
            return Vec::new();
        }
        // Slot i holds input i, then result i: ordering is positional, so
        // the output is deterministic regardless of which worker runs what.
        let slots: Vec<Mutex<Option<F>>> =
            inputs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<Result<Report, Error>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let workers = opts.workers.clamp(1, n);
        // Batch telemetry exists only when the engine has a probe: the
        // unprobed fan-out takes no timestamps at all.
        let batch_start = Instant::now();
        let stats = Mutex::new(Vec::new());
        let ctx = BatchCtx {
            engine: self,
            slots: &slots,
            deposit: Deposit::Slots(&results),
            next: &AtomicUsize::new(0),
            n,
            probing: self.probe.is_some(),
            parallel: opts.parallel.as_ref(),
            stats: &stats,
            seq: &AtomicUsize::new(0),
        };

        self.fan_out(&ctx, workers, opts, None);

        if let Some(probe) = &self.probe {
            probe.on_batch(&BatchTrace {
                workers: stats.into_inner().expect("worker stats lock"),
                wall: batch_start.elapsed(),
            });
        }

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every input slot was filled")
            })
            .collect()
    }

    /// Streams batch results to `sink` **in input order** with bounded
    /// buffering: at most `window` finished-but-unemitted results exist
    /// at any time, and workers producing ahead of the consumer block
    /// (backpressure) rather than buffer — what a serving layer needs to
    /// relay a large batch to a slow client in constant memory.
    ///
    /// `sink` runs on the calling thread. Results are exactly those
    /// [`Engine::try_run_batch`] would produce, including per-input
    /// panics surfacing as typed [`Stage::Runtime`] errors.
    pub fn run_batch_streamed<F>(
        &self,
        inputs: Vec<F>,
        opts: &BatchOptions,
        window: usize,
        mut sink: impl FnMut(usize, Result<Report, Error>),
    ) where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        let n = inputs.len();
        if n == 0 {
            return;
        }
        let slots: Vec<Mutex<Option<F>>> =
            inputs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let workers = opts.workers.clamp(1, n);
        let batch_start = Instant::now();
        let stats = Mutex::new(Vec::new());
        let stream = StreamBuf::new(n, window);
        let ctx = BatchCtx {
            engine: self,
            slots: &slots,
            deposit: Deposit::Stream(&stream),
            next: &AtomicUsize::new(0),
            n,
            probing: self.probe.is_some(),
            parallel: opts.parallel.as_ref(),
            stats: &stats,
            seq: &AtomicUsize::new(0),
        };

        // The calling thread is the stream's consumer, so every worker
        // (pooled or dedicated) produces into the window while we drain;
        // the fan-out call returns once all workers finished, i.e. after
        // the drain has emitted everything.
        self.fan_out(
            &ctx,
            workers,
            opts,
            Some(&mut |stream: &StreamBuf| {
                for _ in 0..n {
                    let (i, result) = stream.take_next();
                    sink(i, result);
                }
            }),
        );

        if let Some(probe) = &self.probe {
            probe.on_batch(&BatchTrace {
                workers: stats.into_inner().expect("worker stats lock"),
                wall: batch_start.elapsed(),
            });
        }
    }

    /// Executes one batch's workers — on the persistent pool when the
    /// requested stack fits and we are not already on a pool thread
    /// (which would deadlock the pool on itself), on dedicated scoped
    /// threads otherwise. `drain`, when present, runs on the calling
    /// thread while workers produce (the streaming consumer).
    fn fan_out<F>(
        &self,
        ctx: &BatchCtx<'_, F>,
        workers: usize,
        opts: &BatchOptions,
        drain: Option<&mut dyn FnMut(&StreamBuf)>,
    ) where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        let pooled = opts.stack_bytes <= pool::POOL_STACK && !pool::on_pool_worker();
        if pooled {
            let pool = pool::pool();
            pool.ensure_threads(workers);
            let latch = pool.submit(
                workers,
                batch_job::<F>,
                ctx as *const BatchCtx<'_, F> as *const (),
            );
            if let (Some(drain), Deposit::Stream(stream)) = (drain, &ctx.deposit) {
                drain(stream);
            }
            // Blocking here is what makes the borrowed `ctx` sound: no
            // job handle can touch it after the latch opens.
            latch.wait();
        } else {
            thread::scope(|scope| {
                for _ in 0..workers {
                    thread::Builder::new()
                        .stack_size(opts.stack_bytes)
                        .spawn_scoped(scope, || batch_worker(ctx))
                        .expect("spawn batch worker thread");
                }
                if let (Some(drain), Deposit::Stream(stream)) = (drain, &ctx.deposit) {
                    drain(stream);
                }
            });
        }
    }
}
