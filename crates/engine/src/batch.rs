//! Deterministic batch fan-out over `std::thread` workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use grafter::Error;
use grafter_obs::{BatchTrace, WorkerStats};
use grafter_runtime::{Heap, NodeId};

use crate::engine::Engine;
use crate::report::Report;

/// Tuning for [`Engine::run_batch_with`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Number of worker threads (clamped to at least 1 and at most the
    /// number of inputs). Default: the machine's available parallelism.
    pub workers: usize,
    /// Stack size per worker thread. Traversals recurse once per tree
    /// level, so deep trees (long sibling chains) need large stacks; the
    /// default of 256 MiB of *reserved* (not committed) stack covers the
    /// paper's workloads at benchmark sizes.
    pub stack_bytes: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: thread::available_parallelism().map_or(4, usize::from),
            stack_bytes: 256 << 20,
        }
    }
}

impl BatchOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions {
            workers,
            ..BatchOptions::default()
        }
    }
}

impl Engine {
    /// Runs one session per input, fanned out across worker threads, and
    /// returns the reports **in input order** — bit-identical to running
    /// the same inputs sequentially, whatever the thread interleaving.
    ///
    /// Each input is a tree builder invoked on an empty session heap; the
    /// session then executes the engine's program on the root it returns.
    /// Workers pool one session (one heap arena) each and
    /// [`Session::reset`](crate::Session::reset) it between inputs, which
    /// is observationally identical to a fresh heap per input — same
    /// simulated addresses, metrics and cache traffic — but allocation-free
    /// at steady state. Sessions inherit the engine's pures, entry
    /// arguments and cache prototype.
    ///
    /// # Errors
    ///
    /// Returns the first failing input's [`Error`] (by input order, not
    /// completion order). Use [`Engine::try_run_batch`] to keep per-input
    /// results.
    pub fn run_batch<F>(&self, inputs: Vec<F>) -> Result<Vec<Report>, Error>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        self.run_batch_with(inputs, &BatchOptions::default())
    }

    /// [`Engine::run_batch`] with explicit worker count and stack size.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_batch`].
    pub fn run_batch_with<F>(
        &self,
        inputs: Vec<F>,
        opts: &BatchOptions,
    ) -> Result<Vec<Report>, Error>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        self.try_run_batch(inputs, opts).into_iter().collect()
    }

    /// Like [`Engine::run_batch_with`] but keeps every input's result, so
    /// one failing request doesn't discard the rest of the batch.
    pub fn try_run_batch<F>(
        &self,
        inputs: Vec<F>,
        opts: &BatchOptions,
    ) -> Vec<Result<Report, Error>>
    where
        F: FnOnce(&mut Heap) -> NodeId + Send,
    {
        let n = inputs.len();
        // Guard before the worker clamp below: `clamp(1, n)` requires
        // `1 <= n` and would panic on an empty batch.
        if n == 0 {
            return Vec::new();
        }
        // Slot i holds input i, then result i: ordering is positional, so
        // the output is deterministic regardless of which worker runs what.
        let slots: Vec<Mutex<Option<F>>> =
            inputs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let results: Vec<Mutex<Option<Result<Report, Error>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = opts.workers.clamp(1, n);
        // Batch telemetry exists only when the engine has a probe: the
        // unprobed fan-out takes no timestamps at all.
        let probing = self.probe.is_some();
        let batch_start = Instant::now();
        let worker_stats: Vec<Mutex<Option<WorkerStats>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            let (slots, results, next) = (&slots, &results, &next);
            for (w, stats_slot) in worker_stats.iter().enumerate() {
                thread::Builder::new()
                    .stack_size(opts.stack_bytes)
                    .spawn_scoped(scope, move || {
                        // One pooled session (and thus one heap arena) per
                        // worker: `reset` between inputs reuses the pool's
                        // capacity instead of reallocating per request,
                        // and keeps simulated addresses — hence reports —
                        // bit-identical to fresh-heap runs.
                        let mut session = self.session();
                        let spawned = Instant::now();
                        let (mut done, mut resets, mut busy) = (0u64, 0u64, Duration::ZERO);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let build = slots[i]
                                .lock()
                                .expect("input slot lock")
                                .take()
                                .expect("each input is claimed once");
                            let t = probing.then(Instant::now);
                            session.reset();
                            let root = session.build_tree(build);
                            let result = session.run(root);
                            *results[i].lock().expect("result slot lock") = Some(result);
                            if let Some(t) = t {
                                busy += t.elapsed();
                                done += 1;
                                resets += 1;
                            }
                        }
                        if probing {
                            *stats_slot.lock().expect("worker stats lock") = Some(WorkerStats {
                                worker: w,
                                inputs: done,
                                resets,
                                busy,
                                idle: spawned.elapsed().saturating_sub(busy),
                            });
                        }
                    })
                    .expect("spawn batch worker thread");
            }
        });

        if let Some(probe) = &self.probe {
            probe.on_batch(&BatchTrace {
                workers: worker_stats
                    .into_iter()
                    .filter_map(|slot| slot.into_inner().expect("worker stats lock"))
                    .collect(),
                wall: batch_start.elapsed(),
            });
        }

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every input slot was filled")
            })
            .collect()
    }
}
