//! Interpreter integration tests: differential fused-vs-unfused execution,
//! metric sanity and cache integration.

use grafter::{fuse, FuseOptions, FusedProgram};
use grafter_cachesim::CacheHierarchy;
use grafter_frontend::{compile, Program};
use grafter_runtime::{Heap, Interp, Metrics, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIG2: &str = r#"
    global int CHAR_WIDTH = 8;
    struct String { int Length; }
    struct BorderInfo { int Size; }
    tree class Element {
        child Element* Next;
        int Height = 0; int Width = 0;
        int MaxHeight = 0; int TotalWidth = 0;
        virtual traversal computeWidth() {}
        virtual traversal computeHeight() {}
    }
    tree class TextBox : public Element {
        String Text;
        traversal computeWidth() {
            Next->computeWidth();
            Width = Text.Length;
            TotalWidth = Next.Width + Width;
        }
        traversal computeHeight() {
            Next->computeHeight();
            Height = Text.Length * (Width / CHAR_WIDTH) + 1;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class Group : public Element {
        child Element* Content;
        BorderInfo Border;
        traversal computeWidth() {
            Content->computeWidth();
            Next->computeWidth();
            Width = Content.Width + Border.Size * 2;
            TotalWidth = Width + Next.Width;
        }
        traversal computeHeight() {
            Content->computeHeight();
            Next->computeHeight();
            Height = Content.MaxHeight + Border.Size * 2;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class End : public Element { }
"#;

/// Builds a random Fig.2 element list/tree; returns the root.
fn build_random_elements(heap: &mut Heap, rng: &mut StdRng, depth: usize, length: usize) -> NodeId {
    let end = heap.alloc_by_name("End").unwrap();
    let mut next = end;
    for _ in 0..length {
        let node = if depth > 0 && rng.gen_bool(0.3) {
            let g = heap.alloc_by_name("Group").unwrap();
            heap.set_by_name(g, "Border.Size", Value::Int(rng.gen_range(0..4)))
                .unwrap();
            let len = rng.gen_range(1..4);
            let inner = build_random_elements(heap, rng, depth - 1, len);
            heap.set_child_by_name(g, "Content", Some(inner)).unwrap();
            g
        } else {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(rng.gen_range(1..80)))
                .unwrap();
            t
        };
        heap.set_child_by_name(node, "Next", Some(next)).unwrap();
        next = node;
    }
    next
}

fn run_and_snapshot(
    program: &Program,
    fp: &FusedProgram,
    build: &dyn Fn(&mut Heap) -> NodeId,
) -> (Vec<(String, Vec<grafter_runtime::SnapValue>)>, Metrics) {
    let mut heap = Heap::new(program);
    let root = build(&mut heap);
    let mut interp = Interp::new(fp);
    interp.run(&mut heap, root, &[]).expect("run succeeds");
    (heap.snapshot(root), interp.metrics.clone())
}

#[test]
fn fused_and_unfused_produce_identical_trees_fig2() {
    let program = compile(FIG2).unwrap();
    let traversals = ["computeWidth", "computeHeight"];
    let fused = fuse(&program, "Element", &traversals, &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, "Element", &traversals, &FuseOptions::unfused()).unwrap();

    for seed in 0..20u64 {
        let build = move |heap: &mut Heap| {
            let mut rng = StdRng::seed_from_u64(seed);
            build_random_elements(heap, &mut rng, 3, 8)
        };
        let (snap_f, m_f) = run_and_snapshot(&program, &fused, &build);
        let (snap_u, m_u) = run_and_snapshot(&program, &unfused, &build);
        assert_eq!(snap_f, snap_u, "seed {seed}: fused and unfused diverge");
        assert!(
            m_f.visits < m_u.visits,
            "seed {seed}: fusion must reduce visits ({} vs {})",
            m_f.visits,
            m_u.visits
        );
    }
}

#[test]
fn fused_visits_are_half_of_unfused_on_lists() {
    let program = compile(FIG2).unwrap();
    let traversals = ["computeWidth", "computeHeight"];
    let fused = fuse(&program, "Element", &traversals, &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, "Element", &traversals, &FuseOptions::unfused()).unwrap();

    // A pure TextBox list: N+1 nodes, each visited once fused / twice
    // unfused.
    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(7);
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..50 {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(rng.gen_range(1..80)))
                .unwrap();
            heap.set_child_by_name(t, "Next", Some(next)).unwrap();
            next = t;
        }
        next
    };
    let (_, m_f) = run_and_snapshot(&program, &fused, &build);
    let (_, m_u) = run_and_snapshot(&program, &unfused, &build);
    assert_eq!(m_u.visits, 2 * 51, "unfused: two passes over 51 nodes");
    assert_eq!(m_f.visits, 51, "fused: one pass");
}

#[test]
fn computed_values_match_hand_calculation() {
    let program = compile(FIG2).unwrap();
    let fp = fuse(
        &program,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    let mut heap = Heap::new(&program);
    let end = heap.alloc_by_name("End").unwrap();
    let t2 = heap.alloc_by_name("TextBox").unwrap();
    heap.set_by_name(t2, "Text.Length", Value::Int(16)).unwrap();
    heap.set_child_by_name(t2, "Next", Some(end)).unwrap();
    let t1 = heap.alloc_by_name("TextBox").unwrap();
    heap.set_by_name(t1, "Text.Length", Value::Int(8)).unwrap();
    heap.set_child_by_name(t1, "Next", Some(t2)).unwrap();

    let mut interp = Interp::new(&fp);
    interp.run(&mut heap, t1, &[]).unwrap();

    // t2: Width = 16; Height = 16*(16/8)+1 = 33; t1: Width = 8;
    // TotalWidth = 16+8 = 24; Height = 8*(8/8)+1 = 9; MaxHeight = 33.
    assert_eq!(heap.get_by_name(t2, "Width").unwrap(), Value::Int(16));
    assert_eq!(heap.get_by_name(t2, "Height").unwrap(), Value::Int(33));
    assert_eq!(heap.get_by_name(t1, "TotalWidth").unwrap(), Value::Int(24));
    assert_eq!(heap.get_by_name(t1, "Height").unwrap(), Value::Int(9));
    assert_eq!(heap.get_by_name(t1, "MaxHeight").unwrap(), Value::Int(33));
}

#[test]
fn tree_mutation_program_runs_identically() {
    // A desugaring-style pass that rewrites marked nodes, fused with a
    // tally pass — exercises new/delete under fusion.
    let src = r#"
        tree class Node {
            child Node* next;
            int kind = 0;
            int count = 0;
            virtual traversal desugar() {}
            virtual traversal tally() {}
        }
        tree class Cons : Node {
            child Leaf* payload;
            traversal desugar() {
                if (kind == 1) {
                    delete this->payload;
                    this->payload = new Leaf();
                    kind = 2;
                }
                this->next->desugar();
            }
            traversal tally() {
                count = kind;
                this->next->tally();
            }
        }
        tree class Leaf : Node { int v = 0; }
        tree class End : Node { }
    "#;
    let program = compile(src).unwrap();
    let fused = fuse(
        &program,
        "Node",
        &["desugar", "tally"],
        &FuseOptions::default(),
    )
    .unwrap();
    let unfused = fuse(
        &program,
        "Node",
        &["desugar", "tally"],
        &FuseOptions::unfused(),
    )
    .unwrap();
    assert!(fused.fully_fused());

    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(42);
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..30 {
            let c = heap.alloc_by_name("Cons").unwrap();
            heap.set_by_name(c, "kind", Value::Int(rng.gen_range(0..3)))
                .unwrap();
            let leaf = heap.alloc_by_name("Leaf").unwrap();
            heap.set_by_name(leaf, "v", Value::Int(rng.gen_range(0..100)))
                .unwrap();
            heap.set_child_by_name(c, "payload", Some(leaf)).unwrap();
            heap.set_child_by_name(c, "next", Some(next)).unwrap();
            next = c;
        }
        next
    };
    let (snap_f, _) = run_and_snapshot(&program, &fused, &build);
    let (snap_u, _) = run_and_snapshot(&program, &unfused, &build);
    assert_eq!(snap_f, snap_u);
}

#[test]
fn truncation_via_return_matches_unfused() {
    // One traversal truncates early (stops at marked nodes); the other
    // walks the whole list. Exercises the active-flags machinery.
    let src = r#"
        tree class Node {
            child Node* next;
            bool stop = false;
            int a = 0; int b = 0;
            virtual traversal markA() {}
            virtual traversal markB() {}
        }
        tree class Cons : Node {
            traversal markA() {
                if (stop) { return; }
                a = a + 1;
                this->next->markA();
            }
            traversal markB() {
                b = b + 1;
                this->next->markB();
            }
        }
        tree class End : Node { }
    "#;
    let program = compile(src).unwrap();
    let fused = fuse(
        &program,
        "Node",
        &["markA", "markB"],
        &FuseOptions::default(),
    )
    .unwrap();
    let unfused = fuse(
        &program,
        "Node",
        &["markA", "markB"],
        &FuseOptions::unfused(),
    )
    .unwrap();

    for seed in 0..10u64 {
        let build = move |heap: &mut Heap| {
            let mut rng = StdRng::seed_from_u64(seed);
            let end = heap.alloc_by_name("End").unwrap();
            let mut next = end;
            for _ in 0..20 {
                let c = heap.alloc_by_name("Cons").unwrap();
                heap.set_by_name(c, "stop", Value::Bool(rng.gen_bool(0.2)))
                    .unwrap();
                heap.set_child_by_name(c, "next", Some(next)).unwrap();
                next = c;
            }
            next
        };
        let (snap_f, m_f) = run_and_snapshot(&program, &fused, &build);
        let (snap_u, m_u) = run_and_snapshot(&program, &unfused, &build);
        assert_eq!(snap_f, snap_u, "seed {seed}");
        assert!(m_f.visits <= m_u.visits, "seed {seed}");
    }
}

#[test]
fn traversal_parameters_flow_through_fusion() {
    let src = r#"
        tree class Node {
            child Node* next;
            int a = 0; int b = 0;
            virtual traversal addA(int delta) {}
            virtual traversal addB(int delta) {}
        }
        tree class Cons : Node {
            traversal addA(int delta) {
                a = a + delta;
                this->next->addA(delta + 1);
            }
            traversal addB(int delta) {
                b = b + delta;
                this->next->addB(delta * 2);
            }
        }
        tree class End : Node { }
    "#;
    let program = compile(src).unwrap();
    let fused = fuse(&program, "Node", &["addA", "addB"], &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, "Node", &["addA", "addB"], &FuseOptions::unfused()).unwrap();
    assert!(fused.fully_fused());

    let build = |heap: &mut Heap| {
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..10 {
            let c = heap.alloc_by_name("Cons").unwrap();
            heap.set_child_by_name(c, "next", Some(next)).unwrap();
            next = c;
        }
        next
    };
    let args = vec![vec![Value::Int(5)], vec![Value::Int(3)]];

    let mut h1 = Heap::new(&program);
    let r1 = build(&mut h1);
    Interp::new(&fused).run(&mut h1, r1, &args).unwrap();
    let mut h2 = Heap::new(&program);
    let r2 = build(&mut h2);
    Interp::new(&unfused).run(&mut h2, r2, &args).unwrap();
    assert_eq!(h1.snapshot(r1), h2.snapshot(r2));
    // First node: a += 5, b += 3.
    assert_eq!(h1.get_by_name(r1, "a").unwrap(), Value::Int(5));
    assert_eq!(h1.get_by_name(r1, "b").unwrap(), Value::Int(3));
}

#[test]
fn cache_misses_drop_with_fusion_on_large_trees() {
    // Deep recursion: run on a large dedicated stack.
    grafter_runtime::with_stack(1 << 30, cache_misses_drop_impl);
}

fn cache_misses_drop_impl() {
    let program = compile(FIG2).unwrap();
    let traversals = ["computeWidth", "computeHeight"];
    let fused = fuse(&program, "Element", &traversals, &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, "Element", &traversals, &FuseOptions::unfused()).unwrap();

    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(1);
        let end = heap.alloc_by_name("End").unwrap();
        let mut next = end;
        for _ in 0..200_000 {
            let t = heap.alloc_by_name("TextBox").unwrap();
            heap.set_by_name(t, "Text.Length", Value::Int(rng.gen_range(1..80)))
                .unwrap();
            heap.set_child_by_name(t, "Next", Some(next)).unwrap();
            next = t;
        }
        next
    };

    let run = |fp: &FusedProgram| {
        let mut heap = Heap::new(&program);
        let root = build(&mut heap);
        let mut interp = Interp::new(fp).with_cache(CacheHierarchy::xeon());
        interp.run(&mut heap, root, &[]).unwrap();
        interp.cache.as_ref().unwrap().stats()
    };
    let s_f = run(&fused);
    let s_u = run(&unfused);
    // The tree (~200k * 72B = 14 MB) exceeds L2; the unfused version
    // streams it twice, the fused version once: misses drop.
    assert!(
        s_f.misses(1) * 10 < s_u.misses(1) * 9,
        "fused L2 misses {} vs unfused {}",
        s_f.misses(1),
        s_u.misses(1)
    );
}

#[test]
fn globals_are_readable_and_settable() {
    let program = compile(FIG2).unwrap();
    let fp = fuse(
        &program,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    let mut interp = Interp::new(&fp);
    assert_eq!(interp.global("CHAR_WIDTH"), Some(Value::Int(8)));
    interp.set_global("CHAR_WIDTH", Value::Int(4)).unwrap();
    assert_eq!(interp.global("CHAR_WIDTH"), Some(Value::Int(4)));

    let mut heap = Heap::new(&program);
    let end = heap.alloc_by_name("End").unwrap();
    let t = heap.alloc_by_name("TextBox").unwrap();
    heap.set_by_name(t, "Text.Length", Value::Int(8)).unwrap();
    heap.set_child_by_name(t, "Next", Some(end)).unwrap();
    interp.run(&mut heap, t, &[]).unwrap();
    // Height = 8*(8/4)+1 = 17 with the overridden CHAR_WIDTH.
    assert_eq!(heap.get_by_name(t, "Height").unwrap(), Value::Int(17));
}

#[test]
fn instruction_overhead_of_fusion_is_modest() {
    let program = compile(FIG2).unwrap();
    let traversals = ["computeWidth", "computeHeight"];
    let fused = fuse(&program, "Element", &traversals, &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, "Element", &traversals, &FuseOptions::unfused()).unwrap();

    let build = |heap: &mut Heap| {
        let mut rng = StdRng::seed_from_u64(3);
        build_random_elements(heap, &mut rng, 4, 50)
    };
    let (_, m_f) = run_and_snapshot(&program, &fused, &build);
    let (_, m_u) = run_and_snapshot(&program, &unfused, &build);
    // Fusion halves dispatches but adds guard/flag arithmetic; the paper
    // reports near-zero net instruction overhead for the render tree.
    // Allow a generous envelope either way.
    let ratio = m_f.instructions as f64 / m_u.instructions as f64;
    assert!(
        (0.5..1.3).contains(&ratio),
        "instruction ratio {ratio} out of envelope ({} vs {})",
        m_f.instructions,
        m_u.instructions
    );
}

#[test]
fn deleted_nodes_are_not_reachable() {
    let program = compile(FIG2).unwrap();
    let mut heap = Heap::new(&program);
    let end = heap.alloc_by_name("End").unwrap();
    let t = heap.alloc_by_name("TextBox").unwrap();
    heap.set_child_by_name(t, "Next", Some(end)).unwrap();
    assert_eq!(heap.live_count(), 2);
    heap.delete_subtree(t);
    assert_eq!(heap.live_count(), 0);
    assert!(!heap.is_alive(t));
}

#[test]
fn snapshot_is_structural_not_address_based() {
    let program = compile(FIG2).unwrap();
    // Same structure, different allocation order => equal snapshots.
    let mut h1 = Heap::new(&program);
    let e1 = h1.alloc_by_name("End").unwrap();
    let t1 = h1.alloc_by_name("TextBox").unwrap();
    h1.set_child_by_name(t1, "Next", Some(e1)).unwrap();

    let mut h2 = Heap::new(&program);
    let t2 = h2.alloc_by_name("TextBox").unwrap();
    let e2 = h2.alloc_by_name("End").unwrap();
    h2.set_child_by_name(t2, "Next", Some(e2)).unwrap();

    assert_eq!(h1.snapshot(t1), h2.snapshot(t2));
}
