//! Arena stress regressions: the heap walkers must be iterative, so
//! list-like trees (a 100k-node right spine) neither overflow the test
//! thread's stack in `snapshot`/`delete_subtree` nor clone per-node slot
//! vectors, and `reset` must reproduce a fresh heap bit for bit.
//!
//! These run in CI's release-mode stress step — keep them free of big
//! fixed stacks (`with_stack`) so a recursion regression fails loudly.

use grafter_frontend::{compile, Program};
use grafter_runtime::{Heap, SnapValue, Value};

/// Nodes in the deep spine: far beyond any default thread stack's
/// recursion budget (a recursive walk needs ~100k frames here).
const SPINE: usize = 100_000;

fn program() -> Program {
    compile(
        r#"
        tree class Node {
            child Node* next;
            int v = 0;
            virtual traversal nop() {}
        }
        tree class Cons : Node { }
        tree class End : Node { }
        "#,
    )
    .unwrap()
}

/// Builds a right spine of `n` Cons nodes ending in an End, root first
/// (allocation order = preorder, like the workload builders).
fn build_spine(heap: &mut Heap, n: usize) -> grafter_runtime::NodeId {
    let root = heap.alloc_by_name("Cons").unwrap();
    heap.set_by_name(root, "v", Value::Int(0)).unwrap();
    let mut cur = root;
    for i in 1..n {
        let next = heap.alloc_by_name("Cons").unwrap();
        heap.set_by_name(next, "v", Value::Int(i as i64)).unwrap();
        heap.set_child_by_name(cur, "next", Some(next)).unwrap();
        cur = next;
    }
    let end = heap.alloc_by_name("End").unwrap();
    heap.set_child_by_name(cur, "next", Some(end)).unwrap();
    root
}

#[test]
fn snapshot_of_a_deep_spine_is_iterative_and_ordered() {
    let p = program();
    let mut heap = Heap::new(&p);
    let root = build_spine(&mut heap, SPINE);
    let snap = heap.snapshot(root);
    assert_eq!(snap.len(), SPINE + 1);
    // Preorder: node i is the i-th spine element, its `next` slot points
    // to preorder index i + 1.
    assert_eq!(snap[0].0, "Cons");
    assert_eq!(snap[SPINE].0, "End");
    for (i, (class, slots)) in snap.iter().take(SPINE).enumerate() {
        assert_eq!(class, "Cons");
        assert_eq!(slots[0], SnapValue::Child(i + 1));
        assert_eq!(slots[1], SnapValue::Int(i as i64));
    }
}

#[test]
fn deep_spine_delete_and_reset_reuse_the_arena() {
    let p = program();
    let mut heap = Heap::new(&p);
    let root = build_spine(&mut heap, SPINE);
    let bytes = heap.live_bytes();
    let snap = heap.snapshot(root);
    assert!(bytes > 0);

    // delete_subtree walks the same spine iteratively.
    heap.delete_subtree(root);
    assert_eq!(heap.live_count(), 0);
    assert_eq!(heap.live_bytes(), 0);

    // After a reset, rebuilding yields a bit-identical tree: same
    // simulated addresses, same snapshot, no arena regrowth.
    heap.reset();
    let root2 = build_spine(&mut heap, SPINE);
    assert_eq!(heap.addr_of(root2), {
        let mut fresh = Heap::new(&p);
        let r = build_spine(&mut fresh, SPINE);
        fresh.addr_of(r)
    });
    assert_eq!(heap.live_bytes(), bytes);
    assert_eq!(heap.snapshot(root2), snap);
}
