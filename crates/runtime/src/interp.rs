//! The instrumented interpreter for fused programs.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use grafter::{CallPart, FusedFnId, FusedProgram, ScheduledItem, StubId};
use grafter_cachesim::CacheHierarchy;
use grafter_frontend::{BinOp, DataAccess, Expr, MethodId, NodePath, Stmt};

use crate::heap::{Heap, NodeId, NODE_HEADER_BYTES, SLOT_BYTES};
use crate::metrics::{cost, Metrics};
use crate::ops::{binop, coerce, field_ty, flatten_globals, local_frame_layout};
use crate::pure::PureRegistry;
use crate::Value;

/// Errors surfaced while executing a fused program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A data access navigated through a null child pointer.
    NullDeref,
    /// A `pure` function has no registered native implementation.
    MissingPure(String),
    /// A stub had no fused function for the receiver's dynamic type.
    MissingTarget(String),
    /// A child slot held a non-reference value (heap corruption).
    NotARef,
    /// A fork worker panicked while executing a scattered subtree.
    WorkerPanic(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDeref => write!(f, "null child dereferenced in a data access"),
            RuntimeError::MissingPure(name) => {
                write!(f, "pure function `{name}` has no native implementation")
            }
            RuntimeError::MissingTarget(class) => {
                write!(f, "no fused function for dynamic type `{class}`")
            }
            RuntimeError::NotARef => write!(f, "child slot does not hold a reference"),
            RuntimeError::WorkerPanic(msg) => {
                write!(f, "fork worker panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

type RResult<T> = Result<T, RuntimeError>;

enum Flow {
    Continue,
    Returned,
}

/// One parallel-safe sibling dispatch, packaged for a [`ForkHost`]: the
/// callee stub, the child receiver, the active-traversal flags and the
/// already-evaluated per-part arguments — exactly what a stub call needs,
/// with all pre-call costs (guards, navigation, flag shuffles, argument
/// evaluation) already charged by the preparing interpreter.
#[derive(Clone, Debug)]
pub struct ForkTask {
    /// Dispatch stub of the call.
    pub stub: StubId,
    /// Receiver node (root of the forked subtree).
    pub child: NodeId,
    /// Active-traversal flags of the call.
    pub flags: u64,
    /// Evaluated arguments, one vector per call part.
    pub args: Vec<Vec<Value>>,
}

/// Counters a [`ForkHost`] hands back after executing dispatched work,
/// merged in deterministic sibling order so totals are bit-identical to a
/// sequential run.
#[derive(Debug, Default)]
pub struct ForkOutcome {
    /// Summed [`Metrics`] of the executed subtrees.
    pub metrics: Metrics,
    /// Summed per-class visit counters, when the run is probed.
    pub class_visits: Option<Vec<u64>>,
}

/// Execution hook for intra-tree parallelism.
///
/// The interpreter consults the host at two points of its dispatch loop:
///
/// - at a statically certified parallel-safe call run ([`ForkHost::fork`]),
///   where the host may scatter the sibling subtrees across workers; and
/// - at every subtree dispatch ([`ForkHost::take_over`]), where the host
///   may hand the whole subtree to a different execution tier (the engine
///   runs fork-level nodes here and VM/JIT code below them).
///
/// Both hooks sit behind `if H::ENABLED`, so the `NoFork` instantiation
/// monomorphizes to exactly the sequential dispatch loop.
pub trait ForkHost {
    /// `false` compiles every hook out of the dispatch loop.
    const ENABLED: bool;

    /// Whether a parallel-safe call run under a node at tree depth
    /// `depth` (root = 1) should fork instead of running in-line.
    fn should_fork(&mut self, depth: usize) -> bool;

    /// Executes every prepared sibling task exactly once — scattered,
    /// in-line, or mixed — and returns the merged counters. `globals` is
    /// the caller's current global frame; the dependence analysis only
    /// certifies call runs that never write globals, so a read-only copy
    /// per worker is sound.
    ///
    /// # Errors
    ///
    /// Propagates the runtime error of the lowest-indexed failing sibling
    /// (the error a sequential run would have hit first).
    fn fork(
        &mut self,
        heap: &mut Heap,
        depth: usize,
        tasks: Vec<ForkTask>,
        globals: &[Value],
    ) -> RResult<ForkOutcome>;

    /// Whether the subtree dispatched at `depth` should leave the
    /// interpreter entirely (handed to [`ForkHost::run_subtree`]).
    fn take_over(&mut self, depth: usize) -> bool;

    /// Executes one whole subtree dispatch outside the interpreter (e.g.
    /// in the session's VM or JIT tier), returning its counters.
    ///
    /// Runs on the calling thread with exclusive heap access, so —
    /// unlike forked subtrees — it may write globals: the host seeds its
    /// executor from `globals` and copies the final frame back, which is
    /// exactly the sequential data flow.
    ///
    /// # Errors
    ///
    /// Propagates the subtree's runtime error unchanged.
    fn run_subtree(
        &mut self,
        heap: &mut Heap,
        task: ForkTask,
        globals: &mut [Value],
    ) -> RResult<ForkOutcome>;
}

/// The disabled host: plain sequential execution. `ENABLED = false`
/// compiles every hook call site out of the dispatch loop.
pub struct NoFork;

impl ForkHost for NoFork {
    const ENABLED: bool = false;

    fn should_fork(&mut self, _depth: usize) -> bool {
        false
    }

    fn fork(
        &mut self,
        _heap: &mut Heap,
        _depth: usize,
        _tasks: Vec<ForkTask>,
        _globals: &[Value],
    ) -> RResult<ForkOutcome> {
        unreachable!("NoFork is never enabled")
    }

    fn take_over(&mut self, _depth: usize) -> bool {
        false
    }

    fn run_subtree(
        &mut self,
        _heap: &mut Heap,
        _task: ForkTask,
        _globals: &mut [Value],
    ) -> RResult<ForkOutcome> {
        unreachable!("NoFork is never enabled")
    }
}

/// Executes a [`FusedProgram`] against a [`Heap`], collecting [`Metrics`]
/// and (optionally) driving a cache simulator.
pub struct Interp<'a> {
    fp: &'a FusedProgram,
    /// Counters for the current run (reset with [`Metrics::reset`]).
    pub metrics: Metrics,
    /// Optional simulated memory hierarchy fed with every field access.
    pub cache: Option<CacheHierarchy>,
    pures: PureRegistry,
    /// Flattened global values (structs expanded), plus their addresses.
    globals: Vec<Value>,
    global_offsets: Vec<usize>,
    /// Per-method local frame layout: slot offset of each local, total size.
    local_layouts: HashMap<MethodId, Rc<(Vec<usize>, usize)>>,
    /// Per-class visit counters of a probed run, indexed by
    /// [`grafter_frontend::ClassId`]; `None` (the default) records
    /// nothing and costs one predicted branch per dispatch.
    class_visits: Option<Vec<u64>>,
    /// Tree depth of the node currently dispatched (root = 1); what the
    /// [`ForkHost`] hooks receive to bound forking to the top levels.
    depth: usize,
}

const GLOBALS_BASE_ADDR: u64 = 0x1000;

impl<'a> Interp<'a> {
    /// Creates an interpreter with the default math pures and no cache.
    pub fn new(fp: &'a FusedProgram) -> Self {
        Interp::with_pures(fp, PureRegistry::with_math())
    }

    /// Creates an interpreter with a custom pure-function registry.
    pub fn with_pures(fp: &'a FusedProgram, pures: PureRegistry) -> Self {
        let (globals, global_offsets) = flatten_globals(&fp.program);
        Interp {
            fp,
            metrics: Metrics::default(),
            cache: None,
            pures,
            globals,
            global_offsets,
            local_layouts: HashMap::new(),
            class_visits: None,
            depth: 0,
        }
    }

    /// Attaches a cache hierarchy (all subsequent accesses are simulated).
    pub fn with_cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches zeroed per-class visit counters: every successful dispatch
    /// bumps the receiver's dynamic-class slot. `Metrics` and cache
    /// traffic are unchanged — the counters sit outside the cost model.
    pub fn with_class_counts(mut self) -> Self {
        self.class_visits = Some(vec![0; self.fp.program.classes.len()]);
        self
    }

    /// Detaches and returns the per-class visit counters, if
    /// [`Interp::with_class_counts`] attached any (indexed by class id).
    pub fn take_class_counts(&mut self) -> Option<Vec<u64>> {
        self.class_visits.take()
    }

    /// Sets a global variable by name before a run.
    pub fn set_global(&mut self, name: &str, value: Value) -> Option<()> {
        let g = self.fp.program.global_by_name(name)?;
        self.globals[self.global_offsets[g.index()]] = value;
        Some(())
    }

    /// Reads a global variable by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        let g = self.fp.program.global_by_name(name)?;
        Some(self.globals[self.global_offsets[g.index()]])
    }

    /// Runs the fused program's entry sequence on `root`.
    ///
    /// `args[i]` are the arguments of the `i`-th entry traversal.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if execution dereferences a null child in
    /// a data access, calls an unregistered pure, or dispatch fails.
    pub fn run(&mut self, heap: &mut Heap, root: NodeId, args: &[Vec<Value>]) -> RResult<()> {
        self.run_with_host(heap, root, args, &mut NoFork)
    }

    /// [`Interp::run`] with a [`ForkHost`] attached: statically certified
    /// parallel-safe sibling dispatches are offered to `host`, which may
    /// scatter them across workers or hand subtrees to another tier.
    /// With `host = NoFork` this is exactly [`Interp::run`].
    ///
    /// # Errors
    ///
    /// As [`Interp::run`], plus any error the host's workers hit (the
    /// lowest-sibling error, matching sequential order).
    pub fn run_with_host<H: ForkHost>(
        &mut self,
        heap: &mut Heap,
        root: NodeId,
        args: &[Vec<Value>],
        host: &mut H,
    ) -> RResult<()> {
        let entries = self.fp.entries.clone();
        if entries.len() == 1 {
            let stub = self.fp.stub(entries[0]);
            let n = stub.slots.len();
            let flags: u64 = (1u64 << n) - 1;
            let part_args: Vec<Vec<Value>> = (0..n)
                .map(|i| args.get(i).cloned().unwrap_or_default())
                .collect();
            self.call_stub(heap, entries[0], root, flags, part_args, host)?;
        } else {
            for (i, &entry) in entries.iter().enumerate() {
                let part_args = vec![args.get(i).cloned().unwrap_or_default()];
                self.call_stub(heap, entry, root, 0b1, part_args, host)?;
            }
        }
        Ok(())
    }

    /// Dispatches one stub call — the worker-side entry for executing a
    /// [`ForkTask`] on a (shard) heap. Charges exactly what the in-line
    /// call would have charged from the dispatch onward.
    ///
    /// # Errors
    ///
    /// As [`Interp::run`].
    pub fn run_stub(
        &mut self,
        heap: &mut Heap,
        stub: StubId,
        node: NodeId,
        flags: u64,
        args: Vec<Vec<Value>>,
    ) -> RResult<()> {
        self.call_stub(heap, stub, node, flags, args, &mut NoFork)
    }

    /// [`Interp::run_stub`] with a [`ForkHost`] attached and the dispatched
    /// node's tree depth (root = 1), so a forked worker can keep forking
    /// at the correct level.
    ///
    /// # Errors
    ///
    /// As [`Interp::run_with_host`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_stub_with_host<H: ForkHost>(
        &mut self,
        heap: &mut Heap,
        stub: StubId,
        node: NodeId,
        flags: u64,
        args: Vec<Vec<Value>>,
        host: &mut H,
        depth: usize,
    ) -> RResult<()> {
        let saved = self.depth;
        self.depth = depth.saturating_sub(1);
        let r = self.call_stub(heap, stub, node, flags, args, host);
        self.depth = saved;
        r
    }

    /// The flattened global frame (identical layout across all tiers —
    /// every executor flattens with `flatten_globals`).
    pub fn globals_frame(&self) -> &[Value] {
        &self.globals
    }

    /// Overwrites the flattened global frame (fork workers start from the
    /// orchestrator's snapshot).
    pub fn set_globals_frame(&mut self, frame: &[Value]) {
        assert_eq!(frame.len(), self.globals.len(), "global frame layout");
        self.globals.copy_from_slice(frame);
    }

    fn touch(&mut self, addr: u64) {
        if let Some(cache) = &mut self.cache {
            cache.access(addr);
        }
    }

    fn slot_addr(&self, heap: &Heap, node: NodeId, slot: usize) -> u64 {
        heap.addr_of(node) + NODE_HEADER_BYTES + SLOT_BYTES * slot as u64
    }

    fn local_layout(&mut self, method: MethodId) -> Rc<(Vec<usize>, usize)> {
        if let Some(l) = self.local_layouts.get(&method) {
            return Rc::clone(l);
        }
        let layout = Rc::new(local_frame_layout(&self.fp.program, method));
        self.local_layouts.insert(method, Rc::clone(&layout));
        layout
    }

    fn call_stub<H: ForkHost>(
        &mut self,
        heap: &mut Heap,
        stub: StubId,
        node: NodeId,
        flags: u64,
        part_args: Vec<Vec<Value>>,
        host: &mut H,
    ) -> RResult<()> {
        self.depth += 1;
        let r = self.dispatch_stub(heap, stub, node, flags, part_args, host);
        self.depth -= 1;
        r
    }

    fn dispatch_stub<H: ForkHost>(
        &mut self,
        heap: &mut Heap,
        stub: StubId,
        node: NodeId,
        flags: u64,
        part_args: Vec<Vec<Value>>,
        host: &mut H,
    ) -> RResult<()> {
        if H::ENABLED && host.take_over(self.depth) {
            // Hand the whole subtree to the host's tier before any
            // dispatch cost is charged: the host's executor charges the
            // full call from the dispatch onward, exactly as
            // `Interp::run_stub` would.
            let task = ForkTask {
                stub,
                child: node,
                flags,
                args: part_args,
            };
            let out = host.run_subtree(heap, task, &mut self.globals)?;
            self.absorb_outcome(out);
            return Ok(());
        }
        // Virtual dispatch: read the node header (type tag / vtable).
        self.metrics.instructions += cost::DISPATCH;
        self.metrics.loads += 1;
        self.touch(heap.addr_of(node));
        let class = heap.class_of(node);
        let Some(target) = self.fp.stub(stub).target_for(class) else {
            return Err(RuntimeError::MissingTarget(
                self.fp.program.classes[class.index()].name.clone(),
            ));
        };
        if let Some(counts) = &mut self.class_visits {
            counts[class.index()] += 1;
        }
        self.run_fn(heap, target, node, flags, part_args, host)
    }

    /// Folds a host's counters back in (deterministic reduction: hosts
    /// merge their workers in sibling order, then we absorb here at the
    /// point the sequential run would have accrued the same counts).
    fn absorb_outcome(&mut self, out: ForkOutcome) {
        self.metrics.absorb(&out.metrics);
        if let (Some(mine), Some(theirs)) = (&mut self.class_visits, &out.class_visits) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    fn run_fn<H: ForkHost>(
        &mut self,
        heap: &mut Heap,
        fn_id: FusedFnId,
        node: NodeId,
        flags: u64,
        part_args: Vec<Vec<Value>>,
        host: &mut H,
    ) -> RResult<()> {
        self.metrics.visits += 1;
        // `fp` outlives `self`, so function data can be borrowed for the
        // whole call without holding a borrow of `self`.
        let fp = self.fp;
        let f = fp.function(fn_id);
        #[cfg(debug_assertions)]
        if std::env::var_os("GRAFTER_TRACE").is_some() {
            let names: Vec<&str> = f
                .seq
                .iter()
                .map(|m| fp.program.methods[m.index()].name.as_str())
                .collect();
            eprintln!(
                "F {:?} {:?} flags={:b} args={:?}",
                node, names, flags, part_args
            );
        }
        let multi = f.seq.len() > 1;
        let seq: &[MethodId] = &f.seq;

        // Build one frame per traversal copy, parameters first.
        let mut frames: Vec<Vec<Value>> = Vec::with_capacity(seq.len());
        for (ti, &m) in seq.iter().enumerate() {
            let layout = self.local_layout(m);
            let (offsets, size) = (&layout.0, layout.1);
            let mut frame = vec![Value::Int(0); size];
            let method = &fp.program.methods[m.index()];
            let args = part_args.get(ti).map(Vec::as_slice).unwrap_or(&[]);
            for (pi, arg) in args.iter().enumerate().take(method.n_params) {
                frame[offsets[pi]] = *arg;
            }
            frames.push(frame);
        }

        let mut active = flags;
        let mut i = 0;
        while i < f.body.len() {
            // Statically certified parallel-safe call run: offer the whole
            // run to the host. Charges up to and including argument
            // evaluation happen here, in sequential item order, so the
            // totals match a sequential run bit for bit.
            if H::ENABLED {
                if let Some(len) = fp.parallelism(fn_id).set_at(i) {
                    if host.should_fork(self.depth) {
                        let tasks = self.prepare_fork_tasks(
                            heap,
                            seq,
                            &mut frames,
                            node,
                            &f.body[i..i + len],
                            multi,
                            active,
                        )?;
                        let out = host.fork(heap, self.depth, tasks, &self.globals)?;
                        self.absorb_outcome(out);
                        i += len;
                        continue;
                    }
                }
            }
            let item = &f.body[i];
            i += 1;
            match item {
                ScheduledItem::Stmt { traversal, stmt } => {
                    if multi {
                        self.metrics.instructions += cost::GUARD;
                    }
                    let bit = 1u64 << traversal;
                    if active & bit == 0 {
                        continue;
                    }
                    let flow = self.exec_stmt(heap, seq, &mut frames, node, *traversal, stmt)?;
                    if matches!(flow, Flow::Returned) {
                        active &= !bit;
                        if active == 0 {
                            break;
                        }
                    }
                }
                ScheduledItem::Call {
                    receiver,
                    stub,
                    parts,
                } => {
                    if multi {
                        self.metrics.instructions += cost::GUARD;
                    }
                    // OR, not sum: several parts may share a traversal
                    // copy (e.g. a traversal that spawns the same helper
                    // twice on one child).
                    let mask: u64 = parts.iter().fold(0, |m, p| m | (1u64 << p.traversal));
                    if active & mask == 0 {
                        continue;
                    }
                    let Some(child) = self.navigate(heap, node, receiver)? else {
                        continue; // null child: traversal stops here
                    };
                    let mut call_flags = 0u64;
                    for (i, part) in parts.iter().enumerate() {
                        if multi {
                            self.metrics.instructions += cost::FLAG_SHUFFLE;
                        }
                        if active & (1u64 << part.traversal) != 0 {
                            call_flags |= 1u64 << i;
                        }
                    }
                    let args = self.eval_call_args(heap, seq, &mut frames, node, parts, active)?;
                    self.call_stub(heap, *stub, child, call_flags, args, host)?;
                }
            }
        }
        Ok(())
    }

    /// Prepares one [`ForkTask`] per live call in a parallel-safe run,
    /// charging exactly what the sequential loop charges before each call
    /// (guard, navigation, flag shuffles, argument evaluation), in item
    /// order. Null-child and fully-inactive calls produce no task — the
    /// sequential loop `continue`s past them too.
    #[allow(clippy::too_many_arguments)]
    fn prepare_fork_tasks(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        items: &[ScheduledItem],
        multi: bool,
        active: u64,
    ) -> RResult<Vec<ForkTask>> {
        let mut tasks = Vec::with_capacity(items.len());
        for item in items {
            let ScheduledItem::Call {
                receiver,
                stub,
                parts,
            } = item
            else {
                unreachable!("parallel-safe sets contain only Call items")
            };
            if multi {
                self.metrics.instructions += cost::GUARD;
            }
            let mask: u64 = parts.iter().fold(0, |m, p| m | (1u64 << p.traversal));
            if active & mask == 0 {
                continue;
            }
            let Some(child) = self.navigate(heap, node, receiver)? else {
                continue;
            };
            let mut call_flags = 0u64;
            for (i, part) in parts.iter().enumerate() {
                if multi {
                    self.metrics.instructions += cost::FLAG_SHUFFLE;
                }
                if active & (1u64 << part.traversal) != 0 {
                    call_flags |= 1u64 << i;
                }
            }
            let args = self.eval_call_args(heap, seq, frames, node, parts, active)?;
            tasks.push(ForkTask {
                stub: *stub,
                child,
                flags: call_flags,
                args,
            });
        }
        Ok(tasks)
    }

    fn eval_call_args(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        parts: &[CallPart],
        active: u64,
    ) -> RResult<Vec<Vec<Value>>> {
        let mut out = Vec::with_capacity(parts.len());
        for part in parts {
            if active & (1u64 << part.traversal) == 0 {
                // Truncated traversal: its callee never runs its statements,
                // so placeholder arguments are unobservable.
                out.push(vec![Value::Int(0); part.args.len()]);
                continue;
            }
            let mut vals = Vec::with_capacity(part.args.len());
            for a in &part.args {
                vals.push(self.eval(heap, seq, frames, node, part.traversal, a)?);
            }
            out.push(vals);
        }
        Ok(out)
    }

    /// Follows a receiver path, counting pointer loads; `None` if any step
    /// is null.
    fn navigate(&mut self, heap: &Heap, node: NodeId, path: &NodePath) -> RResult<Option<NodeId>> {
        let mut cur = node;
        for step in &path.steps {
            let class = heap.class_of(cur);
            let slot = heap.layouts().slot_of(class, step.field);
            self.metrics.instructions += 1;
            self.metrics.loads += 1;
            self.touch(self.slot_addr(heap, cur, slot));
            match heap.get(cur, slot) {
                Value::Ref(Some(c)) => cur = c,
                Value::Ref(None) => return Ok(None),
                _ => return Err(RuntimeError::NotARef),
            }
        }
        Ok(Some(cur))
    }

    fn exec_stmt(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        stmt: &Stmt,
    ) -> RResult<Flow> {
        match stmt {
            Stmt::Traverse(_) => {
                unreachable!("traversing calls are scheduled as Call items")
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(heap, seq, frames, node, traversal, value)?;
                self.write_access(heap, seq, frames, node, traversal, target, v)?;
                Ok(Flow::Continue)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.metrics.instructions += 1; // branch
                let c = self
                    .eval(heap, seq, frames, node, traversal, cond)?
                    .as_bool();
                let branch = if c { then_branch } else { else_branch };
                for s in branch {
                    if let Flow::Returned = self.exec_stmt(heap, seq, frames, node, traversal, s)? {
                        return Ok(Flow::Returned);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::LocalDef { local, init } => {
                if let Some(init) = init {
                    let v = self.eval(heap, seq, frames, node, traversal, init)?;
                    let method = seq[traversal];
                    let layout = self.local_layout(method);
                    let ty = self.fp.program.methods[method.index()].locals[local.index()].ty;
                    frames[traversal][layout.0[local.index()]] = coerce(ty, v);
                    self.metrics.instructions += 1;
                }
                Ok(Flow::Continue)
            }
            Stmt::New { target, class } => {
                // Navigate to the parent of the last step, then install a
                // fresh node in the child slot.
                let (parent, last) = self.navigate_to_parent(heap, node, target)?;
                let Some(parent) = parent else {
                    return Ok(Flow::Continue);
                };
                let fresh = heap.alloc(*class);
                self.metrics.instructions += cost::ALLOC;
                // Constructor initialises the node: touch its lines.
                let bytes = heap.layouts().node_bytes(*class);
                let base = heap.addr_of(fresh);
                if let Some(cache) = &mut self.cache {
                    cache.access_range(base, bytes);
                }
                self.metrics.stores += 1 + bytes / SLOT_BYTES;
                let pclass = heap.class_of(parent);
                let slot = heap.layouts().slot_of(pclass, last);
                self.touch(self.slot_addr(heap, parent, slot));
                heap.set(parent, slot, Value::Ref(Some(fresh)));
                Ok(Flow::Continue)
            }
            Stmt::Delete { target } => {
                let (parent, last) = self.navigate_to_parent(heap, node, target)?;
                let Some(parent) = parent else {
                    return Ok(Flow::Continue);
                };
                let pclass = heap.class_of(parent);
                let slot = heap.layouts().slot_of(pclass, last);
                self.metrics.loads += 1;
                self.touch(self.slot_addr(heap, parent, slot));
                if let Value::Ref(Some(victim)) = heap.get(parent, slot) {
                    let freed = heap.delete_subtree(victim);
                    self.metrics.instructions += cost::FREE * freed as u64;
                }
                heap.set(parent, slot, Value::Ref(None));
                self.metrics.stores += 1;
                Ok(Flow::Continue)
            }
            Stmt::Return => Ok(Flow::Returned),
            Stmt::PureStmt { pure, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(heap, seq, frames, node, traversal, a)?);
                }
                let name = &self.fp.program.pures[pure.index()].name;
                let Some(f) = self.pures.get(name) else {
                    return Err(RuntimeError::MissingPure(name.clone()));
                };
                self.metrics.instructions += 1 + args.len() as u64;
                f(&vals);
                Ok(Flow::Continue)
            }
        }
    }

    /// Navigates to the parent node of the last step of `path`, returning
    /// the parent and the final child field.
    fn navigate_to_parent(
        &mut self,
        heap: &Heap,
        node: NodeId,
        path: &NodePath,
    ) -> RResult<(Option<NodeId>, grafter_frontend::FieldId)> {
        let last = path
            .steps
            .last()
            .expect("topology targets have a step")
            .field;
        let prefix = NodePath {
            base_cast: path.base_cast,
            steps: path.steps[..path.steps.len() - 1].to_vec(),
        };
        Ok((self.navigate(heap, node, &prefix)?, last))
    }

    fn eval(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        expr: &Expr,
    ) -> RResult<Value> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(v) => Ok(Value::Bool(*v)),
            Expr::Read(access) => self.read_access(heap, seq, frames, node, traversal, access),
            Expr::Unary(op, e) => {
                let v = self.eval(heap, seq, frames, node, traversal, e)?;
                self.metrics.instructions += 1;
                Ok(crate::ops::unop(*op, v))
            }
            Expr::Binary(op, l, r) => {
                // && and || short-circuit like the C++ they model.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = self.eval(heap, seq, frames, node, traversal, l)?.as_bool();
                    self.metrics.instructions += 1;
                    let short = matches!(op, BinOp::And) != lv;
                    // For And: short-circuit when lv == false; for Or, when
                    // lv == true.
                    if short {
                        return Ok(Value::Bool(lv));
                    }
                    let rv = self.eval(heap, seq, frames, node, traversal, r)?.as_bool();
                    return Ok(Value::Bool(rv));
                }
                let lv = self.eval(heap, seq, frames, node, traversal, l)?;
                let rv = self.eval(heap, seq, frames, node, traversal, r)?;
                self.metrics.instructions += 1;
                Ok(binop(*op, lv, rv))
            }
            Expr::PureCall(pure, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(heap, seq, frames, node, traversal, a)?);
                }
                let decl = &self.fp.program.pures[pure.index()];
                let Some(f) = self.pures.get(&decl.name) else {
                    return Err(RuntimeError::MissingPure(decl.name.clone()));
                };
                self.metrics.instructions += 1 + args.len() as u64;
                Ok(coerce(decl.return_type, f(&vals)))
            }
        }
    }

    fn read_access(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        access: &DataAccess,
    ) -> RResult<Value> {
        match access {
            DataAccess::OnTree { path, data } => {
                let Some(target) = self.navigate(heap, node, path)? else {
                    return Err(RuntimeError::NullDeref);
                };
                let class = heap.class_of(target);
                let slot = heap.layouts().slot_of_chain(class, data);
                self.metrics.instructions += 1;
                self.metrics.loads += 1;
                self.touch(self.slot_addr(heap, target, slot));
                Ok(heap.get(target, slot))
            }
            DataAccess::Local { local, members } => {
                let method = seq[traversal];
                let layout = self.local_layout(method);
                let mut slot = layout.0[local.index()];
                for m in members {
                    slot += heap.layouts().member_offset(*m);
                }
                self.metrics.instructions += 1;
                Ok(frames[traversal][slot])
            }
            DataAccess::Global { global, members } => {
                let mut idx = self.global_offsets[global.index()];
                for m in members {
                    idx += heap.layouts().member_offset(*m);
                }
                self.metrics.instructions += 1;
                self.metrics.loads += 1;
                self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                Ok(self.globals[idx])
            }
        }
    }

    // The interpreter threads its whole execution context (heap, fused
    // sequence, per-traversal frames) through every access.
    #[allow(clippy::too_many_arguments)]
    fn write_access(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        access: &DataAccess,
        value: Value,
    ) -> RResult<()> {
        match access {
            DataAccess::OnTree { path, data } => {
                let Some(target) = self.navigate(heap, node, path)? else {
                    return Err(RuntimeError::NullDeref);
                };
                let class = heap.class_of(target);
                let slot = heap.layouts().slot_of_chain(class, data);
                let ty = field_ty(&self.fp.program, data);
                self.metrics.instructions += 1;
                self.metrics.stores += 1;
                self.touch(self.slot_addr(heap, target, slot));
                #[cfg(debug_assertions)]
                if std::env::var_os("GRAFTER_TRACE").is_some() {
                    let last = data.last().unwrap();
                    eprintln!(
                        "W {:?} {} = {:?}",
                        target,
                        self.fp.program.fields[last.index()].name,
                        value
                    );
                }
                heap.set(target, slot, coerce(ty, value));
            }
            DataAccess::Local { local, members } => {
                let method = seq[traversal];
                let layout = self.local_layout(method);
                let mut slot = layout.0[local.index()];
                let mut ty = self.fp.program.methods[method.index()].locals[local.index()].ty;
                for m in members {
                    slot += heap.layouts().member_offset(*m);
                    ty = field_ty(&self.fp.program, &[*m]);
                }
                self.metrics.instructions += 1;
                frames[traversal][slot] = coerce(ty, value);
            }
            DataAccess::Global { global, members } => {
                let mut idx = self.global_offsets[global.index()];
                let mut ty = self.fp.program.globals[global.index()].ty;
                for m in members {
                    idx += heap.layouts().member_offset(*m);
                    ty = field_ty(&self.fp.program, &[*m]);
                }
                self.metrics.instructions += 1;
                self.metrics.stores += 1;
                self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                self.globals[idx] = coerce(ty, value);
            }
        }
        Ok(())
    }
}
