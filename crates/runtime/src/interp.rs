//! The instrumented interpreter for fused programs.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use grafter::{CallPart, FusedFnId, FusedProgram, ScheduledItem, StubId};
use grafter_cachesim::CacheHierarchy;
use grafter_frontend::{BinOp, DataAccess, Expr, MethodId, NodePath, Stmt};

use crate::heap::{Heap, NodeId, NODE_HEADER_BYTES, SLOT_BYTES};
use crate::metrics::{cost, Metrics};
use crate::ops::{binop, coerce, field_ty, flatten_globals, local_frame_layout};
use crate::pure::PureRegistry;
use crate::Value;

/// Errors surfaced while executing a fused program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A data access navigated through a null child pointer.
    NullDeref,
    /// A `pure` function has no registered native implementation.
    MissingPure(String),
    /// A stub had no fused function for the receiver's dynamic type.
    MissingTarget(String),
    /// A child slot held a non-reference value (heap corruption).
    NotARef,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullDeref => write!(f, "null child dereferenced in a data access"),
            RuntimeError::MissingPure(name) => {
                write!(f, "pure function `{name}` has no native implementation")
            }
            RuntimeError::MissingTarget(class) => {
                write!(f, "no fused function for dynamic type `{class}`")
            }
            RuntimeError::NotARef => write!(f, "child slot does not hold a reference"),
        }
    }
}

impl std::error::Error for RuntimeError {}

type RResult<T> = Result<T, RuntimeError>;

enum Flow {
    Continue,
    Returned,
}

/// Executes a [`FusedProgram`] against a [`Heap`], collecting [`Metrics`]
/// and (optionally) driving a cache simulator.
pub struct Interp<'a> {
    fp: &'a FusedProgram,
    /// Counters for the current run (reset with [`Metrics::reset`]).
    pub metrics: Metrics,
    /// Optional simulated memory hierarchy fed with every field access.
    pub cache: Option<CacheHierarchy>,
    pures: PureRegistry,
    /// Flattened global values (structs expanded), plus their addresses.
    globals: Vec<Value>,
    global_offsets: Vec<usize>,
    /// Per-method local frame layout: slot offset of each local, total size.
    local_layouts: HashMap<MethodId, Rc<(Vec<usize>, usize)>>,
    /// Per-class visit counters of a probed run, indexed by
    /// [`grafter_frontend::ClassId`]; `None` (the default) records
    /// nothing and costs one predicted branch per dispatch.
    class_visits: Option<Vec<u64>>,
}

const GLOBALS_BASE_ADDR: u64 = 0x1000;

impl<'a> Interp<'a> {
    /// Creates an interpreter with the default math pures and no cache.
    pub fn new(fp: &'a FusedProgram) -> Self {
        Interp::with_pures(fp, PureRegistry::with_math())
    }

    /// Creates an interpreter with a custom pure-function registry.
    pub fn with_pures(fp: &'a FusedProgram, pures: PureRegistry) -> Self {
        let (globals, global_offsets) = flatten_globals(&fp.program);
        Interp {
            fp,
            metrics: Metrics::default(),
            cache: None,
            pures,
            globals,
            global_offsets,
            local_layouts: HashMap::new(),
            class_visits: None,
        }
    }

    /// Attaches a cache hierarchy (all subsequent accesses are simulated).
    pub fn with_cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches zeroed per-class visit counters: every successful dispatch
    /// bumps the receiver's dynamic-class slot. `Metrics` and cache
    /// traffic are unchanged — the counters sit outside the cost model.
    pub fn with_class_counts(mut self) -> Self {
        self.class_visits = Some(vec![0; self.fp.program.classes.len()]);
        self
    }

    /// Detaches and returns the per-class visit counters, if
    /// [`Interp::with_class_counts`] attached any (indexed by class id).
    pub fn take_class_counts(&mut self) -> Option<Vec<u64>> {
        self.class_visits.take()
    }

    /// Sets a global variable by name before a run.
    pub fn set_global(&mut self, name: &str, value: Value) -> Option<()> {
        let g = self.fp.program.global_by_name(name)?;
        self.globals[self.global_offsets[g.index()]] = value;
        Some(())
    }

    /// Reads a global variable by name.
    pub fn global(&self, name: &str) -> Option<Value> {
        let g = self.fp.program.global_by_name(name)?;
        Some(self.globals[self.global_offsets[g.index()]])
    }

    /// Runs the fused program's entry sequence on `root`.
    ///
    /// `args[i]` are the arguments of the `i`-th entry traversal.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if execution dereferences a null child in
    /// a data access, calls an unregistered pure, or dispatch fails.
    pub fn run(&mut self, heap: &mut Heap, root: NodeId, args: &[Vec<Value>]) -> RResult<()> {
        let entries = self.fp.entries.clone();
        if entries.len() == 1 {
            let stub = self.fp.stub(entries[0]);
            let n = stub.slots.len();
            let flags: u64 = (1u64 << n) - 1;
            let part_args: Vec<Vec<Value>> = (0..n)
                .map(|i| args.get(i).cloned().unwrap_or_default())
                .collect();
            self.call_stub(heap, entries[0], root, flags, part_args)?;
        } else {
            for (i, &entry) in entries.iter().enumerate() {
                let part_args = vec![args.get(i).cloned().unwrap_or_default()];
                self.call_stub(heap, entry, root, 0b1, part_args)?;
            }
        }
        Ok(())
    }

    fn touch(&mut self, addr: u64) {
        if let Some(cache) = &mut self.cache {
            cache.access(addr);
        }
    }

    fn slot_addr(&self, heap: &Heap, node: NodeId, slot: usize) -> u64 {
        heap.addr_of(node) + NODE_HEADER_BYTES + SLOT_BYTES * slot as u64
    }

    fn local_layout(&mut self, method: MethodId) -> Rc<(Vec<usize>, usize)> {
        if let Some(l) = self.local_layouts.get(&method) {
            return Rc::clone(l);
        }
        let layout = Rc::new(local_frame_layout(&self.fp.program, method));
        self.local_layouts.insert(method, Rc::clone(&layout));
        layout
    }

    fn call_stub(
        &mut self,
        heap: &mut Heap,
        stub: StubId,
        node: NodeId,
        flags: u64,
        part_args: Vec<Vec<Value>>,
    ) -> RResult<()> {
        // Virtual dispatch: read the node header (type tag / vtable).
        self.metrics.instructions += cost::DISPATCH;
        self.metrics.loads += 1;
        self.touch(heap.addr_of(node));
        let class = heap.class_of(node);
        let Some(target) = self.fp.stub(stub).target_for(class) else {
            return Err(RuntimeError::MissingTarget(
                self.fp.program.classes[class.index()].name.clone(),
            ));
        };
        if let Some(counts) = &mut self.class_visits {
            counts[class.index()] += 1;
        }
        self.run_fn(heap, target, node, flags, part_args)
    }

    fn run_fn(
        &mut self,
        heap: &mut Heap,
        fn_id: FusedFnId,
        node: NodeId,
        flags: u64,
        part_args: Vec<Vec<Value>>,
    ) -> RResult<()> {
        self.metrics.visits += 1;
        // `fp` outlives `self`, so function data can be borrowed for the
        // whole call without holding a borrow of `self`.
        let fp = self.fp;
        let f = fp.function(fn_id);
        #[cfg(debug_assertions)]
        if std::env::var_os("GRAFTER_TRACE").is_some() {
            let names: Vec<&str> = f
                .seq
                .iter()
                .map(|m| fp.program.methods[m.index()].name.as_str())
                .collect();
            eprintln!(
                "F {:?} {:?} flags={:b} args={:?}",
                node, names, flags, part_args
            );
        }
        let multi = f.seq.len() > 1;
        let seq: &[MethodId] = &f.seq;

        // Build one frame per traversal copy, parameters first.
        let mut frames: Vec<Vec<Value>> = Vec::with_capacity(seq.len());
        for (ti, &m) in seq.iter().enumerate() {
            let layout = self.local_layout(m);
            let (offsets, size) = (&layout.0, layout.1);
            let mut frame = vec![Value::Int(0); size];
            let method = &fp.program.methods[m.index()];
            let args = part_args.get(ti).map(Vec::as_slice).unwrap_or(&[]);
            for (pi, arg) in args.iter().enumerate().take(method.n_params) {
                frame[offsets[pi]] = *arg;
            }
            frames.push(frame);
        }

        let mut active = flags;
        for item in &f.body {
            match item {
                ScheduledItem::Stmt { traversal, stmt } => {
                    if multi {
                        self.metrics.instructions += cost::GUARD;
                    }
                    let bit = 1u64 << traversal;
                    if active & bit == 0 {
                        continue;
                    }
                    let flow = self.exec_stmt(heap, seq, &mut frames, node, *traversal, stmt)?;
                    if matches!(flow, Flow::Returned) {
                        active &= !bit;
                        if active == 0 {
                            break;
                        }
                    }
                }
                ScheduledItem::Call {
                    receiver,
                    stub,
                    parts,
                } => {
                    if multi {
                        self.metrics.instructions += cost::GUARD;
                    }
                    // OR, not sum: several parts may share a traversal
                    // copy (e.g. a traversal that spawns the same helper
                    // twice on one child).
                    let mask: u64 = parts.iter().fold(0, |m, p| m | (1u64 << p.traversal));
                    if active & mask == 0 {
                        continue;
                    }
                    let Some(child) = self.navigate(heap, node, receiver)? else {
                        continue; // null child: traversal stops here
                    };
                    let mut call_flags = 0u64;
                    for (i, part) in parts.iter().enumerate() {
                        if multi {
                            self.metrics.instructions += cost::FLAG_SHUFFLE;
                        }
                        if active & (1u64 << part.traversal) != 0 {
                            call_flags |= 1u64 << i;
                        }
                    }
                    let args = self.eval_call_args(heap, seq, &mut frames, node, parts, active)?;
                    self.call_stub(heap, *stub, child, call_flags, args)?;
                }
            }
        }
        Ok(())
    }

    fn eval_call_args(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        parts: &[CallPart],
        active: u64,
    ) -> RResult<Vec<Vec<Value>>> {
        let mut out = Vec::with_capacity(parts.len());
        for part in parts {
            if active & (1u64 << part.traversal) == 0 {
                // Truncated traversal: its callee never runs its statements,
                // so placeholder arguments are unobservable.
                out.push(vec![Value::Int(0); part.args.len()]);
                continue;
            }
            let mut vals = Vec::with_capacity(part.args.len());
            for a in &part.args {
                vals.push(self.eval(heap, seq, frames, node, part.traversal, a)?);
            }
            out.push(vals);
        }
        Ok(out)
    }

    /// Follows a receiver path, counting pointer loads; `None` if any step
    /// is null.
    fn navigate(&mut self, heap: &Heap, node: NodeId, path: &NodePath) -> RResult<Option<NodeId>> {
        let mut cur = node;
        for step in &path.steps {
            let class = heap.class_of(cur);
            let slot = heap.layouts().slot_of(class, step.field);
            self.metrics.instructions += 1;
            self.metrics.loads += 1;
            self.touch(self.slot_addr(heap, cur, slot));
            match heap.get(cur, slot) {
                Value::Ref(Some(c)) => cur = c,
                Value::Ref(None) => return Ok(None),
                _ => return Err(RuntimeError::NotARef),
            }
        }
        Ok(Some(cur))
    }

    fn exec_stmt(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        stmt: &Stmt,
    ) -> RResult<Flow> {
        match stmt {
            Stmt::Traverse(_) => {
                unreachable!("traversing calls are scheduled as Call items")
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(heap, seq, frames, node, traversal, value)?;
                self.write_access(heap, seq, frames, node, traversal, target, v)?;
                Ok(Flow::Continue)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.metrics.instructions += 1; // branch
                let c = self
                    .eval(heap, seq, frames, node, traversal, cond)?
                    .as_bool();
                let branch = if c { then_branch } else { else_branch };
                for s in branch {
                    if let Flow::Returned = self.exec_stmt(heap, seq, frames, node, traversal, s)? {
                        return Ok(Flow::Returned);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::LocalDef { local, init } => {
                if let Some(init) = init {
                    let v = self.eval(heap, seq, frames, node, traversal, init)?;
                    let method = seq[traversal];
                    let layout = self.local_layout(method);
                    let ty = self.fp.program.methods[method.index()].locals[local.index()].ty;
                    frames[traversal][layout.0[local.index()]] = coerce(ty, v);
                    self.metrics.instructions += 1;
                }
                Ok(Flow::Continue)
            }
            Stmt::New { target, class } => {
                // Navigate to the parent of the last step, then install a
                // fresh node in the child slot.
                let (parent, last) = self.navigate_to_parent(heap, node, target)?;
                let Some(parent) = parent else {
                    return Ok(Flow::Continue);
                };
                let fresh = heap.alloc(*class);
                self.metrics.instructions += cost::ALLOC;
                // Constructor initialises the node: touch its lines.
                let bytes = heap.layouts().node_bytes(*class);
                let base = heap.addr_of(fresh);
                if let Some(cache) = &mut self.cache {
                    cache.access_range(base, bytes);
                }
                self.metrics.stores += 1 + bytes / SLOT_BYTES;
                let pclass = heap.class_of(parent);
                let slot = heap.layouts().slot_of(pclass, last);
                self.touch(self.slot_addr(heap, parent, slot));
                heap.set(parent, slot, Value::Ref(Some(fresh)));
                Ok(Flow::Continue)
            }
            Stmt::Delete { target } => {
                let (parent, last) = self.navigate_to_parent(heap, node, target)?;
                let Some(parent) = parent else {
                    return Ok(Flow::Continue);
                };
                let pclass = heap.class_of(parent);
                let slot = heap.layouts().slot_of(pclass, last);
                self.metrics.loads += 1;
                self.touch(self.slot_addr(heap, parent, slot));
                if let Value::Ref(Some(victim)) = heap.get(parent, slot) {
                    let freed = heap.delete_subtree(victim);
                    self.metrics.instructions += cost::FREE * freed as u64;
                }
                heap.set(parent, slot, Value::Ref(None));
                self.metrics.stores += 1;
                Ok(Flow::Continue)
            }
            Stmt::Return => Ok(Flow::Returned),
            Stmt::PureStmt { pure, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(heap, seq, frames, node, traversal, a)?);
                }
                let name = &self.fp.program.pures[pure.index()].name;
                let Some(f) = self.pures.get(name) else {
                    return Err(RuntimeError::MissingPure(name.clone()));
                };
                self.metrics.instructions += 1 + args.len() as u64;
                f(&vals);
                Ok(Flow::Continue)
            }
        }
    }

    /// Navigates to the parent node of the last step of `path`, returning
    /// the parent and the final child field.
    fn navigate_to_parent(
        &mut self,
        heap: &Heap,
        node: NodeId,
        path: &NodePath,
    ) -> RResult<(Option<NodeId>, grafter_frontend::FieldId)> {
        let last = path
            .steps
            .last()
            .expect("topology targets have a step")
            .field;
        let prefix = NodePath {
            base_cast: path.base_cast,
            steps: path.steps[..path.steps.len() - 1].to_vec(),
        };
        Ok((self.navigate(heap, node, &prefix)?, last))
    }

    fn eval(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        expr: &Expr,
    ) -> RResult<Value> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(v) => Ok(Value::Bool(*v)),
            Expr::Read(access) => self.read_access(heap, seq, frames, node, traversal, access),
            Expr::Unary(op, e) => {
                let v = self.eval(heap, seq, frames, node, traversal, e)?;
                self.metrics.instructions += 1;
                Ok(crate::ops::unop(*op, v))
            }
            Expr::Binary(op, l, r) => {
                // && and || short-circuit like the C++ they model.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = self.eval(heap, seq, frames, node, traversal, l)?.as_bool();
                    self.metrics.instructions += 1;
                    let short = matches!(op, BinOp::And) != lv;
                    // For And: short-circuit when lv == false; for Or, when
                    // lv == true.
                    if short {
                        return Ok(Value::Bool(lv));
                    }
                    let rv = self.eval(heap, seq, frames, node, traversal, r)?.as_bool();
                    return Ok(Value::Bool(rv));
                }
                let lv = self.eval(heap, seq, frames, node, traversal, l)?;
                let rv = self.eval(heap, seq, frames, node, traversal, r)?;
                self.metrics.instructions += 1;
                Ok(binop(*op, lv, rv))
            }
            Expr::PureCall(pure, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(heap, seq, frames, node, traversal, a)?);
                }
                let decl = &self.fp.program.pures[pure.index()];
                let Some(f) = self.pures.get(&decl.name) else {
                    return Err(RuntimeError::MissingPure(decl.name.clone()));
                };
                self.metrics.instructions += 1 + args.len() as u64;
                Ok(coerce(decl.return_type, f(&vals)))
            }
        }
    }

    fn read_access(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        access: &DataAccess,
    ) -> RResult<Value> {
        match access {
            DataAccess::OnTree { path, data } => {
                let Some(target) = self.navigate(heap, node, path)? else {
                    return Err(RuntimeError::NullDeref);
                };
                let class = heap.class_of(target);
                let slot = heap.layouts().slot_of_chain(class, data);
                self.metrics.instructions += 1;
                self.metrics.loads += 1;
                self.touch(self.slot_addr(heap, target, slot));
                Ok(heap.get(target, slot))
            }
            DataAccess::Local { local, members } => {
                let method = seq[traversal];
                let layout = self.local_layout(method);
                let mut slot = layout.0[local.index()];
                for m in members {
                    slot += heap.layouts().member_offset(*m);
                }
                self.metrics.instructions += 1;
                Ok(frames[traversal][slot])
            }
            DataAccess::Global { global, members } => {
                let mut idx = self.global_offsets[global.index()];
                for m in members {
                    idx += heap.layouts().member_offset(*m);
                }
                self.metrics.instructions += 1;
                self.metrics.loads += 1;
                self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                Ok(self.globals[idx])
            }
        }
    }

    // The interpreter threads its whole execution context (heap, fused
    // sequence, per-traversal frames) through every access.
    #[allow(clippy::too_many_arguments)]
    fn write_access(
        &mut self,
        heap: &mut Heap,
        seq: &[MethodId],
        frames: &mut [Vec<Value>],
        node: NodeId,
        traversal: usize,
        access: &DataAccess,
        value: Value,
    ) -> RResult<()> {
        match access {
            DataAccess::OnTree { path, data } => {
                let Some(target) = self.navigate(heap, node, path)? else {
                    return Err(RuntimeError::NullDeref);
                };
                let class = heap.class_of(target);
                let slot = heap.layouts().slot_of_chain(class, data);
                let ty = field_ty(&self.fp.program, data);
                self.metrics.instructions += 1;
                self.metrics.stores += 1;
                self.touch(self.slot_addr(heap, target, slot));
                #[cfg(debug_assertions)]
                if std::env::var_os("GRAFTER_TRACE").is_some() {
                    let last = data.last().unwrap();
                    eprintln!(
                        "W {:?} {} = {:?}",
                        target,
                        self.fp.program.fields[last.index()].name,
                        value
                    );
                }
                heap.set(target, slot, coerce(ty, value));
            }
            DataAccess::Local { local, members } => {
                let method = seq[traversal];
                let layout = self.local_layout(method);
                let mut slot = layout.0[local.index()];
                let mut ty = self.fp.program.methods[method.index()].locals[local.index()].ty;
                for m in members {
                    slot += heap.layouts().member_offset(*m);
                    ty = field_ty(&self.fp.program, &[*m]);
                }
                self.metrics.instructions += 1;
                frames[traversal][slot] = coerce(ty, value);
            }
            DataAccess::Global { global, members } => {
                let mut idx = self.global_offsets[global.index()];
                let mut ty = self.fp.program.globals[global.index()].ty;
                for m in members {
                    idx += heap.layouts().member_offset(*m);
                    ty = field_ty(&self.fp.program, &[*m]);
                }
                self.metrics.instructions += 1;
                self.metrics.stores += 1;
                self.touch(GLOBALS_BASE_ADDR + SLOT_BYTES * idx as u64);
                self.globals[idx] = coerce(ty, value);
            }
        }
        Ok(())
    }
}
