//! Performance counters matching the paper's four measured quantities.

use grafter_cachesim::HierarchyStats;

/// Abstract cost constants of the instruction model.
///
/// These mirror the shape of the code Grafter generates (Fig. 6): virtual
/// dispatch through a stub, a guard test per statement when traversals are
/// fused, and two flag-shuffling instructions per grouped call part.
pub mod cost {
    /// Virtual dispatch of a (stub) call: vtable load, indirect call,
    /// prologue/epilogue.
    pub const DISPATCH: u64 = 5;
    /// One `active_flags & mask` guard test.
    pub const GUARD: u64 = 1;
    /// Shift+or pair filling `call_flags` for one part (Fig. 6 lines 8–11).
    pub const FLAG_SHUFFLE: u64 = 2;
    /// Allocation of one node (`new`).
    pub const ALLOC: u64 = 16;
    /// Deallocation of one node (`delete`).
    pub const FREE: u64 = 8;
}

/// Counters collected by one interpreter run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of times any traversal function is called on any node —
    /// the paper's performance-agnostic fusion-effectiveness measure.
    pub visits: u64,
    /// Abstract instructions executed (expression ops, guards, flag
    /// arithmetic, dispatch overhead).
    pub instructions: u64,
    /// Field loads issued to the memory system.
    pub loads: u64,
    /// Field stores issued to the memory system.
    pub stores: u64,
}

impl Metrics {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Folds another run's counters into this one (fork-join reduction:
    /// u64 sums, so any deterministic order gives the sequential totals).
    pub fn absorb(&mut self, other: &Metrics) {
        self.visits += other.visits;
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
    }

    /// Total memory operations.
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Modelled runtime in cycles: one cycle per instruction plus the
    /// memory-stall cycles accumulated by the cache hierarchy.
    pub fn cycles(&self, cache: &HierarchyStats) -> u64 {
        self.instructions + cache.cycles
    }
}
