//! Tree runtime and instrumented interpreter for fused Grafter programs.
//!
//! The original Grafter emits C++ and measures with hardware counters. This
//! reproduction executes [`grafter::FusedProgram`]s directly on a simulated
//! heap, collecting the paper's four metrics deterministically:
//!
//! - **node visits** — one per dispatch of a (fused) traversal on a node;
//! - **instructions** — an abstract instruction count that charges the same
//!   overheads the generated C++ would execute (active-flag guards,
//!   call-flag shuffling, dispatch stubs), so fusion's instruction overhead
//!   is visible exactly as in the paper;
//! - **memory accesses / cache misses** — every field access is issued at a
//!   byte address to a [`grafter_cachesim::CacheHierarchy`];
//! - **runtime** — a cycle model (instructions + memory stalls), and real
//!   wall-clock when driven by Criterion benches.
//!
//! The heap assigns nodes bump-allocated addresses in construction order
//! (like `malloc` in the paper's C++ runs), so locality effects of fusion
//! are faithfully reproduced.
//!
//! # Example
//!
//! ```
//! use grafter::{fuse, FuseOptions};
//! use grafter_runtime::{Heap, Interp, Value};
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0; int b = 0;
//!         virtual traversal incA() {}
//!         virtual traversal incB() {}
//!     }
//!     tree class Cons : Node {
//!         traversal incA() { a = a + 1; this->next->incA(); }
//!         traversal incB() { b = b + 1; this->next->incB(); }
//!     }
//!     tree class End : Node { }
//! "#;
//! let program = grafter_frontend::compile(src).unwrap();
//! let fused = fuse(&program, "Node", &["incA", "incB"], &FuseOptions::default()).unwrap();
//!
//! let mut heap = Heap::new(&program);
//! let end = heap.alloc_by_name("End").unwrap();
//! let cons = heap.alloc_by_name("Cons").unwrap();
//! heap.set_child_by_name(cons, "next", Some(end)).unwrap();
//!
//! let mut interp = Interp::new(&fused);
//! interp.run(&mut heap, cons, &[]).unwrap();
//! assert_eq!(heap.get_by_name(cons, "a").unwrap(), Value::Int(1));
//! // One fused pass: a single visit of each of the two nodes.
//! assert_eq!(interp.metrics.visits, 2);
//! ```

mod heap;
mod interp;
mod metrics;
pub mod ops;
pub mod pipeline;
mod pure;

pub use heap::{default_literal, Heap, Layouts, NodeId, SnapValue, NODE_HEADER_BYTES, SLOT_BYTES};
pub use interp::{ForkHost, ForkOutcome, ForkTask, Interp, NoFork, RuntimeError};
pub use metrics::{cost, Metrics};
pub use pure::{NativeFn, PureRegistry};

/// Runs `f` on a dedicated thread with `bytes` of stack.
///
/// The interpreter recurses once per tree level, exactly like the C++ the
/// paper generates; very deep trees (long sibling chains) therefore need a
/// large stack. Experiment harnesses wrap their runs in this helper.
///
/// # Panics
///
/// Panics if the worker thread cannot be spawned or if `f` panics.
pub fn with_stack<T: Send + 'static>(bytes: usize, f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(bytes)
        .spawn(f)
        .expect("spawn worker with large stack")
        .join()
        .expect("worker thread panicked")
}

/// A runtime value stored in node slots, locals and globals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    /// A child pointer (`None` = null).
    Ref(Option<NodeId>),
}

impl Value {
    /// Numeric view (int or float) as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not numeric.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    /// Integer view, truncating floats.
    ///
    /// # Panics
    ///
    /// Panics if the value is not numeric.
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    /// Boolean view.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a bool.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            other => panic!("expected a bool, got {other:?}"),
        }
    }
}
