//! Registry of native implementations for `pure` functions.
//!
//! Grafter treats `pure` functions as opaque, read-only C++ (paper §3.1);
//! their bodies are never analysed. The runtime mirrors that: a pure
//! function is a native Rust closure registered by name.

use std::collections::HashMap;

use crate::Value;

/// A native pure function.
pub type NativeFn = fn(&[Value]) -> Value;

/// Name → native function map used by the interpreter.
#[derive(Clone, Default)]
pub struct PureRegistry {
    fns: HashMap<String, NativeFn>,
}

impl PureRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PureRegistry::default()
    }

    /// Creates a registry pre-populated with common math helpers:
    /// `sqrtf`, `powf`, `fabs`, `fmin`, `fmax`, `floorf`, `logf`, `expf`.
    pub fn with_math() -> Self {
        let mut r = PureRegistry::new();
        r.register("sqrtf", |a| Value::Float(a[0].as_f64().sqrt()));
        r.register("powf", |a| Value::Float(a[0].as_f64().powf(a[1].as_f64())));
        r.register("fabs", |a| Value::Float(a[0].as_f64().abs()));
        r.register("fmin", |a| Value::Float(a[0].as_f64().min(a[1].as_f64())));
        r.register("fmax", |a| Value::Float(a[0].as_f64().max(a[1].as_f64())));
        r.register("floorf", |a| Value::Float(a[0].as_f64().floor()));
        r.register("logf", |a| Value::Float(a[0].as_f64().ln()));
        r.register("expf", |a| Value::Float(a[0].as_f64().exp()));
        r
    }

    /// Registers (or replaces) a native function under `name`.
    pub fn register(&mut self, name: &str, f: NativeFn) {
        self.fns.insert(name.to_string(), f);
    }

    /// Looks up a native function.
    pub fn get(&self, name: &str) -> Option<NativeFn> {
        self.fns.get(name).copied()
    }
}

impl std::fmt::Debug for PureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PureRegistry")
            .field("functions", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}
