//! Node heap, class layouts and tree construction helpers.
//!
//! Nodes live in one contiguous **slot arena**: a node is a small
//! `(class, base)` record indexing into a single `Vec<Value>` pool, bump
//! allocated in construction order. Simulated addresses are derived from
//! the record (header bytes per node + slot bytes per pool slot), so they
//! are identical to the per-node-`malloc` scheme the paper's C++ runs
//! against while the Rust side touches no allocator on the hot path. The
//! arena is reusable: [`Heap::reset`] drops every node but keeps the
//! pool's capacity, so a session can run many inputs with zero steady-state
//! allocation (and bit-identical addresses each time).

use std::collections::HashMap;
use std::sync::Arc;

use grafter_frontend::{ast::Literal, ClassId, FieldId, FieldKind, Program, Ty};

use crate::Value;

/// Index of a node in a [`Heap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Byte size of the per-node header (holds the dynamic type, like a vtable
/// pointer).
pub const NODE_HEADER_BYTES: u64 = 8;
/// Byte size of one slot (all values are machine-word sized).
pub const SLOT_BYTES: u64 = 8;

/// Simulated address of the first allocated node (skips a "reserved" low
/// range, like a real process image).
const HEAP_BASE_ADDR: u64 = 0x10_0000;

/// Flattened field layouts of every class in a program.
///
/// Each class lays out its inherited fields first (base-class subobject),
/// then its own; struct-typed data fields are flattened into one slot per
/// member, mirroring the C++ object layout Grafter's generated code runs
/// against.
#[derive(Clone, Debug)]
pub struct Layouts {
    /// `(class, field)` → first slot of the field.
    offsets: HashMap<(ClassId, FieldId), usize>,
    /// Struct member → offset within its struct.
    member_offsets: HashMap<FieldId, usize>,
    /// Slots per class.
    sizes: Vec<usize>,
    /// Per-class default slot values.
    defaults: Vec<Vec<Value>>,
    /// Per-slot field names (for snapshots/debugging).
    slot_names: Vec<Vec<String>>,
}

fn ty_slots(program: &Program, ty: Ty) -> usize {
    match ty {
        Ty::Int | Ty::Float | Ty::Bool => 1,
        Ty::Struct(s) => program.structs[s.index()].members.len(),
        Ty::Node(_) => 1,
    }
}

/// Default value of a primitive/child slot, honouring a declared literal.
pub fn default_literal(ty: Ty, lit: Option<Literal>) -> Value {
    match (ty, lit) {
        (Ty::Int, Some(Literal::Int(v))) => Value::Int(v),
        (Ty::Float, Some(Literal::Int(v))) => Value::Float(v as f64),
        (Ty::Float, Some(Literal::Float(v))) => Value::Float(v),
        (Ty::Bool, Some(Literal::Bool(v))) => Value::Bool(v),
        (Ty::Int, _) => Value::Int(0),
        (Ty::Float, _) => Value::Float(0.0),
        (Ty::Bool, _) => Value::Bool(false),
        (Ty::Node(_), _) => Value::Ref(None),
        (Ty::Struct(_), _) => unreachable!("structs are flattened before defaulting"),
    }
}

impl Layouts {
    /// Computes layouts for every class of `program`.
    pub fn new(program: &Program) -> Self {
        let mut layouts = Layouts {
            offsets: HashMap::new(),
            member_offsets: HashMap::new(),
            sizes: Vec::new(),
            defaults: Vec::new(),
            slot_names: Vec::new(),
        };
        for st in &program.structs {
            for (i, &m) in st.members.iter().enumerate() {
                layouts.member_offsets.insert(m, i);
            }
        }
        for ci in 0..program.classes.len() {
            let class = ClassId(ci as u32);
            let mut cur = 0usize;
            let mut defaults = Vec::new();
            let mut names = Vec::new();
            for f in program.all_fields(class) {
                layouts.offsets.insert((class, f), cur);
                let field = &program.fields[f.index()];
                match field.kind {
                    FieldKind::Child(_) => {
                        defaults.push(Value::Ref(None));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                    FieldKind::Data(Ty::Struct(s)) => {
                        for &m in &program.structs[s.index()].members {
                            let mty = match program.fields[m.index()].kind {
                                FieldKind::Data(t) => t,
                                FieldKind::Child(_) => unreachable!("struct members are data"),
                            };
                            defaults.push(default_literal(mty, None));
                            names.push(format!(
                                "{}.{}",
                                field.name,
                                program.fields[m.index()].name
                            ));
                        }
                        cur += ty_slots(program, Ty::Struct(s));
                    }
                    FieldKind::Data(ty) => {
                        defaults.push(default_literal(ty, field.default));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                }
            }
            layouts.sizes.push(cur);
            layouts.defaults.push(defaults);
            layouts.slot_names.push(names);
        }
        layouts
    }

    /// First slot of `field` within `class`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not belong to the class.
    pub fn slot_of(&self, class: ClassId, field: FieldId) -> usize {
        self.offsets[&(class, field)]
    }

    /// Slot of a data access chain `field(.member)?` within `class`.
    pub fn slot_of_chain(&self, class: ClassId, chain: &[FieldId]) -> usize {
        let mut slot = self.slot_of(class, chain[0]);
        for m in &chain[1..] {
            slot += self.member_offsets[m];
        }
        slot
    }

    /// Offset of a struct member within its struct.
    pub fn member_offset(&self, member: FieldId) -> usize {
        self.member_offsets[&member]
    }

    /// Number of slots of `class`.
    pub fn size_of(&self, class: ClassId) -> usize {
        self.sizes[class.index()]
    }

    /// Byte footprint of a node of `class` (header + slots).
    pub fn node_bytes(&self, class: ClassId) -> u64 {
        NODE_HEADER_BYTES + SLOT_BYTES * self.sizes[class.index()] as u64
    }

    /// Default slot values of `class`.
    pub fn defaults(&self, class: ClassId) -> &[Value] {
        &self.defaults[class.index()]
    }

    /// Human-readable name of each slot of `class`.
    pub fn slot_names(&self, class: ClassId) -> &[String] {
        &self.slot_names[class.index()]
    }
}

/// One node record: the dynamic type and the node's first slot in the
/// arena pool. The simulated address is derived, not stored.
#[derive(Clone, Copy, Debug)]
struct NodeRec {
    /// Dynamic type.
    class: ClassId,
    /// First slot in the pool.
    base: u32,
    /// Cleared by `delete`; accesses to dead nodes are runtime errors.
    alive: bool,
}

/// An arena of tree nodes with simulated addresses.
///
/// Field values of all nodes live in one contiguous slot pool; a node is
/// a `(class, base)` record into it. Addresses are bump-allocated in
/// allocation order, emulating the `malloc` behaviour of the paper's C++
/// implementation; tree construction order thus determines memory
/// locality, exactly as in the original evaluation.
///
/// The program and its [`Layouts`] are shared (`Arc`) so opening many
/// heaps against one compiled program — sessions, batch workers — costs
/// two reference bumps, not a program clone and a layout recomputation.
#[derive(Clone, Debug)]
pub struct Heap {
    program: Arc<Program>,
    layouts: Arc<Layouts>,
    nodes: Vec<NodeRec>,
    /// The slot arena: every node's flattened field values, contiguous.
    pool: Vec<Value>,
    live_bytes: u64,
}

impl Heap {
    /// Creates an empty heap for `program`.
    pub fn new(program: &Program) -> Self {
        let layouts = Arc::new(Layouts::new(program));
        Heap::with_shared(Arc::new(program.clone()), layouts)
    }

    /// Creates an empty heap over an already-shared program + layouts
    /// (what `Engine::new_heap` uses so sessions skip both the program
    /// clone and the layout computation).
    pub fn with_shared(program: Arc<Program>, layouts: Arc<Layouts>) -> Self {
        Heap {
            program,
            layouts,
            nodes: Vec::new(),
            pool: Vec::new(),
            live_bytes: 0,
        }
    }

    /// The program this heap belongs to.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The class layouts.
    pub fn layouts(&self) -> &Layouts {
        &self.layouts
    }

    /// Pre-sizes the arena for about `nodes` nodes totalling `slots`
    /// slots (builders that know their tree size avoid regrowth).
    pub fn reserve(&mut self, nodes: usize, slots: usize) {
        self.nodes.reserve(nodes);
        self.pool.reserve(slots);
    }

    /// [`Heap::reserve`] from a per-class census: builders that know how
    /// many nodes of each class they will allocate pre-size the arena
    /// without hand-rolling the slot arithmetic.
    pub fn reserve_classes(&mut self, counts: &[(ClassId, usize)]) {
        let nodes = counts.iter().map(|&(_, n)| n).sum();
        let slots = counts
            .iter()
            .map(|&(c, n)| n * self.layouts.size_of(c))
            .sum();
        self.reserve(nodes, slots);
    }

    /// Drops every node but keeps the arena's capacity, so the next tree
    /// built here allocates nothing and gets bit-identical simulated
    /// addresses to a fresh heap.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.pool.clear();
        self.live_bytes = 0;
    }

    /// Allocates a node of `class` with default field values.
    pub fn alloc(&mut self, class: ClassId) -> NodeId {
        let base = self.pool.len();
        assert!(base <= u32::MAX as usize, "slot arena overflow");
        self.pool.extend_from_slice(self.layouts.defaults(class));
        self.live_bytes += self.layouts.node_bytes(class);
        self.nodes.push(NodeRec {
            class,
            base: base as u32,
            alive: true,
        });
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Allocates a node by class name.
    pub fn alloc_by_name(&mut self, class: &str) -> Option<NodeId> {
        self.program.class_by_name(class).map(|c| self.alloc(c))
    }

    /// Checked record accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (node deleted).
    #[inline]
    fn rec(&self, id: NodeId) -> NodeRec {
        let r = self.nodes[id.index()];
        assert!(r.alive, "access to deleted node {id:?}");
        r
    }

    #[inline]
    fn slot_range(&self, r: NodeRec) -> std::ops::Range<usize> {
        let base = r.base as usize;
        base..base + self.layouts.size_of(r.class)
    }

    /// Dynamic type of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted — use [`Heap::class_of_raw`] to
    /// inspect dead nodes.
    #[inline]
    pub fn class_of(&self, id: NodeId) -> ClassId {
        self.rec(id).class
    }

    /// Dynamic type without the liveness check.
    #[inline]
    pub fn class_of_raw(&self, id: NodeId) -> ClassId {
        self.nodes[id.index()].class
    }

    /// Simulated base address of a node (valid for dead nodes too, like a
    /// dangling pointer's numeric value).
    #[inline]
    pub fn addr_of(&self, id: NodeId) -> u64 {
        let r = &self.nodes[id.index()];
        HEAP_BASE_ADDR + NODE_HEADER_BYTES * id.0 as u64 + SLOT_BYTES * r.base as u64
    }

    /// Whether the node is still live (not deleted).
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Reads slot `slot` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted or the slot is out of range.
    #[inline]
    pub fn get(&self, id: NodeId, slot: usize) -> Value {
        let r = self.rec(id);
        assert!(
            slot < self.layouts.size_of(r.class),
            "slot {slot} out of range for node {id:?}"
        );
        self.pool[r.base as usize + slot]
    }

    /// Writes slot `slot` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted or the slot is out of range.
    #[inline]
    pub fn set(&mut self, id: NodeId, slot: usize, value: Value) {
        let r = self.rec(id);
        assert!(
            slot < self.layouts.size_of(r.class),
            "slot {slot} out of range for node {id:?}"
        );
        self.pool[r.base as usize + slot] = value;
    }

    /// The node's flattened field values.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted — use [`Heap::slots_raw`] to
    /// inspect dead nodes.
    #[inline]
    pub fn slots(&self, id: NodeId) -> &[Value] {
        let range = self.slot_range(self.rec(id));
        &self.pool[range]
    }

    /// The node's flattened field values without the liveness check.
    #[inline]
    pub fn slots_raw(&self, id: NodeId) -> &[Value] {
        let range = self.slot_range(self.nodes[id.index()]);
        &self.pool[range]
    }

    /// Iteratively deletes the subtree rooted at `id`, returning the
    /// number of nodes freed (so callers metering `free` costs don't
    /// need two whole-heap live scans around the call).
    pub fn delete_subtree(&mut self, id: NodeId) -> usize {
        let mut freed = 0;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let rec = self.nodes[n.index()];
            if !rec.alive {
                continue;
            }
            self.nodes[n.index()].alive = false;
            self.live_bytes -= self.layouts.node_bytes(rec.class);
            freed += 1;
            for v in &self.pool[self.slot_range(rec)] {
                if let Value::Ref(Some(child)) = v {
                    stack.push(*child);
                }
            }
        }
        freed
    }

    /// Number of nodes ever allocated (including deleted ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the heap has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of currently live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total bytes of live nodes (tree size, as reported in the paper's
    /// Tables 3 and 4).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    // ---- name-based convenience accessors (tests, builders) --------------

    fn slot_by_name(&self, id: NodeId, field: &str) -> Option<usize> {
        let class = self.nodes[id.index()].class;
        let mut parts = field.split('.');
        let head = parts.next()?;
        let f = self.program.field_on_class(class, head)?;
        let mut slot = self.layouts.slot_of(class, f);
        for p in parts {
            let FieldKind::Data(Ty::Struct(st)) = self.program.fields[f.index()].kind else {
                return None;
            };
            let m = self.program.field_on_struct(st, p)?;
            slot += self.layouts.member_offset(m);
        }
        Some(slot)
    }

    /// Reads a field (or `struct.member` chain) by name.
    pub fn get_by_name(&self, id: NodeId, field: &str) -> Option<Value> {
        let slot = self.slot_by_name(id, field)?;
        Some(self.get(id, slot))
    }

    /// Writes a field by name.
    pub fn set_by_name(&mut self, id: NodeId, field: &str, value: Value) -> Option<()> {
        let slot = self.slot_by_name(id, field)?;
        self.set(id, slot, value);
        Some(())
    }

    /// Sets a child pointer by name.
    pub fn set_child_by_name(
        &mut self,
        id: NodeId,
        field: &str,
        child: Option<NodeId>,
    ) -> Option<()> {
        self.set_by_name(id, field, Value::Ref(child))
    }

    /// Reads a child pointer by name.
    pub fn child_by_name(&self, id: NodeId, field: &str) -> Option<Option<NodeId>> {
        match self.get_by_name(id, field)? {
            Value::Ref(c) => Some(c),
            _ => None,
        }
    }

    /// Live nodes reachable from `root` in preorder (first-visit order of
    /// the depth-first walk the traversals themselves perform).
    ///
    /// Iterative — a 100k-node right spine is a loop, not 100k stack
    /// frames — and shares structure: a node reachable twice appears once.
    fn preorder(&self, root: NodeId) -> (HashMap<NodeId, usize>, Vec<NodeId>) {
        let mut order: HashMap<NodeId, usize> = HashMap::new();
        let mut list = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if order.contains_key(&id) {
                continue;
            }
            order.insert(id, list.len());
            list.push(id);
            // Children are pushed in reverse slot order so the first
            // child is visited first, matching a recursive descent.
            for v in self.slots(id).iter().rev() {
                if let Value::Ref(Some(c)) = v {
                    stack.push(*c);
                }
            }
        }
        (order, list)
    }

    /// Deterministic snapshot of all live nodes reachable from `root`, in
    /// preorder: `(class name, slot values)` with child refs replaced by
    /// preorder indices so snapshots of differently-allocated but
    /// structurally identical trees compare equal.
    pub fn snapshot(&self, root: NodeId) -> Vec<(String, Vec<SnapValue>)> {
        let (order, list) = self.preorder(root);
        list.iter()
            .map(|&id| {
                let vals = self
                    .slots(id)
                    .iter()
                    .map(|v| match v {
                        Value::Ref(Some(c)) => SnapValue::Child(order[c]),
                        Value::Ref(None) => SnapValue::Null,
                        Value::Int(v) => SnapValue::Int(*v),
                        Value::Float(v) => SnapValue::Float(*v),
                        Value::Bool(v) => SnapValue::Bool(*v),
                    })
                    .collect();
                (
                    self.program.classes[self.class_of(id).index()].name.clone(),
                    vals,
                )
            })
            .collect()
    }
}

/// A structural value used in heap snapshots (see [`Heap::snapshot`]).
#[derive(Clone, Debug)]
pub enum SnapValue {
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
    /// Preorder index of the referenced node.
    Child(usize),
}

/// Bit-level equality: two snapshots of structurally identical trees must
/// compare equal even when a field holds `NaN` (a derived `f64` equality
/// would make every NaN-carrying tree unequal to itself and spuriously
/// fail the fused==unfused differential suites).
impl PartialEq for SnapValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SnapValue::Int(a), SnapValue::Int(b)) => a == b,
            (SnapValue::Float(a), SnapValue::Float(b)) => a.to_bits() == b.to_bits(),
            (SnapValue::Bool(a), SnapValue::Bool(b)) => a == b,
            (SnapValue::Null, SnapValue::Null) => true,
            (SnapValue::Child(a), SnapValue::Child(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for SnapValue {}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::compile;

    fn program() -> Program {
        compile(
            r#"
            struct Pair { int x; int y; }
            tree class Base {
                child Base* kid;
                int a = 7;
                virtual traversal nop() {}
            }
            tree class Derived : Base {
                Pair p;
                float f = 1.5;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn layouts_flatten_structs_and_inheritance() {
        let p = program();
        let l = Layouts::new(&p);
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        // Base: kid + a = 2 slots; Derived adds p.x, p.y, f = 5 slots.
        assert_eq!(l.size_of(base), 2);
        assert_eq!(l.size_of(derived), 5);
        // Inherited fields keep their base-subobject offsets.
        let a = p.field_on_class(base, "a").unwrap();
        assert_eq!(l.slot_of(base, a), 1);
        assert_eq!(l.slot_of(derived, a), 1);
        // Struct member chain resolves to consecutive slots.
        let pf = p.field_on_class(derived, "p").unwrap();
        let pair = p.struct_by_name("Pair").unwrap();
        let y = p.field_on_struct(pair, "y").unwrap();
        assert_eq!(l.slot_of_chain(derived, &[pf, y]), 3);
        assert_eq!(l.node_bytes(derived), NODE_HEADER_BYTES + 5 * SLOT_BYTES);
    }

    #[test]
    fn defaults_honour_declared_literals() {
        let p = program();
        let l = Layouts::new(&p);
        let derived = p.class_by_name("Derived").unwrap();
        let d = l.defaults(derived);
        assert_eq!(d[0], Value::Ref(None)); // kid
        assert_eq!(d[1], Value::Int(7)); // a = 7
        assert_eq!(d[2], Value::Int(0)); // p.x
        assert_eq!(d[4], Value::Float(1.5)); // f = 1.5
        assert_eq!(l.slot_names(derived)[3], "p.y");
    }

    #[test]
    fn addresses_are_bump_allocated_in_order() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        let b = heap.alloc_by_name("Base").unwrap();
        let (aa, ab) = (heap.addr_of(a), heap.addr_of(b));
        assert_eq!(ab - aa, heap.layouts().node_bytes(heap.class_of(a)));
    }

    #[test]
    fn live_bytes_track_allocation_and_deletion() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        let kid = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a, "kid", Some(kid)).unwrap();
        let before = heap.live_bytes();
        assert!(before > 0);
        heap.delete_subtree(a);
        assert_eq!(heap.live_bytes(), 0);
        assert_eq!(heap.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "deleted node")]
    fn dead_node_access_panics() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        heap.delete_subtree(a);
        let _ = heap.class_of(a);
    }

    #[test]
    fn reset_reuses_the_arena_with_identical_addresses() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        let b = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a, "kid", Some(b)).unwrap();
        let addrs = (heap.addr_of(a), heap.addr_of(b));
        let snap = heap.snapshot(a);
        let pool_cap = heap.pool.capacity();

        heap.reset();
        assert!(heap.is_empty());
        assert_eq!(heap.live_bytes(), 0);
        let a2 = heap.alloc_by_name("Derived").unwrap();
        let b2 = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a2, "kid", Some(b2)).unwrap();
        assert_eq!((heap.addr_of(a2), heap.addr_of(b2)), addrs);
        assert_eq!(heap.snapshot(a2), snap);
        assert_eq!(heap.pool.capacity(), pool_cap, "reset keeps capacity");
    }

    #[test]
    fn nan_snapshots_compare_equal() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        heap.set_by_name(a, "f", Value::Float(f64::NAN)).unwrap();
        let s1 = heap.snapshot(a);
        let s2 = heap.snapshot(a);
        assert_eq!(s1, s2, "NaN fields must not break snapshot equality");
        assert_ne!(
            SnapValue::Float(1.0),
            SnapValue::Float(2.0),
            "distinct floats still differ"
        );
    }
}
