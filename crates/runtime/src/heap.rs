//! Node heap, class layouts and tree construction helpers.
//!
//! Nodes live in one contiguous **slot arena**: a node is a small
//! `(class, base)` record indexing into a single `Vec<Value>` pool, bump
//! allocated in construction order. Simulated addresses are derived from
//! the record (header bytes per node + slot bytes per pool slot), so they
//! are identical to the per-node-`malloc` scheme the paper's C++ runs
//! against while the Rust side touches no allocator on the hot path. The
//! arena is reusable: [`Heap::reset`] drops every node but keeps the
//! pool's capacity, so a session can run many inputs with zero steady-state
//! allocation (and bit-identical addresses each time).

use std::collections::HashMap;
use std::sync::Arc;

use grafter_frontend::{ast::Literal, ClassId, FieldId, FieldKind, Program, Ty};

use crate::Value;

/// Index of a node in a [`Heap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Byte size of the per-node header (holds the dynamic type, like a vtable
/// pointer).
pub const NODE_HEADER_BYTES: u64 = 8;
/// Byte size of one slot (all values are machine-word sized).
pub const SLOT_BYTES: u64 = 8;

/// Simulated address of the first allocated node (skips a "reserved" low
/// range, like a real process image).
const HEAP_BASE_ADDR: u64 = 0x10_0000;

/// Flattened field layouts of every class in a program.
///
/// Each class lays out its inherited fields first (base-class subobject),
/// then its own; struct-typed data fields are flattened into one slot per
/// member, mirroring the C++ object layout Grafter's generated code runs
/// against.
#[derive(Clone, Debug)]
pub struct Layouts {
    /// `(class, field)` → first slot of the field.
    offsets: HashMap<(ClassId, FieldId), usize>,
    /// Struct member → offset within its struct.
    member_offsets: HashMap<FieldId, usize>,
    /// Slots per class.
    sizes: Vec<usize>,
    /// Per-class default slot values.
    defaults: Vec<Vec<Value>>,
    /// Per-slot field names (for snapshots/debugging).
    slot_names: Vec<Vec<String>>,
}

fn ty_slots(program: &Program, ty: Ty) -> usize {
    match ty {
        Ty::Int | Ty::Float | Ty::Bool => 1,
        Ty::Struct(s) => program.structs[s.index()].members.len(),
        Ty::Node(_) => 1,
    }
}

/// Default value of a primitive/child slot, honouring a declared literal.
pub fn default_literal(ty: Ty, lit: Option<Literal>) -> Value {
    match (ty, lit) {
        (Ty::Int, Some(Literal::Int(v))) => Value::Int(v),
        (Ty::Float, Some(Literal::Int(v))) => Value::Float(v as f64),
        (Ty::Float, Some(Literal::Float(v))) => Value::Float(v),
        (Ty::Bool, Some(Literal::Bool(v))) => Value::Bool(v),
        (Ty::Int, _) => Value::Int(0),
        (Ty::Float, _) => Value::Float(0.0),
        (Ty::Bool, _) => Value::Bool(false),
        (Ty::Node(_), _) => Value::Ref(None),
        (Ty::Struct(_), _) => unreachable!("structs are flattened before defaulting"),
    }
}

impl Layouts {
    /// Computes layouts for every class of `program`.
    pub fn new(program: &Program) -> Self {
        let mut layouts = Layouts {
            offsets: HashMap::new(),
            member_offsets: HashMap::new(),
            sizes: Vec::new(),
            defaults: Vec::new(),
            slot_names: Vec::new(),
        };
        for st in &program.structs {
            for (i, &m) in st.members.iter().enumerate() {
                layouts.member_offsets.insert(m, i);
            }
        }
        for ci in 0..program.classes.len() {
            let class = ClassId(ci as u32);
            let mut cur = 0usize;
            let mut defaults = Vec::new();
            let mut names = Vec::new();
            for f in program.all_fields(class) {
                layouts.offsets.insert((class, f), cur);
                let field = &program.fields[f.index()];
                match field.kind {
                    FieldKind::Child(_) => {
                        defaults.push(Value::Ref(None));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                    FieldKind::Data(Ty::Struct(s)) => {
                        for &m in &program.structs[s.index()].members {
                            let mty = match program.fields[m.index()].kind {
                                FieldKind::Data(t) => t,
                                FieldKind::Child(_) => unreachable!("struct members are data"),
                            };
                            defaults.push(default_literal(mty, None));
                            names.push(format!(
                                "{}.{}",
                                field.name,
                                program.fields[m.index()].name
                            ));
                        }
                        cur += ty_slots(program, Ty::Struct(s));
                    }
                    FieldKind::Data(ty) => {
                        defaults.push(default_literal(ty, field.default));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                }
            }
            layouts.sizes.push(cur);
            layouts.defaults.push(defaults);
            layouts.slot_names.push(names);
        }
        layouts
    }

    /// First slot of `field` within `class`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not belong to the class.
    pub fn slot_of(&self, class: ClassId, field: FieldId) -> usize {
        self.offsets[&(class, field)]
    }

    /// Slot of a data access chain `field(.member)?` within `class`.
    pub fn slot_of_chain(&self, class: ClassId, chain: &[FieldId]) -> usize {
        let mut slot = self.slot_of(class, chain[0]);
        for m in &chain[1..] {
            slot += self.member_offsets[m];
        }
        slot
    }

    /// Offset of a struct member within its struct.
    pub fn member_offset(&self, member: FieldId) -> usize {
        self.member_offsets[&member]
    }

    /// Number of slots of `class`.
    pub fn size_of(&self, class: ClassId) -> usize {
        self.sizes[class.index()]
    }

    /// Byte footprint of a node of `class` (header + slots).
    pub fn node_bytes(&self, class: ClassId) -> u64 {
        NODE_HEADER_BYTES + SLOT_BYTES * self.sizes[class.index()] as u64
    }

    /// Default slot values of `class`.
    pub fn defaults(&self, class: ClassId) -> &[Value] {
        &self.defaults[class.index()]
    }

    /// Human-readable name of each slot of `class`.
    pub fn slot_names(&self, class: ClassId) -> &[String] {
        &self.slot_names[class.index()]
    }
}

/// One node record: the dynamic type and the node's first slot in the
/// arena pool. The simulated address is derived, not stored.
#[derive(Clone, Copy, Debug)]
struct NodeRec {
    /// Dynamic type.
    class: ClassId,
    /// First slot in the pool.
    base: u32,
    /// Cleared by `delete`; accesses to dead nodes are runtime errors.
    alive: bool,
}

/// One borrowed arena segment of an ancestor heap: the records and slot
/// pool backing node ids `[id_start, id_start + nodes_len)`.
///
/// Raw pointers, not borrows: sibling shards alias the same ancestor
/// buffers, each touching only its own dependence-checked subtree. The
/// ancestor must not grow or mutate these buffers while shards execute —
/// see the contract on [`Heap::shard_for_subtree`].
#[derive(Clone, Copy, Debug)]
struct Segment {
    nodes: *mut NodeRec,
    nodes_len: usize,
    pool: *mut Value,
    /// First node id this segment resolves.
    id_start: u32,
    /// Absolute pool offset the segment's pool starts at (0 for the base
    /// heap; provisional for shard-local segments until they merge).
    addr_base: u64,
}

/// Shard state of a [`Heap`] opened with [`Heap::shard_for_subtree`].
///
/// A shard reads and writes pre-existing nodes in place through the
/// `segments` chain and bump-allocates fresh nodes into the heap's own
/// (private) vectors, deferring their final ids/bases to the sibling-order
/// merge so they come out bit-identical to a sequential run.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    /// Ancestor segments, `id_start` ascending and contiguous; `segments[0]`
    /// is the base heap.
    segments: Vec<Segment>,
    /// Ids `>= ext_id_start` are local to this shard.
    ext_id_start: u32,
    /// Provisional absolute pool offset of local allocations (exact once
    /// all earlier siblings have merged first).
    pool_start: u64,
    /// Lowest id that a merge anywhere up the chain may still renumber;
    /// storing a ref at or above it into an ancestor-owned slot records a
    /// fixup.
    pending_floor: u32,
    /// Ancestor-owned `(node, slot)` locations holding refs that may need
    /// renumbering at merge.
    fixups: Vec<(NodeId, u32)>,
    /// Net live-byte change (allocations minus deletes) folded into the
    /// parent at merge.
    live_delta: i64,
}

// SAFETY: a shard is handed to exactly one worker; the raw segment
// pointers target ancestor buffers that are parked (neither grown nor
// accessed) for the whole fork-join region, and the dependence analysis
// guarantees sibling shards dereference disjoint subtrees.
unsafe impl Send for ShardCtx {}

/// Where a node id resolves: this heap's own vectors or a borrowed
/// ancestor segment.
#[derive(Clone, Copy)]
enum Loc {
    Own(usize),
    Seg(usize, usize),
}

/// An arena of tree nodes with simulated addresses.
///
/// Field values of all nodes live in one contiguous slot pool; a node is
/// a `(class, base)` record into it. Addresses are bump-allocated in
/// allocation order, emulating the `malloc` behaviour of the paper's C++
/// implementation; tree construction order thus determines memory
/// locality, exactly as in the original evaluation.
///
/// The program and its [`Layouts`] are shared (`Arc`) so opening many
/// heaps against one compiled program — sessions, batch workers — costs
/// two reference bumps, not a program clone and a layout recomputation.
#[derive(Debug)]
pub struct Heap {
    program: Arc<Program>,
    layouts: Arc<Layouts>,
    nodes: Vec<NodeRec>,
    /// The slot arena: every node's flattened field values, contiguous.
    pool: Vec<Value>,
    live_bytes: u64,
    /// Present when this heap is a per-subtree shard of another heap.
    shard: Option<Box<ShardCtx>>,
}

/// Shard heaps are transient fork-join workers — they merge back, they are
/// never cloned (their raw segment pointers must stay unique per worker).
impl Clone for Heap {
    fn clone(&self) -> Self {
        assert!(
            self.shard.is_none(),
            "shard heaps merge back into their parent, they are not cloned"
        );
        Heap {
            program: Arc::clone(&self.program),
            layouts: Arc::clone(&self.layouts),
            nodes: self.nodes.clone(),
            pool: self.pool.clone(),
            live_bytes: self.live_bytes,
            shard: None,
        }
    }
}

impl Heap {
    /// Creates an empty heap for `program`.
    pub fn new(program: &Program) -> Self {
        let layouts = Arc::new(Layouts::new(program));
        Heap::with_shared(Arc::new(program.clone()), layouts)
    }

    /// Creates an empty heap over an already-shared program + layouts
    /// (what `Engine::new_heap` uses so sessions skip both the program
    /// clone and the layout computation).
    pub fn with_shared(program: Arc<Program>, layouts: Arc<Layouts>) -> Self {
        Heap {
            program,
            layouts,
            nodes: Vec::new(),
            pool: Vec::new(),
            live_bytes: 0,
            shard: None,
        }
    }

    /// Whether this heap is a per-subtree shard of another heap.
    pub fn is_shard(&self) -> bool {
        self.shard.is_some()
    }

    /// The program this heap belongs to.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The class layouts.
    pub fn layouts(&self) -> &Layouts {
        &self.layouts
    }

    /// Pre-sizes the arena for about `nodes` nodes totalling `slots`
    /// slots (builders that know their tree size avoid regrowth).
    pub fn reserve(&mut self, nodes: usize, slots: usize) {
        self.nodes.reserve(nodes);
        self.pool.reserve(slots);
    }

    /// [`Heap::reserve`] from a per-class census: builders that know how
    /// many nodes of each class they will allocate pre-size the arena
    /// without hand-rolling the slot arithmetic.
    pub fn reserve_classes(&mut self, counts: &[(ClassId, usize)]) {
        let nodes = counts.iter().map(|&(_, n)| n).sum();
        let slots = counts
            .iter()
            .map(|&(c, n)| n * self.layouts.size_of(c))
            .sum();
        self.reserve(nodes, slots);
    }

    /// Drops every node but keeps the arena's capacity, so the next tree
    /// built here allocates nothing and gets bit-identical simulated
    /// addresses to a fresh heap.
    pub fn reset(&mut self) {
        assert!(self.shard.is_none(), "reset on a shard heap");
        self.nodes.clear();
        self.pool.clear();
        self.live_bytes = 0;
    }

    /// Allocates a node of `class` with default field values.
    pub fn alloc(&mut self, class: ClassId) -> NodeId {
        let base = self.pool.len();
        assert!(base <= u32::MAX as usize, "slot arena overflow");
        self.pool.extend_from_slice(self.layouts.defaults(class));
        let bytes = self.layouts.node_bytes(class);
        match &mut self.shard {
            None => self.live_bytes += bytes,
            Some(ctx) => ctx.live_delta += bytes as i64,
        }
        self.nodes.push(NodeRec {
            class,
            base: base as u32,
            alive: true,
        });
        NodeId(self.id_base() + (self.nodes.len() - 1) as u32)
    }

    /// Allocates a node by class name.
    pub fn alloc_by_name(&mut self, class: &str) -> Option<NodeId> {
        self.program.class_by_name(class).map(|c| self.alloc(c))
    }

    /// First node id owned by this heap's own `nodes` vector (0 unless
    /// this heap is a shard).
    #[inline]
    fn id_base(&self) -> u32 {
        match &self.shard {
            None => 0,
            Some(ctx) => ctx.ext_id_start,
        }
    }

    /// Resolves a node id to this heap's own vectors or an ancestor
    /// segment. Ids below every segment panic (as stale ids always did).
    #[inline]
    fn locate(&self, id: NodeId) -> Loc {
        let base = self.id_base();
        if id.0 >= base {
            Loc::Own((id.0 - base) as usize)
        } else {
            let ctx = self.shard.as_ref().expect("non-shard ids start at 0");
            let seg = ctx
                .segments
                .iter()
                .rposition(|s| id.0 >= s.id_start)
                .expect("node id below every segment");
            Loc::Seg(seg, (id.0 - ctx.segments[seg].id_start) as usize)
        }
    }

    /// Record at a resolved location.
    #[inline]
    fn rec_at(&self, loc: Loc) -> NodeRec {
        match loc {
            Loc::Own(i) => self.nodes[i],
            Loc::Seg(s, i) => {
                let seg = &self.shard.as_ref().unwrap().segments[s];
                debug_assert!(i < seg.nodes_len);
                // SAFETY: segments tile the external id space contiguously,
                // so `i` is in bounds; the ancestor buffer is parked for
                // the whole fork-join region (shard contract).
                unsafe { *seg.nodes.add(i) }
            }
        }
    }

    /// Checked record accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (node deleted).
    #[inline]
    fn rec(&self, id: NodeId) -> NodeRec {
        let r = self.rec_at(self.locate(id));
        assert!(r.alive, "access to deleted node {id:?}");
        r
    }

    /// Pointer to `slot` of a record living in ancestor segment `s`.
    #[inline]
    fn seg_slot_ptr(&self, s: usize, r: NodeRec, slot: usize) -> *mut Value {
        let seg = &self.shard.as_ref().unwrap().segments[s];
        // SAFETY: `r.base` indexes the segment's own pool; see `rec_at`.
        unsafe { seg.pool.add(r.base as usize + slot) }
    }

    /// Slot values at a resolved location.
    #[inline]
    fn slots_at(&self, loc: Loc, r: NodeRec) -> &[Value] {
        let n = self.layouts.size_of(r.class);
        match loc {
            Loc::Own(_) => &self.pool[r.base as usize..r.base as usize + n],
            // SAFETY: the node's slots are contiguous in the segment pool
            // and nothing aliases them mutably while `&self` is held.
            Loc::Seg(s, _) => unsafe { std::slice::from_raw_parts(self.seg_slot_ptr(s, r, 0), n) },
        }
    }

    /// Dynamic type of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted — use [`Heap::class_of_raw`] to
    /// inspect dead nodes.
    #[inline]
    pub fn class_of(&self, id: NodeId) -> ClassId {
        self.rec(id).class
    }

    /// Dynamic type without the liveness check.
    #[inline]
    pub fn class_of_raw(&self, id: NodeId) -> ClassId {
        self.rec_at(self.locate(id)).class
    }

    /// Simulated base address of a node (valid for dead nodes too, like a
    /// dangling pointer's numeric value).
    ///
    /// On a shard heap, addresses of shard-fresh nodes are provisional
    /// (exact only once all earlier siblings merge first); the engine never
    /// attaches the cache simulator to parallel runs, so provisional
    /// addresses are informative, not load-bearing.
    #[inline]
    pub fn addr_of(&self, id: NodeId) -> u64 {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        let base = match (loc, &self.shard) {
            (Loc::Own(_), None) => r.base as u64,
            (Loc::Own(_), Some(ctx)) => ctx.pool_start + r.base as u64,
            (Loc::Seg(s, _), Some(ctx)) => ctx.segments[s].addr_base + r.base as u64,
            (Loc::Seg(..), None) => unreachable!("segments imply a shard"),
        };
        HEAP_BASE_ADDR + NODE_HEADER_BYTES * id.0 as u64 + SLOT_BYTES * base
    }

    /// Whether the node is still live (not deleted).
    #[inline]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.rec_at(self.locate(id)).alive
    }

    /// Reads slot `slot` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted or the slot is out of range.
    #[inline]
    pub fn get(&self, id: NodeId, slot: usize) -> Value {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        assert!(r.alive, "access to deleted node {id:?}");
        assert!(
            slot < self.layouts.size_of(r.class),
            "slot {slot} out of range for node {id:?}"
        );
        match loc {
            Loc::Own(_) => self.pool[r.base as usize + slot],
            // SAFETY: see `slots_at`.
            Loc::Seg(s, _) => unsafe { *self.seg_slot_ptr(s, r, slot) },
        }
    }

    /// Writes slot `slot` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted or the slot is out of range.
    #[inline]
    pub fn set(&mut self, id: NodeId, slot: usize, value: Value) {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        assert!(r.alive, "access to deleted node {id:?}");
        assert!(
            slot < self.layouts.size_of(r.class),
            "slot {slot} out of range for node {id:?}"
        );
        match loc {
            Loc::Own(_) => self.pool[r.base as usize + slot] = value,
            Loc::Seg(s, _) => {
                let p = self.seg_slot_ptr(s, r, slot);
                // Grafting a still-renumberable ref into an ancestor-owned
                // slot: remember the location for the merge to revisit.
                let ctx = self.shard.as_mut().unwrap();
                if let Value::Ref(Some(c)) = value {
                    if c.0 >= ctx.pending_floor {
                        ctx.fixups.push((id, slot as u32));
                    }
                }
                // SAFETY: see `slots_at`; `&mut self` means no outstanding
                // slice borrows of this heap's view of the segment.
                unsafe { *p = value };
            }
        }
    }

    /// The node's flattened field values.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted — use [`Heap::slots_raw`] to
    /// inspect dead nodes.
    #[inline]
    pub fn slots(&self, id: NodeId) -> &[Value] {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        assert!(r.alive, "access to deleted node {id:?}");
        self.slots_at(loc, r)
    }

    /// The node's flattened field values without the liveness check.
    #[inline]
    pub fn slots_raw(&self, id: NodeId) -> &[Value] {
        let loc = self.locate(id);
        self.slots_at(loc, self.rec_at(loc))
    }

    /// Iteratively deletes the subtree rooted at `id`, returning the
    /// number of nodes freed (so callers metering `free` costs don't
    /// need two whole-heap live scans around the call).
    pub fn delete_subtree(&mut self, id: NodeId) -> usize {
        let mut freed = 0;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let loc = self.locate(n);
            let rec = self.rec_at(loc);
            if !rec.alive {
                continue;
            }
            match loc {
                Loc::Own(i) => self.nodes[i].alive = false,
                Loc::Seg(s, i) => {
                    let seg = &self.shard.as_ref().unwrap().segments[s];
                    // SAFETY: see `rec_at`; deletes inside a shard only
                    // touch the shard's own subtree.
                    unsafe { (*seg.nodes.add(i)).alive = false };
                }
            }
            let bytes = self.layouts.node_bytes(rec.class);
            match &mut self.shard {
                None => self.live_bytes -= bytes,
                Some(ctx) => ctx.live_delta -= bytes as i64,
            }
            freed += 1;
            for v in self.slots_at(loc, rec) {
                if let Value::Ref(Some(child)) = v {
                    stack.push(*child);
                }
            }
        }
        freed
    }

    /// Number of nodes ever allocated (including deleted ones); on a shard
    /// heap, the full merged id space the shard can see.
    pub fn len(&self) -> usize {
        self.id_base() as usize + self.nodes.len()
    }

    /// Whether the heap has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live nodes reachable from `root` by child refs — the fork
    /// planner's subtree-size estimate for the sequential cutoff. Walks
    /// outside the cost model (no metrics are charged) and assumes tree
    /// shape, which the traversal language maintains.
    pub fn subtree_nodes(&self, root: NodeId) -> usize {
        let mut n = 0;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !self.is_alive(id) {
                continue;
            }
            n += 1;
            for v in self.slots(id) {
                if let Value::Ref(Some(child)) = v {
                    stack.push(*child);
                }
            }
        }
        n
    }

    /// Number of currently live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total bytes of live nodes (tree size, as reported in the paper's
    /// Tables 3 and 4).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    // ---- per-subtree shards (fork-join parallel traversal) ---------------

    /// Opens a per-subtree arena shard: a `Heap` that reads and writes this
    /// heap's existing nodes in place and bump-allocates fresh nodes into a
    /// private segment, so parallel workers on dependence-free sibling
    /// subtrees never contend on the arena. Merging the shards back in
    /// sibling order ([`Heap::merge_shard`]) reproduces the exact node ids,
    /// pool bases and simulated addresses of a sequential run.
    ///
    /// # Contract (checked by the caller, not the type system)
    ///
    /// Sibling shards alias this heap's buffers through raw pointers.
    /// Until every shard handed out here has finished executing, this heap
    /// must not be mutated, and each shard must touch only nodes of its
    /// own subtree — which is exactly what the `SubtreeIndependence`
    /// analysis certifies before the engine forks.
    pub fn shard_for_subtree(&mut self, root: NodeId) -> Heap {
        assert!(self.is_alive(root), "sharding a deleted subtree root");
        let mut segments = match &self.shard {
            None => Vec::new(),
            Some(ctx) => ctx.segments.clone(),
        };
        let own_start = self.id_base();
        let own_addr_base = match &self.shard {
            None => 0,
            Some(ctx) => ctx.pool_start,
        };
        segments.push(Segment {
            nodes: self.nodes.as_mut_ptr(),
            nodes_len: self.nodes.len(),
            pool: self.pool.as_mut_ptr(),
            id_start: own_start,
            addr_base: own_addr_base,
        });
        let ext_id_start = own_start + self.nodes.len() as u32;
        let pool_start = own_addr_base + self.pool.len() as u64;
        let pending_floor = segments.get(1).map_or(ext_id_start, |s| s.id_start);
        Heap {
            program: Arc::clone(&self.program),
            layouts: Arc::clone(&self.layouts),
            nodes: Vec::new(),
            pool: Vec::new(),
            live_bytes: 0,
            shard: Some(Box::new(ShardCtx {
                segments,
                ext_id_start,
                pool_start,
                pending_floor,
                fixups: Vec::new(),
                live_delta: 0,
            })),
        }
    }

    /// Merges a shard back, appending its fresh nodes to this heap.
    ///
    /// Shards of one fork must merge in sibling (sequential dispatch)
    /// order, after **all** of them have finished executing: each merge
    /// assigns the shard's fresh nodes the exact ids and pool bases a
    /// sequential run would have produced at that point, and growing this
    /// heap's buffers here invalidates the remaining shards' borrowed
    /// segments for execution (merging them stays fine — a merge only
    /// reads the shard's private vectors and resolves fixups through
    /// `self`).
    pub fn merge_shard(&mut self, mut shard: Heap) {
        let ctx = *shard.shard.take().expect("merge_shard needs a shard heap");
        assert_eq!(
            ctx.segments.last().map(|s| s.id_start),
            Some(self.id_base()),
            "shard merged into a heap it was not opened on"
        );
        assert!(
            ctx.ext_id_start as usize <= self.len(),
            "sibling shards must merge in order"
        );
        let delta = (self.len() - ctx.ext_id_start as usize) as u32;
        let pool_off = self.pool.len();
        assert!(
            pool_off + shard.pool.len() <= u32::MAX as usize,
            "slot arena overflow"
        );
        self.nodes.reserve(shard.nodes.len());
        for r in &shard.nodes {
            self.nodes.push(NodeRec {
                class: r.class,
                base: r.base + pool_off as u32,
                alive: r.alive,
            });
        }
        self.pool.reserve(shard.pool.len());
        for v in shard.pool.drain(..) {
            self.pool.push(match v {
                Value::Ref(Some(c)) if c.0 >= ctx.ext_id_start => {
                    Value::Ref(Some(NodeId(c.0 + delta)))
                }
                other => other,
            });
        }
        match &mut self.shard {
            None => self.live_bytes = (self.live_bytes as i64 + ctx.live_delta) as u64,
            Some(own) => own.live_delta += ctx.live_delta,
        }
        // Renumber refs to shard-fresh nodes grafted into pre-existing
        // nodes during execution. Deduped: the same slot may have been
        // rewritten several times, but it is renumbered once, from its
        // final value.
        let mut fixups = ctx.fixups;
        fixups.sort_unstable();
        fixups.dedup();
        for (node, slot) in fixups {
            let v = match self.peek_slot(node, slot as usize) {
                Value::Ref(Some(c)) if c.0 >= ctx.ext_id_start => {
                    let v = Value::Ref(Some(NodeId(c.0 + delta)));
                    self.poke_slot(node, slot as usize, v);
                    v
                }
                other => other,
            };
            // A graft that landed in a node our own ancestors own may need
            // renumbering again when *we* merge.
            if let Some(own) = &mut self.shard {
                if node.0 < own.ext_id_start {
                    if let Value::Ref(Some(t)) = v {
                        if t.0 >= own.pending_floor {
                            own.fixups.push((node, slot));
                        }
                    }
                }
            }
        }
    }

    /// Raw slot read for merge fixups: no liveness check (the grafted-into
    /// node may have been deleted after the graft).
    fn peek_slot(&self, id: NodeId, slot: usize) -> Value {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        match loc {
            Loc::Own(_) => self.pool[r.base as usize + slot],
            // SAFETY: see `slots_at`.
            Loc::Seg(s, _) => unsafe { *self.seg_slot_ptr(s, r, slot) },
        }
    }

    /// Raw slot write for merge fixups (see [`Heap::peek_slot`]).
    fn poke_slot(&mut self, id: NodeId, slot: usize, value: Value) {
        let loc = self.locate(id);
        let r = self.rec_at(loc);
        match loc {
            Loc::Own(_) => self.pool[r.base as usize + slot] = value,
            // SAFETY: see `set`.
            Loc::Seg(s, _) => unsafe { *self.seg_slot_ptr(s, r, slot) = value },
        }
    }

    // ---- name-based convenience accessors (tests, builders) --------------

    fn slot_by_name(&self, id: NodeId, field: &str) -> Option<usize> {
        let class = self.class_of_raw(id);
        let mut parts = field.split('.');
        let head = parts.next()?;
        let f = self.program.field_on_class(class, head)?;
        let mut slot = self.layouts.slot_of(class, f);
        for p in parts {
            let FieldKind::Data(Ty::Struct(st)) = self.program.fields[f.index()].kind else {
                return None;
            };
            let m = self.program.field_on_struct(st, p)?;
            slot += self.layouts.member_offset(m);
        }
        Some(slot)
    }

    /// Reads a field (or `struct.member` chain) by name.
    pub fn get_by_name(&self, id: NodeId, field: &str) -> Option<Value> {
        let slot = self.slot_by_name(id, field)?;
        Some(self.get(id, slot))
    }

    /// Writes a field by name.
    pub fn set_by_name(&mut self, id: NodeId, field: &str, value: Value) -> Option<()> {
        let slot = self.slot_by_name(id, field)?;
        self.set(id, slot, value);
        Some(())
    }

    /// Sets a child pointer by name.
    pub fn set_child_by_name(
        &mut self,
        id: NodeId,
        field: &str,
        child: Option<NodeId>,
    ) -> Option<()> {
        self.set_by_name(id, field, Value::Ref(child))
    }

    /// Reads a child pointer by name.
    pub fn child_by_name(&self, id: NodeId, field: &str) -> Option<Option<NodeId>> {
        match self.get_by_name(id, field)? {
            Value::Ref(c) => Some(c),
            _ => None,
        }
    }

    /// Live nodes reachable from `root` in preorder (first-visit order of
    /// the depth-first walk the traversals themselves perform).
    ///
    /// Iterative — a 100k-node right spine is a loop, not 100k stack
    /// frames — and shares structure: a node reachable twice appears once.
    fn preorder(&self, root: NodeId) -> (HashMap<NodeId, usize>, Vec<NodeId>) {
        let mut order: HashMap<NodeId, usize> = HashMap::new();
        let mut list = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if order.contains_key(&id) {
                continue;
            }
            order.insert(id, list.len());
            list.push(id);
            // Children are pushed in reverse slot order so the first
            // child is visited first, matching a recursive descent.
            for v in self.slots(id).iter().rev() {
                if let Value::Ref(Some(c)) = v {
                    stack.push(*c);
                }
            }
        }
        (order, list)
    }

    /// Deterministic snapshot of all live nodes reachable from `root`, in
    /// preorder: `(class name, slot values)` with child refs replaced by
    /// preorder indices so snapshots of differently-allocated but
    /// structurally identical trees compare equal.
    pub fn snapshot(&self, root: NodeId) -> Vec<(String, Vec<SnapValue>)> {
        let (order, list) = self.preorder(root);
        list.iter()
            .map(|&id| {
                let vals = self
                    .slots(id)
                    .iter()
                    .map(|v| match v {
                        Value::Ref(Some(c)) => SnapValue::Child(order[c]),
                        Value::Ref(None) => SnapValue::Null,
                        Value::Int(v) => SnapValue::Int(*v),
                        Value::Float(v) => SnapValue::Float(*v),
                        Value::Bool(v) => SnapValue::Bool(*v),
                    })
                    .collect();
                (
                    self.program.classes[self.class_of(id).index()].name.clone(),
                    vals,
                )
            })
            .collect()
    }
}

/// A structural value used in heap snapshots (see [`Heap::snapshot`]).
#[derive(Clone, Debug)]
pub enum SnapValue {
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
    /// Preorder index of the referenced node.
    Child(usize),
}

/// Bit-level equality: two snapshots of structurally identical trees must
/// compare equal even when a field holds `NaN` (a derived `f64` equality
/// would make every NaN-carrying tree unequal to itself and spuriously
/// fail the fused==unfused differential suites).
impl PartialEq for SnapValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SnapValue::Int(a), SnapValue::Int(b)) => a == b,
            (SnapValue::Float(a), SnapValue::Float(b)) => a.to_bits() == b.to_bits(),
            (SnapValue::Bool(a), SnapValue::Bool(b)) => a == b,
            (SnapValue::Null, SnapValue::Null) => true,
            (SnapValue::Child(a), SnapValue::Child(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for SnapValue {}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::compile;

    fn program() -> Program {
        compile(
            r#"
            struct Pair { int x; int y; }
            tree class Base {
                child Base* kid;
                int a = 7;
                virtual traversal nop() {}
            }
            tree class Derived : Base {
                Pair p;
                float f = 1.5;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn layouts_flatten_structs_and_inheritance() {
        let p = program();
        let l = Layouts::new(&p);
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        // Base: kid + a = 2 slots; Derived adds p.x, p.y, f = 5 slots.
        assert_eq!(l.size_of(base), 2);
        assert_eq!(l.size_of(derived), 5);
        // Inherited fields keep their base-subobject offsets.
        let a = p.field_on_class(base, "a").unwrap();
        assert_eq!(l.slot_of(base, a), 1);
        assert_eq!(l.slot_of(derived, a), 1);
        // Struct member chain resolves to consecutive slots.
        let pf = p.field_on_class(derived, "p").unwrap();
        let pair = p.struct_by_name("Pair").unwrap();
        let y = p.field_on_struct(pair, "y").unwrap();
        assert_eq!(l.slot_of_chain(derived, &[pf, y]), 3);
        assert_eq!(l.node_bytes(derived), NODE_HEADER_BYTES + 5 * SLOT_BYTES);
    }

    #[test]
    fn defaults_honour_declared_literals() {
        let p = program();
        let l = Layouts::new(&p);
        let derived = p.class_by_name("Derived").unwrap();
        let d = l.defaults(derived);
        assert_eq!(d[0], Value::Ref(None)); // kid
        assert_eq!(d[1], Value::Int(7)); // a = 7
        assert_eq!(d[2], Value::Int(0)); // p.x
        assert_eq!(d[4], Value::Float(1.5)); // f = 1.5
        assert_eq!(l.slot_names(derived)[3], "p.y");
    }

    #[test]
    fn addresses_are_bump_allocated_in_order() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        let b = heap.alloc_by_name("Base").unwrap();
        let (aa, ab) = (heap.addr_of(a), heap.addr_of(b));
        assert_eq!(ab - aa, heap.layouts().node_bytes(heap.class_of(a)));
    }

    #[test]
    fn live_bytes_track_allocation_and_deletion() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        let kid = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a, "kid", Some(kid)).unwrap();
        let before = heap.live_bytes();
        assert!(before > 0);
        heap.delete_subtree(a);
        assert_eq!(heap.live_bytes(), 0);
        assert_eq!(heap.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "deleted node")]
    fn dead_node_access_panics() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        heap.delete_subtree(a);
        let _ = heap.class_of(a);
    }

    #[test]
    fn reset_reuses_the_arena_with_identical_addresses() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        let b = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a, "kid", Some(b)).unwrap();
        let addrs = (heap.addr_of(a), heap.addr_of(b));
        let snap = heap.snapshot(a);
        let pool_cap = heap.pool.capacity();

        heap.reset();
        assert!(heap.is_empty());
        assert_eq!(heap.live_bytes(), 0);
        let a2 = heap.alloc_by_name("Derived").unwrap();
        let b2 = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a2, "kid", Some(b2)).unwrap();
        assert_eq!((heap.addr_of(a2), heap.addr_of(b2)), addrs);
        assert_eq!(heap.snapshot(a2), snap);
        assert_eq!(heap.pool.capacity(), pool_cap, "reset keeps capacity");
    }

    fn binary_program() -> Program {
        compile(
            r#"
            tree class T {
                child T* l;
                child T* r;
                int v = 0;
                virtual traversal nop() {}
            }
            "#,
        )
        .unwrap()
    }

    /// root with two leaf children — the smallest forkable shape.
    fn binary_root(heap: &mut Heap) -> (NodeId, NodeId, NodeId) {
        let root = heap.alloc_by_name("T").unwrap();
        let l = heap.alloc_by_name("T").unwrap();
        let r = heap.alloc_by_name("T").unwrap();
        heap.set_child_by_name(root, "l", Some(l)).unwrap();
        heap.set_child_by_name(root, "r", Some(r)).unwrap();
        (root, l, r)
    }

    /// "Visit" a subtree: read a field, allocate a fresh node, graft it.
    fn grow(heap: &mut Heap, n: NodeId) {
        let fresh = heap.alloc_by_name("T").unwrap();
        heap.set_by_name(fresh, "v", Value::Int(n.0 as i64))
            .unwrap();
        heap.set_child_by_name(n, "l", Some(fresh)).unwrap();
    }

    #[test]
    fn sibling_shards_reproduce_sequential_ids_and_addresses() {
        let p = binary_program();
        // Sequential reference: visit left, then right.
        let mut seq = Heap::new(&p);
        let (sroot, sl, sr) = binary_root(&mut seq);
        grow(&mut seq, sl);
        grow(&mut seq, sr);

        // Sharded: the same work through per-subtree shards. The right
        // shard grafts its fresh node (provisional id) into a pre-existing
        // node, exercising the fixup path with a nonzero delta.
        let mut par = Heap::new(&p);
        let (proot, pl, pr) = binary_root(&mut par);
        let mut sa = par.shard_for_subtree(pl);
        let mut sb = par.shard_for_subtree(pr);
        grow(&mut sa, pl);
        grow(&mut sb, pr);
        par.merge_shard(sa);
        par.merge_shard(sb);

        assert_eq!(par.len(), seq.len());
        assert_eq!(par.live_bytes(), seq.live_bytes());
        assert_eq!(par.snapshot(proot), seq.snapshot(sroot));
        for i in 0..seq.len() as u32 {
            assert_eq!(par.addr_of(NodeId(i)), seq.addr_of(NodeId(i)));
        }
        // The right child's graft resolved to the renumbered fresh node.
        let grafted = par.child_by_name(pr, "l").unwrap().unwrap();
        assert_eq!(par.get_by_name(grafted, "v"), Some(Value::Int(pr.0 as i64)));
    }

    #[test]
    fn shard_deletes_fold_into_the_parent_at_merge() {
        let p = binary_program();
        let mut heap = Heap::new(&p);
        let (_root, l, r) = binary_root(&mut heap);
        grow(&mut heap, l);
        grow(&mut heap, r);
        let before = heap.live_bytes();

        let mut sa = heap.shard_for_subtree(l);
        let mut sb = heap.shard_for_subtree(r);
        let gone_l = sa.child_by_name(l, "l").unwrap().unwrap();
        assert_eq!(sa.delete_subtree(gone_l), 1);
        sa.set_child_by_name(l, "l", None).unwrap();
        let gone_r = sb.child_by_name(r, "l").unwrap().unwrap();
        assert_eq!(sb.delete_subtree(gone_r), 1);
        sb.set_child_by_name(r, "l", None).unwrap();
        heap.merge_shard(sa);
        heap.merge_shard(sb);

        let node_bytes = heap.layouts().node_bytes(heap.class_of(l));
        assert_eq!(heap.live_bytes(), before - 2 * node_bytes);
        assert!(!heap.is_alive(gone_l) && !heap.is_alive(gone_r));
    }

    #[test]
    fn nested_shards_propagate_renumbering_up_the_chain() {
        let p = binary_program();
        // root -> l -> ll; root -> r. Sequential order: visit r (allocates
        // one node), then descend into l and visit ll (allocates one).
        let mut seq = Heap::new(&p);
        let sroot = seq.alloc_by_name("T").unwrap();
        let sl = seq.alloc_by_name("T").unwrap();
        let sr = seq.alloc_by_name("T").unwrap();
        let sll = seq.alloc_by_name("T").unwrap();
        seq.set_child_by_name(sroot, "l", Some(sl)).unwrap();
        seq.set_child_by_name(sroot, "r", Some(sr)).unwrap();
        seq.set_child_by_name(sl, "l", Some(sll)).unwrap();
        grow(&mut seq, sr);
        grow(&mut seq, sll);

        let mut par = Heap::new(&p);
        let proot = par.alloc_by_name("T").unwrap();
        let pl = par.alloc_by_name("T").unwrap();
        let pr = par.alloc_by_name("T").unwrap();
        let pll = par.alloc_by_name("T").unwrap();
        par.set_child_by_name(proot, "l", Some(pl)).unwrap();
        par.set_child_by_name(proot, "r", Some(pr)).unwrap();
        par.set_child_by_name(pl, "l", Some(pll)).unwrap();

        // Sibling order: r first, then l; l's work happens in a shard of a
        // shard, grafting into the base-owned node `pll`, so the fixup must
        // survive two merges (nested delta 0, then top-level delta 1).
        let mut s_r = par.shard_for_subtree(pr);
        let mut s_l = par.shard_for_subtree(pl);
        grow(&mut s_r, pr);
        let mut nested = s_l.shard_for_subtree(pll);
        grow(&mut nested, pll);
        s_l.merge_shard(nested);
        par.merge_shard(s_r);
        par.merge_shard(s_l);

        assert_eq!(par.len(), seq.len());
        assert_eq!(par.snapshot(proot), seq.snapshot(sroot));
        for i in 0..seq.len() as u32 {
            assert_eq!(par.addr_of(NodeId(i)), seq.addr_of(NodeId(i)));
        }
        let grafted = par.child_by_name(pll, "l").unwrap().unwrap();
        assert_eq!(
            par.get_by_name(grafted, "v"),
            Some(Value::Int(pll.0 as i64))
        );
    }

    #[test]
    #[should_panic(expected = "not cloned")]
    fn shard_heaps_refuse_to_clone() {
        let p = binary_program();
        let mut heap = Heap::new(&p);
        let (_root, l, _r) = binary_root(&mut heap);
        let shard = heap.shard_for_subtree(l);
        let _ = shard.clone();
    }

    #[test]
    fn nan_snapshots_compare_equal() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        heap.set_by_name(a, "f", Value::Float(f64::NAN)).unwrap();
        let s1 = heap.snapshot(a);
        let s2 = heap.snapshot(a);
        assert_eq!(s1, s2, "NaN fields must not break snapshot equality");
        assert_ne!(
            SnapValue::Float(1.0),
            SnapValue::Float(2.0),
            "distinct floats still differ"
        );
    }
}
