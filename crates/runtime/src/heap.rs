//! Node heap, class layouts and tree construction helpers.

use std::collections::HashMap;

use grafter_frontend::{ast::Literal, ClassId, FieldId, FieldKind, Program, Ty};

use crate::Value;

/// Index of a node in a [`Heap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Byte size of the per-node header (holds the dynamic type, like a vtable
/// pointer).
pub const NODE_HEADER_BYTES: u64 = 8;
/// Byte size of one slot (all values are machine-word sized).
pub const SLOT_BYTES: u64 = 8;

/// Flattened field layouts of every class in a program.
///
/// Each class lays out its inherited fields first (base-class subobject),
/// then its own; struct-typed data fields are flattened into one slot per
/// member, mirroring the C++ object layout Grafter's generated code runs
/// against.
#[derive(Clone, Debug)]
pub struct Layouts {
    /// `(class, field)` → first slot of the field.
    offsets: HashMap<(ClassId, FieldId), usize>,
    /// Struct member → offset within its struct.
    member_offsets: HashMap<FieldId, usize>,
    /// Slots per class.
    sizes: Vec<usize>,
    /// Per-class default slot values.
    defaults: Vec<Vec<Value>>,
    /// Per-slot field names (for snapshots/debugging).
    slot_names: Vec<Vec<String>>,
}

fn ty_slots(program: &Program, ty: Ty) -> usize {
    match ty {
        Ty::Int | Ty::Float | Ty::Bool => 1,
        Ty::Struct(s) => program.structs[s.index()].members.len(),
        Ty::Node(_) => 1,
    }
}

/// Default value of a primitive/child slot, honouring a declared literal.
pub fn default_literal(ty: Ty, lit: Option<Literal>) -> Value {
    match (ty, lit) {
        (Ty::Int, Some(Literal::Int(v))) => Value::Int(v),
        (Ty::Float, Some(Literal::Int(v))) => Value::Float(v as f64),
        (Ty::Float, Some(Literal::Float(v))) => Value::Float(v),
        (Ty::Bool, Some(Literal::Bool(v))) => Value::Bool(v),
        (Ty::Int, _) => Value::Int(0),
        (Ty::Float, _) => Value::Float(0.0),
        (Ty::Bool, _) => Value::Bool(false),
        (Ty::Node(_), _) => Value::Ref(None),
        (Ty::Struct(_), _) => unreachable!("structs are flattened before defaulting"),
    }
}

impl Layouts {
    /// Computes layouts for every class of `program`.
    pub fn new(program: &Program) -> Self {
        let mut layouts = Layouts {
            offsets: HashMap::new(),
            member_offsets: HashMap::new(),
            sizes: Vec::new(),
            defaults: Vec::new(),
            slot_names: Vec::new(),
        };
        for st in &program.structs {
            for (i, &m) in st.members.iter().enumerate() {
                layouts.member_offsets.insert(m, i);
            }
        }
        for ci in 0..program.classes.len() {
            let class = ClassId(ci as u32);
            let mut cur = 0usize;
            let mut defaults = Vec::new();
            let mut names = Vec::new();
            for f in program.all_fields(class) {
                layouts.offsets.insert((class, f), cur);
                let field = &program.fields[f.index()];
                match field.kind {
                    FieldKind::Child(_) => {
                        defaults.push(Value::Ref(None));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                    FieldKind::Data(Ty::Struct(s)) => {
                        for &m in &program.structs[s.index()].members {
                            let mty = match program.fields[m.index()].kind {
                                FieldKind::Data(t) => t,
                                FieldKind::Child(_) => unreachable!("struct members are data"),
                            };
                            defaults.push(default_literal(mty, None));
                            names.push(format!(
                                "{}.{}",
                                field.name,
                                program.fields[m.index()].name
                            ));
                        }
                        cur += ty_slots(program, Ty::Struct(s));
                    }
                    FieldKind::Data(ty) => {
                        defaults.push(default_literal(ty, field.default));
                        names.push(field.name.clone());
                        cur += 1;
                    }
                }
            }
            layouts.sizes.push(cur);
            layouts.defaults.push(defaults);
            layouts.slot_names.push(names);
        }
        layouts
    }

    /// First slot of `field` within `class`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not belong to the class.
    pub fn slot_of(&self, class: ClassId, field: FieldId) -> usize {
        self.offsets[&(class, field)]
    }

    /// Slot of a data access chain `field(.member)?` within `class`.
    pub fn slot_of_chain(&self, class: ClassId, chain: &[FieldId]) -> usize {
        let mut slot = self.slot_of(class, chain[0]);
        for m in &chain[1..] {
            slot += self.member_offsets[m];
        }
        slot
    }

    /// Offset of a struct member within its struct.
    pub fn member_offset(&self, member: FieldId) -> usize {
        self.member_offsets[&member]
    }

    /// Number of slots of `class`.
    pub fn size_of(&self, class: ClassId) -> usize {
        self.sizes[class.index()]
    }

    /// Byte footprint of a node of `class` (header + slots).
    pub fn node_bytes(&self, class: ClassId) -> u64 {
        NODE_HEADER_BYTES + SLOT_BYTES * self.sizes[class.index()] as u64
    }

    /// Default slot values of `class`.
    pub fn defaults(&self, class: ClassId) -> &[Value] {
        &self.defaults[class.index()]
    }

    /// Human-readable name of each slot of `class`.
    pub fn slot_names(&self, class: ClassId) -> &[String] {
        &self.slot_names[class.index()]
    }
}

/// One heap node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Dynamic type.
    pub class: ClassId,
    /// Flattened field values.
    pub slots: Box<[Value]>,
    /// Simulated base address.
    pub addr: u64,
    /// Cleared by `delete`; accesses to dead nodes are runtime errors.
    pub alive: bool,
}

/// An arena of tree nodes with simulated addresses.
///
/// Addresses are bump-allocated in allocation order, emulating the `malloc`
/// behaviour of the paper's C++ implementation; tree construction order thus
/// determines memory locality, exactly as in the original evaluation.
#[derive(Clone, Debug)]
pub struct Heap {
    program: Program,
    layouts: Layouts,
    nodes: Vec<Node>,
    next_addr: u64,
    live_bytes: u64,
}

impl Heap {
    /// Creates an empty heap for `program`.
    pub fn new(program: &Program) -> Self {
        Heap {
            layouts: Layouts::new(program),
            program: program.clone(),
            nodes: Vec::new(),
            next_addr: 0x10_0000, // skip a "reserved" low range
            live_bytes: 0,
        }
    }

    /// The program this heap belongs to.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The class layouts.
    pub fn layouts(&self) -> &Layouts {
        &self.layouts
    }

    /// Allocates a node of `class` with default field values.
    pub fn alloc(&mut self, class: ClassId) -> NodeId {
        let size = self.layouts.node_bytes(class);
        let node = Node {
            class,
            slots: self.layouts.defaults(class).to_vec().into_boxed_slice(),
            addr: self.next_addr,
            alive: true,
        };
        self.next_addr += size;
        self.live_bytes += size;
        self.nodes.push(node);
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Allocates a node by class name.
    pub fn alloc_by_name(&mut self, class: &str) -> Option<NodeId> {
        self.program.class_by_name(class).map(|c| self.alloc(c))
    }

    /// Node accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (node deleted) — use [`Heap::node_raw`] to
    /// inspect dead nodes.
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.index()];
        assert!(n.alive, "access to deleted node {id:?}");
        n
    }

    /// Node accessor without the liveness check.
    pub fn node_raw(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node accessor.
    ///
    /// # Panics
    ///
    /// Panics if the node was deleted.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let n = &mut self.nodes[id.index()];
        assert!(n.alive, "access to deleted node {id:?}");
        n
    }

    /// Recursively deletes the subtree rooted at `id`.
    pub fn delete_subtree(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if !self.nodes[n.index()].alive {
                continue;
            }
            self.nodes[n.index()].alive = false;
            self.live_bytes -= self.layouts.node_bytes(self.nodes[n.index()].class);
            for v in self.nodes[n.index()].slots.iter() {
                if let Value::Ref(Some(child)) = v {
                    stack.push(*child);
                }
            }
        }
    }

    /// Number of nodes ever allocated (including deleted ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the heap has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of currently live nodes.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Total bytes of live nodes (tree size, as reported in the paper's
    /// Tables 3 and 4).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    // ---- name-based convenience accessors (tests, builders) --------------

    fn slot_by_name(&self, id: NodeId, field: &str) -> Option<usize> {
        let node = &self.nodes[id.index()];
        let mut parts = field.split('.');
        let head = parts.next()?;
        let f = self.program.field_on_class(node.class, head)?;
        let mut slot = self.layouts.slot_of(node.class, f);
        for p in parts {
            let FieldKind::Data(Ty::Struct(st)) = self.program.fields[f.index()].kind else {
                return None;
            };
            let m = self.program.field_on_struct(st, p)?;
            slot += self.layouts.member_offset(m);
        }
        Some(slot)
    }

    /// Reads a field (or `struct.member` chain) by name.
    pub fn get_by_name(&self, id: NodeId, field: &str) -> Option<Value> {
        let slot = self.slot_by_name(id, field)?;
        Some(self.node(id).slots[slot])
    }

    /// Writes a field by name.
    pub fn set_by_name(&mut self, id: NodeId, field: &str, value: Value) -> Option<()> {
        let slot = self.slot_by_name(id, field)?;
        self.node_mut(id).slots[slot] = value;
        Some(())
    }

    /// Sets a child pointer by name.
    pub fn set_child_by_name(
        &mut self,
        id: NodeId,
        field: &str,
        child: Option<NodeId>,
    ) -> Option<()> {
        self.set_by_name(id, field, Value::Ref(child))
    }

    /// Reads a child pointer by name.
    pub fn child_by_name(&self, id: NodeId, field: &str) -> Option<Option<NodeId>> {
        match self.get_by_name(id, field)? {
            Value::Ref(c) => Some(c),
            _ => None,
        }
    }

    /// Deterministic snapshot of all live nodes reachable from `root`, in
    /// preorder: `(class name, slot values)` with child refs replaced by
    /// preorder indices so snapshots of differently-allocated but
    /// structurally identical trees compare equal.
    pub fn snapshot(&self, root: NodeId) -> Vec<(String, Vec<SnapValue>)> {
        let mut order: HashMap<NodeId, usize> = HashMap::new();
        let mut list = Vec::new();
        self.preorder(root, &mut order, &mut list);
        list.iter()
            .map(|&id| {
                let n = self.node(id);
                let vals = n
                    .slots
                    .iter()
                    .map(|v| match v {
                        Value::Ref(Some(c)) => SnapValue::Child(order[c]),
                        Value::Ref(None) => SnapValue::Null,
                        Value::Int(v) => SnapValue::Int(*v),
                        Value::Float(v) => SnapValue::Float(*v),
                        Value::Bool(v) => SnapValue::Bool(*v),
                    })
                    .collect();
                (self.program.classes[n.class.index()].name.clone(), vals)
            })
            .collect()
    }

    fn preorder(&self, id: NodeId, order: &mut HashMap<NodeId, usize>, list: &mut Vec<NodeId>) {
        if order.contains_key(&id) {
            return;
        }
        order.insert(id, list.len());
        list.push(id);
        let slots = self.node(id).slots.clone();
        for v in slots.iter() {
            if let Value::Ref(Some(c)) = v {
                self.preorder(*c, order, list);
            }
        }
    }
}

/// A structural value used in heap snapshots (see [`Heap::snapshot`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SnapValue {
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
    /// Preorder index of the referenced node.
    Child(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::compile;

    fn program() -> Program {
        compile(
            r#"
            struct Pair { int x; int y; }
            tree class Base {
                child Base* kid;
                int a = 7;
                virtual traversal nop() {}
            }
            tree class Derived : Base {
                Pair p;
                float f = 1.5;
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn layouts_flatten_structs_and_inheritance() {
        let p = program();
        let l = Layouts::new(&p);
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        // Base: kid + a = 2 slots; Derived adds p.x, p.y, f = 5 slots.
        assert_eq!(l.size_of(base), 2);
        assert_eq!(l.size_of(derived), 5);
        // Inherited fields keep their base-subobject offsets.
        let a = p.field_on_class(base, "a").unwrap();
        assert_eq!(l.slot_of(base, a), 1);
        assert_eq!(l.slot_of(derived, a), 1);
        // Struct member chain resolves to consecutive slots.
        let pf = p.field_on_class(derived, "p").unwrap();
        let pair = p.struct_by_name("Pair").unwrap();
        let y = p.field_on_struct(pair, "y").unwrap();
        assert_eq!(l.slot_of_chain(derived, &[pf, y]), 3);
        assert_eq!(l.node_bytes(derived), NODE_HEADER_BYTES + 5 * SLOT_BYTES);
    }

    #[test]
    fn defaults_honour_declared_literals() {
        let p = program();
        let l = Layouts::new(&p);
        let derived = p.class_by_name("Derived").unwrap();
        let d = l.defaults(derived);
        assert_eq!(d[0], Value::Ref(None)); // kid
        assert_eq!(d[1], Value::Int(7)); // a = 7
        assert_eq!(d[2], Value::Int(0)); // p.x
        assert_eq!(d[4], Value::Float(1.5)); // f = 1.5
        assert_eq!(l.slot_names(derived)[3], "p.y");
    }

    #[test]
    fn addresses_are_bump_allocated_in_order() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        let b = heap.alloc_by_name("Base").unwrap();
        let (aa, ab) = (heap.node(a).addr, heap.node(b).addr);
        assert_eq!(ab - aa, heap.layouts().node_bytes(heap.node(a).class));
    }

    #[test]
    fn live_bytes_track_allocation_and_deletion() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Derived").unwrap();
        let kid = heap.alloc_by_name("Base").unwrap();
        heap.set_child_by_name(a, "kid", Some(kid)).unwrap();
        let before = heap.live_bytes();
        assert!(before > 0);
        heap.delete_subtree(a);
        assert_eq!(heap.live_bytes(), 0);
        assert_eq!(heap.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "deleted node")]
    fn dead_node_access_panics() {
        let p = program();
        let mut heap = Heap::new(&p);
        let a = heap.alloc_by_name("Base").unwrap();
        heap.delete_subtree(a);
        let _ = heap.node(a);
    }
}
