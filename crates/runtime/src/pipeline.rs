//! Bridges runtime failures into the compiler's diagnostic machinery.
//!
//! Execution lives behind `grafter_engine::Engine` / `Session`; this
//! module only converts a [`RuntimeError`] (null dereference, missing
//! pure, unresolvable dispatch) into the same [`Diag`]/[`DiagnosticBag`]
//! currency the compile-side stages speak, tagged [`Stage::Runtime`] so
//! callers can tell a bad program from a bad run.

use grafter::{Diag, DiagnosticBag, Stage};

use crate::interp::RuntimeError;

impl From<RuntimeError> for Diag {
    fn from(e: RuntimeError) -> Diag {
        Diag::error_global(Stage::Runtime, e.to_string())
    }
}

impl From<RuntimeError> for DiagnosticBag {
    fn from(e: RuntimeError) -> DiagnosticBag {
        DiagnosticBag::from(Diag::from(e))
    }
}
