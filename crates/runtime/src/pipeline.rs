//! Execution stage of the `grafter::pipeline` API.
//!
//! The compile and fuse stages live in `grafter::pipeline` (the fusion
//! compiler has no runtime dependency); this module closes the loop by
//! extending [`grafter::pipeline::Fused`] with execution. Import the
//! [`Execute`] trait and a fused artifact gains:
//!
//! - [`Execute::new_heap`] — a [`Heap`] laid out for the fused program,
//! - [`Execute::interpret`] — run on a tree with default pures, returning
//!   the run's [`Metrics`],
//! - [`Execute::executor`] — an [`Executor`] builder for instrumented runs
//!   (custom pure registries, cache simulation, per-traversal arguments).
//!
//! Runtime failures surface as the same [`DiagnosticBag`] the earlier
//! stages use, tagged with [`Stage::Runtime`].
//!
//! ```
//! use grafter::pipeline::Pipeline;
//! use grafter_runtime::{Execute, Value};
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0;
//!         virtual traversal inc() {}
//!     }
//!     tree class Cons : Node {
//!         traversal inc() { a = a + 1; this->next->inc(); }
//!     }
//!     tree class End : Node { }
//! "#;
//! let fused = Pipeline::compile(src)?.fuse_default("Node", &["inc"])?;
//! let mut heap = fused.new_heap();
//! let end = heap.alloc_by_name("End").unwrap();
//! let cons = heap.alloc_by_name("Cons").unwrap();
//! heap.set_child_by_name(cons, "next", Some(end)).unwrap();
//! let metrics = fused.interpret(&mut heap, cons)?;
//! assert_eq!(metrics.visits, 2);
//! assert_eq!(heap.get_by_name(cons, "a").unwrap(), Value::Int(1));
//! # Ok::<(), grafter::DiagnosticBag>(())
//! ```

use grafter::pipeline::Fused;
use grafter::{Diag, DiagnosticBag, FusedProgram, Stage};
use grafter_cachesim::{CacheHierarchy, HierarchyStats};

use crate::heap::{Heap, NodeId};
use crate::interp::{Interp, RuntimeError};
use crate::metrics::Metrics;
use crate::pure::PureRegistry;
use crate::Value;

impl From<RuntimeError> for Diag {
    fn from(e: RuntimeError) -> Diag {
        Diag::error_global(Stage::Runtime, e.to_string())
    }
}

impl From<RuntimeError> for DiagnosticBag {
    fn from(e: RuntimeError) -> DiagnosticBag {
        DiagnosticBag::from(Diag::from(e))
    }
}

/// What an instrumented [`Executor::run`] hands back.
#[deprecated(
    since = "0.2.0",
    note = "use the unified `grafter_engine::Report` (fusion metrics + runtime \
            metrics + cache traffic + wall time in one struct)"
)]
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The interpreter's counters.
    pub metrics: Metrics,
    /// Cache statistics, when a hierarchy was attached.
    pub cache: Option<HierarchyStats>,
}

#[allow(deprecated)]
impl RunReport {
    /// Modelled runtime in cycles (instructions + memory stalls when a
    /// cache was attached, bare instructions otherwise).
    pub fn cycles(&self) -> u64 {
        match &self.cache {
            Some(stats) => self.metrics.cycles(stats),
            None => self.metrics.instructions,
        }
    }
}

/// Configurable single-run executor over a fused artifact; see [`Execute`].
#[deprecated(
    since = "0.2.0",
    note = "configure pures/cache/args once on `grafter_engine::Engine::builder()` \
            (or per `Session`) instead of per run"
)]
pub struct Executor<'a> {
    fp: &'a FusedProgram,
    pures: PureRegistry,
    cache: Option<CacheHierarchy>,
    args: Vec<Vec<Value>>,
}

#[allow(deprecated)]
impl<'a> Executor<'a> {
    /// Replaces the default math pure registry.
    pub fn pures(mut self, pures: PureRegistry) -> Self {
        self.pures = pures;
        self
    }

    /// Attaches a cache hierarchy; every field access is simulated.
    pub fn cache(mut self, cache: CacheHierarchy) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets per-traversal entry arguments.
    pub fn args(mut self, args: Vec<Vec<Value>>) -> Self {
        self.args = args;
        self
    }

    /// Runs the fused program on `root`, consuming the executor.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged [`Stage::Runtime`] on null
    /// dereferences, missing pure implementations or unresolvable dispatch.
    pub fn run(self, heap: &mut Heap, root: NodeId) -> Result<RunReport, DiagnosticBag> {
        let mut interp = Interp::with_pures(self.fp, self.pures);
        if let Some(cache) = self.cache {
            interp = interp.with_cache(cache);
        }
        interp.run(heap, root, &self.args)?;
        Ok(RunReport {
            metrics: interp.metrics,
            cache: interp.cache.as_ref().map(CacheHierarchy::stats),
        })
    }
}

/// Execution methods for [`Fused`] pipeline artifacts.
///
/// Deprecated: every call re-derives per-program state (frame layouts,
/// pure resolution) and a `Fused` artifact cannot be shared across
/// threads as one compiled unit. `grafter_engine::Engine` performs that
/// work exactly once at build time; per-request `Session`s then own their
/// heaps and run without re-compilation.
#[deprecated(
    since = "0.2.0",
    note = "build a `grafter_engine::Engine` once; `engine.session()` replaces \
            `new_heap()` + `interpret(..)`"
)]
#[allow(deprecated)]
pub trait Execute {
    /// A fresh heap laid out for this artifact's program.
    fn new_heap(&self) -> Heap;

    /// An [`Executor`] builder for instrumented runs.
    fn executor(&self) -> Executor<'_>;

    /// Runs the artifact on `root` with default math pures and no
    /// arguments, returning the run's metrics.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged [`Stage::Runtime`] when
    /// execution fails.
    fn interpret(&self, heap: &mut Heap, root: NodeId) -> Result<Metrics, DiagnosticBag> {
        self.executor().run(heap, root).map(|r| r.metrics)
    }

    /// Like [`Execute::interpret`] with per-traversal entry arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] tagged [`Stage::Runtime`] when
    /// execution fails.
    fn interpret_with_args(
        &self,
        heap: &mut Heap,
        root: NodeId,
        args: Vec<Vec<Value>>,
    ) -> Result<Metrics, DiagnosticBag> {
        self.executor()
            .args(args)
            .run(heap, root)
            .map(|r| r.metrics)
    }
}

#[allow(deprecated)]
impl Execute for Fused {
    fn new_heap(&self) -> Heap {
        Heap::new(self.program())
    }

    fn executor(&self) -> Executor<'_> {
        Executor {
            fp: self.fused_program(),
            pures: PureRegistry::with_math(),
            cache: None,
            args: Vec::new(),
        }
    }
}
