//! Value-semantics kernel shared by the interpreter and the bytecode VM.
//!
//! Both execution backends must agree bit-for-bit on arithmetic,
//! comparison and implicit conversion; keeping the kernel in one place
//! makes the differential guarantees (`tests/vm_differential.rs`) a
//! property of dispatch, not of duplicated arithmetic.

use grafter_frontend::{BinOp, FieldId, FieldKind, MethodId, Program, Ty, UnOp};

use crate::heap::default_literal;
use crate::Value;

/// The value type of the final element of a data chain.
///
/// Determines the store coercion of every tree/local/global write; both
/// backends must resolve it identically.
///
/// # Panics
///
/// Panics if the chain is empty or ends at a child field (sema
/// guarantees neither happens).
pub fn field_ty(program: &Program, chain: &[FieldId]) -> Ty {
    let last = chain.last().expect("nonempty data chain");
    match program.fields[last.index()].kind {
        FieldKind::Data(t) => t,
        FieldKind::Child(_) => unreachable!("data chains end at data fields"),
    }
}

/// Per-method local frame layout: the slot offset of each local (struct
/// locals flattened to one slot per member) and the total slot count.
///
/// The interpreter sizes its frame vectors and the VM numbers its
/// registers from this one function, so local indices correspond across
/// backends by construction.
pub fn local_frame_layout(program: &Program, method: MethodId) -> (Vec<usize>, usize) {
    let m = &program.methods[method.index()];
    let mut offsets = Vec::with_capacity(m.locals.len());
    let mut cur = 0usize;
    for lv in &m.locals {
        offsets.push(cur);
        cur += match lv.ty {
            Ty::Struct(s) => program.structs[s.index()].members.len(),
            _ => 1,
        };
    }
    (offsets, cur)
}

/// Flattened global frame: initial values (structs expanded to one slot
/// per member, declared literals honoured) and each global's first slot.
///
/// Both backends index globals through these offsets.
pub fn flatten_globals(program: &Program) -> (Vec<Value>, Vec<usize>) {
    let mut values = Vec::new();
    let mut offsets = Vec::with_capacity(program.globals.len());
    for g in &program.globals {
        offsets.push(values.len());
        match g.ty {
            Ty::Struct(s) => {
                for &m in &program.structs[s.index()].members {
                    let ty = match program.fields[m.index()].kind {
                        FieldKind::Data(t) => t,
                        FieldKind::Child(_) => unreachable!("struct members are data"),
                    };
                    values.push(default_literal(ty, None));
                }
            }
            ty => values.push(default_literal(ty, g.default)),
        }
    }
    (values, offsets)
}

/// Coerces a value to a declared type (C++-style implicit int<->float).
pub fn coerce(ty: Ty, v: Value) -> Value {
    match (ty, v) {
        (Ty::Int, Value::Float(f)) => Value::Int(f as i64),
        (Ty::Float, Value::Int(i)) => Value::Float(i as f64),
        _ => v,
    }
}

/// Applies a non-short-circuiting binary operator.
///
/// Integer division and remainder by zero yield 0 (the deterministic
/// stand-in both backends share); mixed int/float operands promote to
/// float, mirroring the C++ the paper's generated code runs as.
///
/// # Panics
///
/// Panics if an operand has a type the operator cannot accept (the same
/// ill-typed programs panic identically in both backends).
#[inline]
pub fn binop(op: BinOp, l: Value, r: Value) -> Value {
    use Value::*;
    let both_int = matches!((l, r), (Int(_), Int(_)));
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
            if both_int {
                let (a, b) = (l.as_i64(), r.as_i64());
                Int(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    _ => unreachable!(),
                })
            } else {
                let (a, b) = (l.as_f64(), r.as_f64());
                Float(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    _ => unreachable!(),
                })
            }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (a, b) = (l.as_f64(), r.as_f64());
            Bool(match op {
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            })
        }
        BinOp::Eq => Bool(values_equal(l, r)),
        BinOp::Ne => Bool(!values_equal(l, r)),
        BinOp::And | BinOp::Or => unreachable!("short-circuited before binop"),
    }
}

/// Applies a unary operator.
///
/// Integer negation wraps (so `-i64::MIN` is deterministic in every
/// build profile, matching [`binop`]'s wrapping arithmetic — and the
/// VM's constant folder, which evaluates through this same kernel).
///
/// # Panics
///
/// Panics if the operand has a type the operator cannot accept (the
/// same ill-typed programs panic identically in both backends).
#[inline]
pub fn unop(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Neg => match v {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
            other => panic!("cannot negate {other:?}"),
        },
        UnOp::Not => Value::Bool(!v.as_bool()),
    }
}

/// Equality across the value kinds (numeric values compare numerically).
pub fn values_equal(l: Value, r: Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Bool(a), Value::Bool(b)) => a == b,
        (Value::Ref(a), Value::Ref(b)) => a == b,
        _ => l.as_f64() == r.as_f64(),
    }
}
