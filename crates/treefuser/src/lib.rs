//! TreeFuser-style baseline: the render tree collapsed to a single
//! homogeneous node type.
//!
//! TreeFuser (Sakka et al., OOPSLA 2017) performs dependence-driven fusion
//! of general recursive traversals but requires *homogeneous* trees: every
//! node must have the same type. The Grafter paper's §5.1 comparison
//! therefore re-implemented the render tree with all seventeen types
//! "collapsed into a single type, using conditionals to determine which
//! code path to take". This crate reproduces that methodology:
//!
//! - [`SOURCE`] is the collapsed render tree: one `RNode` class with a
//!   `tag` field, the union of every original class's fields, two generic
//!   child slots, and the five layout passes written as tag-dispatched
//!   conditional blocks around *unconditional* child calls (absent children
//!   are null and the calls no-ops, exactly like the paper's TreeFuser
//!   port);
//! - [`convert_document`] mirrors any heterogeneous render-tree heap into
//!   its homogenised equivalent so fused/unfused/TreeFuser runs measure
//!   identical documents;
//! - the same fusion engine drives it — with a single node type there is
//!   no dynamic dispatch to specialise, so the result has exactly
//!   TreeFuser's power: one fusion decision for all node kinds, tag checks
//!   executed at every node, and fat union-layout nodes.

use std::collections::HashMap;

use grafter::pipeline::Compiled;
use grafter_frontend::Program;
use grafter_runtime::{Heap, NodeId, Value};

/// Tag values of the collapsed node type.
pub mod tag {
    pub const DOC: i64 = 0;
    pub const PLIST: i64 = 1;
    pub const PLEND: i64 = 2;
    pub const PAGE: i64 = 3;
    pub const TEXT: i64 = 4;
    pub const LINK: i64 = 5;
    pub const IMG: i64 = 6;
    pub const LIST: i64 = 7;
    pub const HEADER: i64 = 8;
    pub const FOOTER: i64 = 9;
    pub const HBOX: i64 = 10;
    pub const VBOX: i64 = 11;
    pub const ELIST: i64 = 12;
    pub const ELEND: i64 = 13;
}

/// The homogenised render-tree program.
///
/// `Kid1` holds the "content" child (page list head, page, element,
/// element-list head); `Kid2` holds the "next sibling" child. Leaf kinds
/// leave both null.
pub const SOURCE: &str = r#"
global int CHAR_WIDTH = 8;
global int LINE_HEIGHT = 12;
global int PAGE_MARGIN = 16;

tree class RNode {
    child RNode* Kid1;
    child RNode* Kid2;
    int tag = 0;
    int Width = 0; int Height = 0;
    int PosX = 0; int PosY = 0;
    int FlexWidth = 0;
    int WMode = 0;
    int RelWidth = 0;
    int FontSize = 0;
    int FontOverride = 0;
    int TextLen = 0;
    int NativeWidth = 64;
    int NativeHeight = 64;
    int Items = 1;
    int ItemLen = 10;
    int PageNo = 0;
    int Horiz = 0;
    int TotalFlex = 0;
    int TotalHeight = 0;
    int PageWidth = 800;
    int DocFontSize = 10;

    traversal resolveFlexWidths() {
        Kid1->resolveFlexWidths();
        Kid2->resolveFlexWidths();
        if (tag == 4 || tag == 5) { FlexWidth = TextLen * CHAR_WIDTH; }
        if (tag == 6) { FlexWidth = NativeWidth; }
        if (tag == 7) { FlexWidth = ItemLen * CHAR_WIDTH + 2 * CHAR_WIDTH; }
        if (tag == 8) { FlexWidth = TextLen * CHAR_WIDTH * 2; }
        if (tag == 9) { FlexWidth = 6 * CHAR_WIDTH; }
        if (tag == 10 || tag == 11) { FlexWidth = Kid1.TotalFlex; }
        if (tag == 12) {
            if (Horiz == 1) { TotalFlex = Kid1.FlexWidth + Kid2.TotalFlex; }
            else {
                TotalFlex = Kid1.FlexWidth;
                if (Kid2.TotalFlex > TotalFlex) { TotalFlex = Kid2.TotalFlex; }
            }
        }
    }

    traversal resolveRelativeWidths(int avail) {
        int a1 = avail;
        int a2 = avail;
        if (tag == 0) { a1 = PageWidth; }
        if (tag == 3) {
            Width = avail;
            a1 = avail - 2 * PAGE_MARGIN;
        }
        if (tag == 4 || tag == 5 || tag == 6) {
            if (WMode == 1) { Width = avail * RelWidth / 100; }
            else {
                Width = FlexWidth;
                if (Width > avail) { Width = avail; }
            }
        }
        if (tag == 7) {
            Width = FlexWidth;
            if (Width > avail) { Width = avail; }
        }
        if (tag == 8 || tag == 9) { Width = avail; }
        if (tag == 10) {
            if (WMode == 1) { Width = avail * RelWidth / 100; }
            else {
                Width = FlexWidth;
                if (Width > avail) { Width = avail; }
            }
            a1 = Width;
        }
        if (tag == 11) {
            if (WMode == 1) { Width = avail * RelWidth / 100; }
            else { Width = avail; }
            a1 = Width;
        }
        if (tag == 12) {
            if (Horiz == 1) {
                a1 = avail * Kid1.FlexWidth / TotalFlex;
                a2 = avail - a1;
            }
        }
        Kid1->resolveRelativeWidths(a1);
        Kid2->resolveRelativeWidths(a2);
    }

    traversal setFont(int size) {
        int s = size;
        if (tag == 0) { s = DocFontSize; }
        if (tag == 4) {
            FontSize = s;
            if (FontOverride > 0) { FontSize = FontOverride; }
        }
        if (tag == 5) {
            FontSize = s + 1;
            if (FontOverride > 0) { FontSize = FontOverride; }
        }
        if (tag == 6) { FontSize = s; }
        if (tag == 7) {
            FontSize = s;
            if (FontOverride > 0) { FontSize = FontOverride; }
        }
        if (tag == 8) { FontSize = s * 2; }
        if (tag == 9) { FontSize = s - 2; }
        if (tag == 10 || tag == 11) {
            if (FontOverride > 0) { s = FontOverride; }
            FontSize = s;
        }
        Kid1->setFont(s);
        Kid2->setFont(s);
    }

    traversal computeHeights() {
        Kid1->computeHeights();
        Kid2->computeHeights();
        if (tag == 4 || tag == 5) {
            int lines = (TextLen * CHAR_WIDTH + Width - 1) / Width;
            Height = lines * LINE_HEIGHT * FontSize / 10;
        }
        if (tag == 6) { Height = NativeHeight * Width / NativeWidth; }
        if (tag == 7) { Height = Items * LINE_HEIGHT * FontSize / 10; }
        if (tag == 8) { Height = 2 * LINE_HEIGHT * FontSize / 10; }
        if (tag == 9) { Height = LINE_HEIGHT * FontSize / 10; }
        if (tag == 10 || tag == 11) { Height = Kid1.TotalHeight; }
        if (tag == 3) { Height = Kid1.Height + 2 * PAGE_MARGIN; }
        if (tag == 1) { TotalHeight = Kid1.Height + Kid2.TotalHeight; }
        if (tag == 12) {
            if (Horiz == 1) {
                TotalHeight = Kid1.Height;
                if (Kid2.TotalHeight > TotalHeight) { TotalHeight = Kid2.TotalHeight; }
            } else {
                TotalHeight = Kid1.Height + Kid2.TotalHeight;
            }
        }
    }

    traversal computePositions(int x, int y) {
        int x1 = x;
        int y1 = y;
        if (tag == 0) { x1 = 0; y1 = 0; }
        if (tag == 3) {
            PosX = x;
            PosY = y;
            x1 = x + PAGE_MARGIN;
            y1 = y + PAGE_MARGIN;
        }
        if (tag >= 4 && tag <= 11) { PosX = x; PosY = y; }
        Kid1->computePositions(x1, y1);
        int x2 = x;
        int y2 = y;
        if (tag == 1) { y2 = y + Kid1.Height; }
        if (tag == 12) {
            if (Horiz == 1) { x2 = x + Kid1.Width; }
            else { y2 = y + Kid1.Height; }
        }
        Kid2->computePositions(x2, y2);
    }
}
"#;

/// The five passes (same names as the heterogeneous version).
pub const PASSES: [&str; 5] = [
    "resolveFlexWidths",
    "resolveRelativeWidths",
    "setFont",
    "computeHeights",
    "computePositions",
];

/// Root class (there is only one).
pub const ROOT_CLASS: &str = "RNode";

/// Compiles the homogenised program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn program() -> Program {
    compiled().into_program()
}

/// Compiles the homogenised program through the staged pipeline.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn compiled() -> Compiled {
    match Compiled::compile(SOURCE) {
        Ok(c) => c,
        Err(err) => panic!("treefuser program: {err}"),
    }
}

/// Converts a heterogeneous render-tree document (built by
/// `grafter_workloads::render`) into the homogenised representation,
/// preserving structure and every field value. Returns the new root.
///
/// # Panics
///
/// Panics if the source tree contains an unknown class.
pub fn convert_document(src: &Heap, src_root: NodeId, dst: &mut Heap) -> NodeId {
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    convert_node(src, src_root, dst, &mut map)
}

fn convert_node(
    src: &Heap,
    id: NodeId,
    dst: &mut Heap,
    map: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&m) = map.get(&id) {
        return m;
    }
    let class_name = src.program().classes[src.class_of(id).index()].name.clone();
    let node = dst.alloc_by_name(ROOT_CLASS).expect("RNode exists");
    map.insert(id, node);

    let copy = |dst: &mut Heap, node: NodeId, field: &str, src_field: &str| {
        if let Some(v) = src.get_by_name(id, src_field) {
            dst.set_by_name(node, field, v).expect("field exists");
        }
    };
    let kid = |dst: &mut Heap, map: &mut HashMap<NodeId, NodeId>, slot: &str, src_field: &str| {
        if let Some(Some(child)) = src.child_by_name(id, src_field) {
            let c = convert_node(src, child, dst, map);
            dst.set_child_by_name(node, slot, Some(c))
                .expect("kid slot");
        }
    };

    let t = match class_name.as_str() {
        "Document" => {
            copy(dst, node, "PageWidth", "PageWidth");
            copy(dst, node, "DocFontSize", "FontSize");
            kid(dst, map, "Kid1", "Pages");
            tag::DOC
        }
        "PageListInner" => {
            kid(dst, map, "Kid1", "P");
            kid(dst, map, "Kid2", "Next");
            tag::PLIST
        }
        "PageListEnd" => tag::PLEND,
        "Page" => {
            kid(dst, map, "Kid1", "Content");
            tag::PAGE
        }
        "TextBox" | "Link" => {
            copy(dst, node, "TextLen", "Text.Length");
            copy(dst, node, "WMode", "WMode");
            copy(dst, node, "RelWidth", "RelWidth");
            copy(dst, node, "FontOverride", "FontOverride");
            if class_name == "Link" {
                tag::LINK
            } else {
                tag::TEXT
            }
        }
        "Image" => {
            copy(dst, node, "NativeWidth", "NativeWidth");
            copy(dst, node, "NativeHeight", "NativeHeight");
            copy(dst, node, "WMode", "WMode");
            copy(dst, node, "RelWidth", "RelWidth");
            tag::IMG
        }
        "List" => {
            copy(dst, node, "Items", "Items");
            copy(dst, node, "ItemLen", "ItemLen");
            copy(dst, node, "FontOverride", "FontOverride");
            tag::LIST
        }
        "Header" => {
            copy(dst, node, "TextLen", "Title.Length");
            tag::HEADER
        }
        "Footer" => {
            copy(dst, node, "PageNo", "PageNo");
            tag::FOOTER
        }
        "HorizontalContainer" => {
            copy(dst, node, "WMode", "WMode");
            copy(dst, node, "RelWidth", "RelWidth");
            copy(dst, node, "FontOverride", "FontOverride");
            kid(dst, map, "Kid1", "Items");
            tag::HBOX
        }
        "VerticalContainer" => {
            copy(dst, node, "WMode", "WMode");
            copy(dst, node, "RelWidth", "RelWidth");
            copy(dst, node, "FontOverride", "FontOverride");
            kid(dst, map, "Kid1", "Items");
            tag::VBOX
        }
        "ElementListInner" => {
            copy(dst, node, "Horiz", "Horiz");
            kid(dst, map, "Kid1", "Item");
            kid(dst, map, "Kid2", "Next");
            tag::ELIST
        }
        "ElementListEnd" => tag::ELEND,
        other => panic!("unknown render class `{other}`"),
    };
    dst.set_by_name(node, "tag", Value::Int(t)).expect("tag");
    node
}

/// Field names whose post-layout values must agree between the
/// heterogeneous and homogenised runs (used by equivalence tests): the
/// homogenised name and the heterogeneous name per class.
pub const CHECKED_FIELDS: [&str; 4] = ["Width", "Height", "PosX", "PosY"];

#[cfg(test)]
mod tests {
    use super::*;
    use grafter::{fuse, FuseOptions};
    use grafter_runtime::Interp;
    use grafter_workloads::render;

    #[test]
    fn homogenised_program_compiles_with_one_type() {
        let p = program();
        assert_eq!(p.classes.len(), 1);
    }

    #[test]
    fn conversion_preserves_structure() {
        let het = render::program();
        let mut src = Heap::new(&het);
        let root = render::build_document(&mut src, 3, 42);
        let p = program();
        let mut dst = Heap::new(&p);
        let hroot = convert_document(&src, root, &mut dst);
        assert_eq!(src.live_count(), dst.live_count());
        assert_eq!(dst.get_by_name(hroot, "tag").unwrap(), Value::Int(tag::DOC));
    }

    #[test]
    fn homogenised_layout_matches_heterogeneous() {
        // Run the heterogeneous fused pipeline and the homogenised
        // (TreeFuser) pipeline on mirrored documents; every element's
        // final geometry must agree.
        let het = render::program();
        let het_fp = fuse(
            &het,
            render::ROOT_CLASS,
            &render::PASSES,
            &FuseOptions::default(),
        )
        .unwrap();
        let mut het_heap = Heap::new(&het);
        let het_root = render::build_document(&mut het_heap, 4, 9);

        let hom = program();
        let mut hom_heap = Heap::new(&hom);
        let hom_root = convert_document(&het_heap, het_root, &mut hom_heap);

        Interp::new(&het_fp)
            .run(&mut het_heap, het_root, &[])
            .unwrap();
        let hom_fp = fuse(&hom, ROOT_CLASS, &PASSES, &FuseOptions::default()).unwrap();
        Interp::new(&hom_fp)
            .run(&mut hom_heap, hom_root, &[])
            .unwrap();

        // Walk both trees in lockstep.
        let mut dst_map = HashMap::new();
        let mut probe = Heap::new(&hom);
        let _ = convert_node(&het_heap, het_root, &mut probe, &mut dst_map);
        for (&h, &m) in &dst_map {
            // Only Element-like nodes carry geometry.
            for f in CHECKED_FIELDS {
                let het_v = het_heap.get_by_name(h, f);
                if let Some(v) = het_v {
                    // dst_map points into `probe`, but node ids match
                    // hom_heap's because conversion is deterministic? They
                    // do not in general — compare through hom_heap by id.
                    let hv = hom_heap.get_by_name(m, f).unwrap();
                    assert_eq!(v, hv, "field {f} differs");
                }
            }
        }
    }

    #[test]
    fn treefuser_fusion_is_coarser_than_grafter() {
        // TreeFuser-mode fusion still reduces visits, but its unfused
        // baseline does more work per node (tag checks, null-child
        // dispatches).
        let p = program();
        let fused = fuse(&p, ROOT_CLASS, &PASSES, &FuseOptions::default()).unwrap();
        let unfused = fuse(&p, ROOT_CLASS, &PASSES, &FuseOptions::unfused()).unwrap();

        let het = render::program();
        let mut src = Heap::new(&het);
        let het_root = render::build_document(&mut src, 20, 3);

        let run = |fp: &grafter::FusedProgram| {
            let mut heap = Heap::new(&p);
            let root = convert_document(&src, het_root, &mut heap);
            let mut interp = Interp::new(fp);
            interp.run(&mut heap, root, &[]).unwrap();
            interp.metrics.clone()
        };
        let mf = run(&fused);
        let mu = run(&unfused);
        assert!(mf.visits < mu.visits);
        let ratio = mf.visits as f64 / mu.visits as f64;
        assert!(ratio > 0.3, "ratio {ratio}");
    }
}
