//! Integration tests for semantic analysis and the resolved HIR.

use grafter_frontend::{compile, DataAccess, Expr, Stmt};

/// The paper's Fig. 2 render-list example, transliterated to the DSL.
const FIG2: &str = r#"
    global int CHAR_WIDTH = 8;
    struct String { int Length; }
    struct BorderInfo { int Size; }
    tree class Element {
        child Element* Next;
        int Height = 0; int Width = 0;
        int MaxHeight = 0; int TotalWidth = 0;
        virtual traversal computeWidth() {}
        virtual traversal computeHeight() {}
    }
    tree class TextBox : public Element {
        String Text;
        traversal computeWidth() {
            Next->computeWidth();
            Width = Text.Length;
            TotalWidth = Next.Width + Width;
        }
        traversal computeHeight() {
            Next->computeHeight();
            Height = Text.Length * (Width / CHAR_WIDTH) + 1;
            MaxHeight = Height;
            if (Next.Height > Height) {
                MaxHeight = Next.Height;
            }
        }
    }
    tree class Group : public Element {
        child Element* Content;
        BorderInfo Border;
        traversal computeWidth() {
            Content->computeWidth();
            Next->computeWidth();
            Width = Content.Width + Border.Size * 2;
            TotalWidth = Width + Next.Width;
        }
        traversal computeHeight() {
            Content->computeHeight();
            Next->computeHeight();
            Height = Content.MaxHeight + Border.Size * 2;
            MaxHeight = Height;
            if (Next.Height > Height) {
                MaxHeight = Next.Height;
            }
        }
    }
    tree class End : public Element { }
"#;

#[test]
fn compiles_figure2() {
    let p = compile(FIG2).expect("figure 2 compiles");
    assert_eq!(p.classes.len(), 4);
    assert_eq!(p.methods.len(), 6);
    let element = p.class_by_name("Element").unwrap();
    let subs = p.concrete_subtypes(element);
    assert_eq!(subs.len(), 4);
}

#[test]
fn virtual_slots_link_overrides() {
    let p = compile(FIG2).unwrap();
    let element = p.class_by_name("Element").unwrap();
    let textbox = p.class_by_name("TextBox").unwrap();
    let end = p.class_by_name("End").unwrap();
    let base = p.method_on_class(element, "computeWidth").unwrap();
    let slot = p.methods[base.index()].slot;
    assert_eq!(slot, base, "root declaration is its own slot");

    let tb = p.resolve_virtual(textbox, slot).unwrap();
    assert_ne!(tb, base, "TextBox overrides computeWidth");
    assert_eq!(p.methods[tb.index()].class, textbox);

    let e = p.resolve_virtual(end, slot).unwrap();
    assert_eq!(e, base, "End inherits the default empty body");
}

#[test]
fn unqualified_members_resolve_to_this() {
    let p = compile(FIG2).unwrap();
    let textbox = p.class_by_name("TextBox").unwrap();
    let m = p.method_on_class(textbox, "computeWidth").unwrap();
    let body = &p.methods[m.index()].body;
    // `Width = Text.Length;`
    let Stmt::Assign { target, value } = &body[1] else {
        panic!("expected assignment, got {:?}", body[1]);
    };
    let DataAccess::OnTree { path, data } = target else {
        panic!("expected on-tree access");
    };
    assert!(path.is_this());
    assert_eq!(data.len(), 1);
    assert_eq!(p.fields[data[0].index()].name, "Width");
    // value reads Text.Length — a two-step data chain from this.
    let Expr::Read(DataAccess::OnTree { path, data }) = value else {
        panic!("expected read");
    };
    assert!(path.is_this());
    assert_eq!(data.len(), 2);
    assert_eq!(p.fields[data[1].index()].name, "Length");
}

#[test]
fn traverse_receiver_paths_inline_children() {
    let p = compile(FIG2).unwrap();
    let group = p.class_by_name("Group").unwrap();
    let m = p.method_on_class(group, "computeWidth").unwrap();
    let body = &p.methods[m.index()].body;
    let Stmt::Traverse(t) = &body[0] else {
        panic!("expected traverse");
    };
    assert_eq!(t.receiver.steps.len(), 1);
    assert_eq!(p.fields[t.receiver.steps[0].field.index()].name, "Content");
}

#[test]
fn aliases_are_inlined() {
    let src = r#"
        tree class N {
            child N* left;
            child N* right;
            int v = 0;
            traversal go() {
                N* const lr = this->left;
                lr->right->go();
                v = lr->right.v;
            }
        }
    "#;
    let p = compile(src).unwrap();
    let n = p.class_by_name("N").unwrap();
    let m = p.method_on_class(n, "go").unwrap();
    let body = &p.methods[m.index()].body;
    assert_eq!(body.len(), 2, "alias def disappears");
    let Stmt::Traverse(t) = &body[0] else {
        panic!()
    };
    let names: Vec<_> = t
        .receiver
        .fields()
        .map(|f| p.fields[f.index()].name.clone())
        .collect();
    assert_eq!(names, vec!["left", "right"]);
}

#[test]
fn least_common_ancestor_of_siblings() {
    let p = compile(FIG2).unwrap();
    let tb = p.class_by_name("TextBox").unwrap();
    let g = p.class_by_name("Group").unwrap();
    let el = p.class_by_name("Element").unwrap();
    assert_eq!(p.least_common_ancestor(&[tb, g]), Some(el));
    assert_eq!(p.least_common_ancestor(&[tb, tb]), Some(tb));
}

#[test]
fn path_target_type_follows_casts() {
    let p = compile(FIG2).unwrap();
    let g = p.class_by_name("Group").unwrap();
    let el = p.class_by_name("Element").unwrap();
    let m = p.method_on_class(g, "computeWidth").unwrap();
    let Stmt::Traverse(t) = &p.methods[m.index()].body[0] else {
        panic!()
    };
    assert_eq!(p.path_target_type(g, &t.receiver), Some(el));
}

#[test]
fn new_and_delete_resolve() {
    let src = r#"
        tree class Expr { virtual traversal simplify() {} }
        tree class Add : Expr {
            child Expr* lhs;
            child Expr* rhs;
            traversal simplify() {
                this->lhs->simplify();
                delete this->rhs;
                this->rhs = new Lit();
                static_cast<Lit*>(this->rhs).v = 0;
            }
        }
        tree class Lit : Expr { int v = 0; }
    "#;
    let p = compile(src).unwrap();
    let add = p.class_by_name("Add").unwrap();
    let m = p.method_on_class(add, "simplify").unwrap();
    let body = &p.methods[m.index()].body;
    assert!(matches!(body[1], Stmt::Delete { .. }));
    let Stmt::New { class, .. } = &body[2] else {
        panic!()
    };
    assert_eq!(*class, p.class_by_name("Lit").unwrap());
}

// ---- rejection tests -------------------------------------------------------

fn errors_of(src: &str) -> String {
    compile(src)
        .unwrap_err()
        .iter()
        .map(|d| d.message.clone())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn rejects_traverse_inside_if() {
    let msg = errors_of(
        r#"
        tree class N {
            child N* next;
            bool go = false;
            traversal f() {
                if (go) { this->next->f(); }
            }
        }
        "#,
    );
    assert!(msg.contains("top level"), "{msg}");
}

#[test]
fn rejects_assignment_to_tree_node() {
    let msg = errors_of(
        r#"
        tree class N {
            child N* next;
            traversal f() { this->next = this->next; }
        }
        "#,
    );
    // `this->next = <path>` parses as assignment whose value mentions a node.
    assert!(
        msg.contains("data fields") || msg.contains("tree node"),
        "{msg}"
    );
}

#[test]
fn rejects_override_of_nonvirtual() {
    let msg = errors_of(
        r#"
        tree class A { traversal f() {} }
        tree class B : A { traversal f() {} }
        "#,
    );
    assert!(msg.contains("non-virtual"), "{msg}");
}

#[test]
fn rejects_super_declared_after_use() {
    let msg = errors_of(
        r#"
        tree class B : A { }
        tree class A { }
        "#,
    );
    assert!(msg.contains("declared before"), "{msg}");
}

#[test]
fn rejects_unknown_method() {
    let msg = errors_of(
        r#"
        tree class N {
            child N* next;
            traversal f() { this->next->nope(); }
        }
        "#,
    );
    assert!(msg.contains("no traversal"), "{msg}");
}

#[test]
fn rejects_bad_new_type() {
    let msg = errors_of(
        r#"
        tree class A { child B* c; traversal f() { this->c = new A(); } }
        tree class B : A { }
        "#,
    );
    // A is not a subtype of B.
    assert!(msg.contains("subtype"), "{msg}");
}

#[test]
fn rejects_type_mismatches() {
    let msg = errors_of(
        r#"
        tree class A {
            int x = 0;
            bool b = false;
            traversal f() { x = b; }
        }
        "#,
    );
    assert!(msg.contains("type mismatch"), "{msg}");
}

#[test]
fn rejects_non_bool_condition() {
    let msg = errors_of(
        r#"
        tree class A {
            int x = 0;
            traversal f() { if (x + 1) { x = 2; } }
        }
        "#,
    );
    assert!(msg.contains("bool"), "{msg}");
}

#[test]
fn rejects_duplicate_definitions() {
    let msg = errors_of("tree class A { } tree class A { }");
    assert!(msg.contains("duplicate"), "{msg}");
}

#[test]
fn rejects_alias_to_this() {
    let msg = errors_of(
        r#"
        tree class A {
            traversal f() { A* const me = this; }
        }
        "#,
    );
    assert!(msg.contains("descendant"), "{msg}");
}

#[test]
fn rejects_pure_arity_mismatch() {
    let msg = errors_of(
        r#"
        pure int inc(int x);
        tree class A {
            int x = 0;
            traversal f() { x = inc(1, 2); }
        }
        "#,
    );
    assert!(msg.contains("argument"), "{msg}");
}

#[test]
fn rejects_shadowing() {
    let msg = errors_of(
        r#"
        tree class A {
            int x = 0;
            traversal f(int p) { int p = 3; x = p; }
        }
        "#,
    );
    assert!(msg.contains("shadows"), "{msg}");
}

#[test]
fn rejects_unrelated_cast() {
    let msg = errors_of(
        r#"
        tree class A { child A* c; traversal f() { A* const q = static_cast<B*>(this->c); } }
        tree class B { }
        "#,
    );
    assert!(msg.contains("unrelated"), "{msg}");
}

#[test]
fn rejects_node_valued_expression() {
    let msg = errors_of(
        r#"
        tree class A {
            child A* c;
            int x = 0;
            traversal f() { x = 1 + 2 * 3 - 4 % 5 / 6; x = x; }
        }
        tree class Bad {
            child Bad* c;
            int x = 0;
            traversal f() { x = this->c; }
        }
        "#,
    );
    assert!(msg.contains("cannot be used as values"), "{msg}");
}
