//! Robustness: the frontend must reject arbitrary input with diagnostics,
//! never panic.
//!
//! Originally written against proptest; the build environment is offline,
//! so the cases are drawn from the vendored deterministic `rand` shim
//! instead. Seeds are fixed, making every run identical.

use grafter_frontend::compile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn compile_never_panics_on_arbitrary_input() {
    let mut rng = StdRng::seed_from_u64(0xF0F0);
    for _ in 0..256 {
        let len = rng.gen_range(0..200);
        let src: String = (0..len)
            .map(|_| {
                // Mix printable ASCII with the occasional multi-byte char.
                if rng.gen_bool(0.9) {
                    rng.gen_range(0x20u32..0x7F) as u8 as char
                } else {
                    char::from_u32(rng.gen_range(0xA0u32..0x2000)).unwrap_or('λ')
                }
            })
            .collect();
        let _ = compile(&src);
    }
}

#[test]
fn compile_never_panics_on_tokenish_input() {
    const TOKENS: [&str; 23] = [
        "tree",
        "class",
        "child",
        "traversal",
        "virtual",
        "if",
        "return",
        "new",
        "delete",
        "this",
        "int",
        "{",
        "}",
        "(",
        ")",
        ";",
        "->",
        ".",
        "=",
        "*",
        "x",
        "N",
        "1",
    ];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..256 {
        let n = rng.gen_range(0..60usize);
        let src = (0..n)
            .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = compile(&src);
    }
}

#[test]
fn valid_skeletons_always_compile() {
    for n_fields in 1usize..5 {
        for n_traversals in 1usize..4 {
            let mut src = String::from("tree class T {\n  child T* next;\n");
            for i in 0..n_fields {
                src.push_str(&format!("  int f{i} = {i};\n"));
            }
            for i in 0..n_traversals {
                src.push_str(&format!(
                    "  virtual traversal t{i}() {{ f0 = f0 + 1; this->next->t{i}(); }}\n"
                ));
            }
            src.push_str("}\n");
            let program = compile(&src).expect("skeleton compiles");
            assert_eq!(program.methods.len(), n_traversals);
        }
    }
}
