//! Robustness: the frontend must reject arbitrary input with diagnostics,
//! never panic.

use grafter_frontend::compile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compile_never_panics_on_arbitrary_input(src in "\\PC*") {
        let _ = compile(&src);
    }

    #[test]
    fn compile_never_panics_on_tokenish_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("tree"), Just("class"), Just("child"), Just("traversal"),
                Just("virtual"), Just("if"), Just("return"), Just("new"),
                Just("delete"), Just("this"), Just("int"), Just("{"), Just("}"),
                Just("("), Just(")"), Just(";"), Just("->"), Just("."),
                Just("="), Just("*"), Just("x"), Just("N"), Just("1"),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = compile(&src);
    }

    #[test]
    fn valid_skeletons_always_compile(
        n_fields in 1usize..5,
        n_traversals in 1usize..4,
    ) {
        let mut src = String::from("tree class T {\n  child T* next;\n");
        for i in 0..n_fields {
            src.push_str(&format!("  int f{i} = {i};\n"));
        }
        for i in 0..n_traversals {
            src.push_str(&format!(
                "  virtual traversal t{i}() {{ f0 = f0 + 1; this->next->t{i}(); }}\n"
            ));
        }
        src.push_str("}\n");
        let program = compile(&src).expect("skeleton compiles");
        prop_assert_eq!(program.methods.len(), n_traversals);
    }
}
