//! Recursive-descent parser for the Grafter traversal language.

use crate::ast::*;
use crate::diag::{Diag, DiagnosticBag, Span, Stage};
use crate::hir::{BinOp, UnOp};
use crate::lexer::{lex, Token, TokenKind};

/// Parses source text into a surface AST.
///
/// # Errors
///
/// Returns all lexer diagnostics, or the first parse error encountered.
pub fn parse(src: &str) -> Result<SurfaceProgram, DiagnosticBag> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program().map_err(DiagnosticBag::from)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, Diag>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> Diag {
        Diag::error(Stage::Parse, message, self.span())
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Span> {
        if *self.peek() == kind {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(name) if name == kw)
    }

    fn is_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), TokenKind::Ident(name) if name == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<Span> {
        if self.is_kw(kw) {
            let span = self.span();
            self.bump();
            Ok(span)
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---- items -----------------------------------------------------------

    fn program(&mut self) -> PResult<SurfaceProgram> {
        let mut program = SurfaceProgram::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Ident(kw) => match kw.as_str() {
                    "tree" => program.classes.push(self.tree_class()?),
                    "struct" => program.structs.push(self.struct_def()?),
                    "pure" => program.pures.push(self.pure_decl()?),
                    "global" => program.globals.push(self.global_def()?),
                    other => {
                        return Err(self.error(format!(
                            "expected `tree`, `struct`, `pure` or `global` at top level, found `{other}`"
                        )))
                    }
                },
                other => {
                    return Err(self.error(format!(
                        "expected a top-level item, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(program)
    }

    fn tree_class(&mut self) -> PResult<TreeClass> {
        let start = self.expect_kw("tree")?;
        self.expect_kw("class")?;
        let (name, _) = self.ident()?;
        let mut supers = Vec::new();
        if self.eat(TokenKind::Colon) {
            loop {
                // Accept and ignore an optional C++-style `public`.
                self.eat_kw("public");
                let (sup, _) = self.ident()?;
                supers.push(sup);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            members.push(self.member()?);
        }
        Ok(TreeClass {
            name,
            supers,
            members,
            span: start.to(self.prev_span()),
        })
    }

    fn member(&mut self) -> PResult<Member> {
        if self.is_kw("child") {
            let start = self.span();
            self.bump();
            let (class, _) = self.ident()?;
            self.expect(TokenKind::Star)?;
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Semi)?;
            return Ok(Member::Child {
                class,
                name,
                span: start.to(self.prev_span()),
            });
        }
        if self.is_kw("traversal") || (self.is_kw("virtual") && self.is_kw_at(1, "traversal")) {
            return Ok(Member::Traversal(self.traversal_def()?));
        }
        // Data field: `ty name [= literal];`
        let start = self.span();
        let ty = self.type_name()?;
        let (name, _) = self.ident()?;
        let default = if self.eat(TokenKind::Assign) {
            Some(self.literal()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(Member::Data {
            ty,
            name,
            default,
            span: start.to(self.prev_span()),
        })
    }

    fn traversal_def(&mut self) -> PResult<TraversalDef> {
        let start = self.span();
        let is_virtual = self.eat_kw("virtual");
        self.expect_kw("traversal")?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(TokenKind::RParen) {
            loop {
                let ty = self.type_name()?;
                let (pname, _) = self.ident()?;
                params.push((ty, pname));
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(TraversalDef {
            name,
            is_virtual,
            params,
            body,
            span: start.to(self.prev_span()),
        })
    }

    fn struct_def(&mut self) -> PResult<StructDef> {
        let start = self.expect_kw("struct")?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            let ty = self.type_name()?;
            let (mname, _) = self.ident()?;
            self.expect(TokenKind::Semi)?;
            members.push((ty, mname));
        }
        Ok(StructDef {
            name,
            members,
            span: start.to(self.prev_span()),
        })
    }

    fn pure_decl(&mut self) -> PResult<PureDecl> {
        let start = self.expect_kw("pure")?;
        let return_type = self.type_name()?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(TokenKind::RParen) {
            loop {
                let ty = self.type_name()?;
                let (pname, _) = self.ident()?;
                params.push((ty, pname));
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Semi)?;
        Ok(PureDecl {
            name,
            return_type,
            params,
            span: start.to(self.prev_span()),
        })
    }

    fn global_def(&mut self) -> PResult<GlobalDef> {
        let start = self.expect_kw("global")?;
        let ty = self.type_name()?;
        let (name, _) = self.ident()?;
        let default = if self.eat(TokenKind::Assign) {
            Some(self.literal()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(GlobalDef {
            ty,
            name,
            default,
            span: start.to(self.prev_span()),
        })
    }

    fn type_name(&mut self) -> PResult<TypeName> {
        let (name, _) = self.ident()?;
        Ok(match name.as_str() {
            "int" => TypeName::Int,
            "float" | "double" => TypeName::Float,
            "bool" => TypeName::Bool,
            _ => TypeName::Named(name),
        })
    }

    fn literal(&mut self) -> PResult<Literal> {
        let negative = self.eat(TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Literal::Int(if negative { -v } else { v }))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Literal::Float(if negative { -v } else { v }))
            }
            TokenKind::Ident(name) if name == "true" => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(name) if name == "false" => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            other => Err(self.error(format!("expected literal, found {}", other.describe()))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> PResult<SurfaceStmt> {
        let start = self.span();
        if self.is_kw("if") {
            return self.if_stmt();
        }
        if self.eat_kw("return") {
            self.expect(TokenKind::Semi)?;
            return Ok(SurfaceStmt::Return {
                span: start.to(self.prev_span()),
            });
        }
        if self.eat_kw("delete") {
            let target = self.path()?;
            self.expect(TokenKind::Semi)?;
            return Ok(SurfaceStmt::Delete {
                target,
                span: start.to(self.prev_span()),
            });
        }
        // Local definition: `int|float|bool name ...` or `Struct name ...`.
        if matches!(self.peek(), TokenKind::Ident(k) if k == "int" || k == "float" || k == "double" || k == "bool")
        {
            return self.local_def();
        }
        // Alias: `Class * const name = path;`
        if matches!(self.peek(), TokenKind::Ident(_))
            && *self.peek_at(1) == TokenKind::Star
            && self.is_kw_at(2, "const")
        {
            let (class, _) = self.ident()?;
            self.bump(); // *
            self.bump(); // const
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let path = self.path()?;
            self.expect(TokenKind::Semi)?;
            return Ok(SurfaceStmt::AliasDef {
                class,
                name,
                path,
                span: start.to(self.prev_span()),
            });
        }
        // Struct-typed local: `Struct name ;` / `Struct name = expr ;`
        if matches!(self.peek(), TokenKind::Ident(k) if k != "this" && k != "static_cast")
            && matches!(self.peek_at(1), TokenKind::Ident(_))
        {
            return self.local_def();
        }
        // Pure call statement: `name(args);` (ident immediately followed by `(`).
        if matches!(self.peek(), TokenKind::Ident(k) if k != "this" && k != "static_cast")
            && *self.peek_at(1) == TokenKind::LParen
        {
            let (name, _) = self.ident()?;
            let args = self.call_args()?;
            self.expect(TokenKind::Semi)?;
            return Ok(SurfaceStmt::PureCall {
                name,
                args,
                span: start.to(self.prev_span()),
            });
        }
        // Otherwise: a path followed by `(` (traverse), `=` (assign/new).
        let path = self.path()?;
        if *self.peek() == TokenKind::LParen {
            // Traversing call: last arrow step is the method name.
            let mut receiver = path;
            if receiver.dots.is_empty() {
                let Some(last) = receiver.arrows.pop() else {
                    return Err(self.error("traversal call requires `->method(...)`"));
                };
                let args = self.call_args()?;
                self.expect(TokenKind::Semi)?;
                return Ok(SurfaceStmt::Traverse {
                    receiver,
                    method: last.name,
                    args,
                    span: start.to(self.prev_span()),
                });
            }
            return Err(self.error("method calls cannot follow `.` member accesses"));
        }
        self.expect(TokenKind::Assign)?;
        if self.is_kw("new") {
            self.bump();
            let (class, _) = self.ident()?;
            self.expect(TokenKind::LParen)?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(SurfaceStmt::New {
                target: path,
                class,
                span: start.to(self.prev_span()),
            });
        }
        let value = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(SurfaceStmt::Assign {
            target: path,
            value,
            span: start.to(self.prev_span()),
        })
    }

    fn local_def(&mut self) -> PResult<SurfaceStmt> {
        let start = self.span();
        let ty = self.type_name()?;
        let (name, _) = self.ident()?;
        let init = if self.eat(TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(SurfaceStmt::LocalDef {
            ty,
            name,
            init,
            span: start.to(self.prev_span()),
        })
    }

    fn if_stmt(&mut self) -> PResult<SurfaceStmt> {
        let start = self.expect_kw("if")?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut then_branch = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            then_branch.push(self.stmt()?);
        }
        let mut else_branch = Vec::new();
        if self.eat_kw("else") {
            self.expect(TokenKind::LBrace)?;
            while !self.eat(TokenKind::RBrace) {
                else_branch.push(self.stmt()?);
            }
        }
        Ok(SurfaceStmt::If {
            cond,
            then_branch,
            else_branch,
            span: start.to(self.prev_span()),
        })
    }

    fn call_args(&mut self) -> PResult<Vec<SurfaceExpr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(args)
    }

    // ---- paths -----------------------------------------------------------

    fn path(&mut self) -> PResult<SurfacePath> {
        let start = self.span();
        let base = if self.is_kw("this") {
            self.bump();
            PathBase::This
        } else if self.is_kw("static_cast") {
            self.bump();
            self.expect(TokenKind::Lt)?;
            let (class, _) = self.ident()?;
            self.expect(TokenKind::Star)?;
            self.expect(TokenKind::Gt)?;
            self.expect(TokenKind::LParen)?;
            let inner = self.path()?;
            self.expect(TokenKind::RParen)?;
            PathBase::Cast {
                class,
                inner: Box::new(inner),
            }
        } else {
            let (name, _) = self.ident()?;
            PathBase::Ident(name)
        };
        let mut arrows = Vec::new();
        while *self.peek() == TokenKind::Arrow {
            self.bump();
            let (name, _) = self.ident()?;
            arrows.push(ArrowStep { name });
        }
        let mut dots = Vec::new();
        while *self.peek() == TokenKind::Dot {
            self.bump();
            let (name, _) = self.ident()?;
            dots.push(name);
        }
        Ok(SurfacePath {
            base,
            arrows,
            dots,
            span: start.to(self.prev_span()),
        })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> PResult<SurfaceExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.equality_expr()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.equality_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> PResult<SurfaceExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = SurfaceExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<SurfaceExpr> {
        let start = self.span();
        if self.eat(TokenKind::Minus) {
            let expr = self.unary_expr()?;
            let span = start.to(expr.span());
            return Ok(SurfaceExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                span,
            });
        }
        if self.eat(TokenKind::Bang) {
            let expr = self.unary_expr()?;
            let span = start.to(expr.span());
            return Ok(SurfaceExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> PResult<SurfaceExpr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(SurfaceExpr::Literal(Literal::Int(v), start))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(SurfaceExpr::Literal(Literal::Float(v), start))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                if name == "true" || name == "false" {
                    self.bump();
                    return Ok(SurfaceExpr::Literal(Literal::Bool(name == "true"), start));
                }
                // Pure call in expression position: `name(args)`.
                if name != "this" && name != "static_cast" && *self.peek_at(1) == TokenKind::LParen
                {
                    self.bump();
                    let args = self.call_args()?;
                    return Ok(SurfaceExpr::Call {
                        name,
                        args,
                        span: start.to(self.prev_span()),
                    });
                }
                let path = self.path()?;
                Ok(SurfaceExpr::Path(path))
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SurfaceProgram {
        match parse(src) {
            Ok(p) => p,
            Err(errs) => panic!("parse failed: {}", errs[0].render(src)),
        }
    }

    #[test]
    fn parses_figure2_style_program() {
        let src = r#"
            global int CHAR_WIDTH = 8;
            struct String { int Length; }
            tree class Element {
                child Element* Next;
                int Height = 0; int Width = 0;
                int MaxHeight = 0; int TotalWidth = 0;
                virtual traversal computeWidth() {}
                virtual traversal computeHeight() {}
            }
            tree class TextBox : public Element {
                String Text;
                traversal computeWidth() {
                    this->Next->computeWidth();
                    this.Width = this.Text.Length;
                    this.TotalWidth = this->Next.Width + this.Width;
                }
                traversal computeHeight() {
                    this->Next->computeHeight();
                    this.Height = this.Text.Length * (this.Width / CHAR_WIDTH) + 1;
                    this.MaxHeight = this.Height;
                    if (this->Next.Height > this.Height) {
                        this.MaxHeight = this->Next.Height;
                    }
                }
            }
            tree class End : public Element { }
        "#;
        let p = parse_ok(src);
        assert_eq!(p.classes.len(), 3);
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.classes[0].members.len(), 7);
        assert_eq!(p.classes[1].supers, vec!["Element".to_string()]);
    }

    #[test]
    fn parses_alias_new_delete() {
        let src = r#"
            tree class N {
                child N* left;
                child N* right;
                int v = 0;
                traversal go() {
                    N* const l = this->left;
                    l->right->go();
                    this->left = new N();
                    delete this->right;
                }
            }
        "#;
        let p = parse_ok(src);
        let Member::Traversal(t) = &p.classes[0].members[3] else {
            panic!("expected traversal");
        };
        assert_eq!(t.body.len(), 4);
        assert!(matches!(t.body[0], SurfaceStmt::AliasDef { .. }));
        assert!(matches!(t.body[1], SurfaceStmt::Traverse { .. }));
        assert!(matches!(t.body[2], SurfaceStmt::New { .. }));
        assert!(matches!(t.body[3], SurfaceStmt::Delete { .. }));
    }

    #[test]
    fn parses_static_cast_path() {
        let src = r#"
            tree class A {
                child A* c;
                int x = 0;
                traversal f() {
                    this.x = static_cast<A*>(this->c).x;
                }
            }
        "#;
        let p = parse_ok(src);
        let Member::Traversal(t) = &p.classes[0].members[2] else {
            panic!("expected traversal");
        };
        let SurfaceStmt::Assign { value, .. } = &t.body[0] else {
            panic!("expected assignment");
        };
        let SurfaceExpr::Path(path) = value else {
            panic!("expected path read");
        };
        assert!(matches!(path.base, PathBase::Cast { .. }));
    }

    #[test]
    fn parses_pure_calls_and_locals() {
        let src = r#"
            pure float sqrtf(float x);
            tree class A {
                int x = 0;
                traversal f(int p) {
                    float t = sqrtf(3.5);
                    int u = p + 1;
                    this.x = u * 2;
                    logIt(t);
                }
            }
            pure bool logIt(float v);
        "#;
        let p = parse_ok(src);
        assert_eq!(p.pures.len(), 2);
        let Member::Traversal(t) = &p.classes[0].members[1] else {
            panic!("expected traversal");
        };
        assert_eq!(t.params.len(), 1);
        assert!(matches!(t.body[3], SurfaceStmt::PureCall { .. }));
    }

    #[test]
    fn precedence_is_sane() {
        let src = r#"
            tree class A {
                int x = 0;
                bool b = false;
                traversal f() {
                    this.b = 1 + 2 * 3 == 7 && !(4 > 5);
                }
            }
        "#;
        let p = parse_ok(src);
        let Member::Traversal(t) = &p.classes[0].members[2] else {
            panic!();
        };
        let SurfaceStmt::Assign { value, .. } = &t.body[0] else {
            panic!();
        };
        let SurfaceExpr::Binary { op: BinOp::And, .. } = value else {
            panic!("expected && at top: {value:?}");
        };
    }

    #[test]
    fn rejects_call_after_dot() {
        let err = parse("tree class A { int x = 0; traversal f() { this.x(); } }").unwrap_err();
        assert!(err[0].message.contains("member accesses"), "{err:?}");
    }

    #[test]
    fn rejects_unknown_top_level() {
        let err = parse("fn whatever() {}").unwrap_err();
        assert!(err[0].message.contains("top level"));
    }

    #[test]
    fn empty_traversal_body_allowed() {
        let p = parse_ok("tree class A { virtual traversal f() {} }");
        assert_eq!(p.classes.len(), 1);
    }
}
