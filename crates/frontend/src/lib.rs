//! Frontend for the Grafter traversal language.
//!
//! Grafter (Sakka et al., PLDI 2019) lets programmers write tree traversals
//! in a restricted C++-like language (the paper's Fig. 3 grammar): annotated
//! *tree classes* whose recursive `child` fields may point to arbitrary other
//! tree types, *traversal methods* (possibly `virtual` and mutually
//! recursive), opaque *pure functions*, plain `struct` data types, and
//! top-level globals. This crate is a from-scratch implementation of that
//! language:
//!
//! - [`lexer`] / [`parser`] produce a surface [`ast`],
//! - [`sema`] resolves names, checks the Fig. 3 restrictions (traversal
//!   calls only at the top level of a body, single-assignment node aliases,
//!   assignments only to data fields, trivial constructors for `new`, ...)
//!   and produces the fully resolved [`hir::Program`] consumed by the
//!   `grafter` fusion compiler and the `grafter-runtime` interpreter.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int value = 0;
//!         int sum = 0;
//!         virtual traversal computeSum() {}
//!     }
//!     tree class Cons : Node {
//!         traversal computeSum() {
//!             this->next->computeSum();
//!             this.sum = this.value + this->next.sum;
//!         }
//!     }
//!     tree class End : Node {
//!     }
//! "#;
//! let program = grafter_frontend::compile(src).expect("valid program");
//! assert_eq!(program.classes.len(), 3);
//! let node = program.class_by_name("Node").unwrap();
//! assert_eq!(program.concrete_subtypes(node).len(), 3);
//! ```

pub mod ast;
pub mod diag;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use diag::{Diag, DiagnosticBag, Severity, Span, Stage};
pub use hir::{
    BinOp, ClassId, DataAccess, Expr, FieldId, FieldKind, GlobalId, LocalId, MethodId, NodePath,
    PathStep, Program, PureId, Stmt, StructId, TraverseStmt, Ty, UnOp,
};

/// Parses and semantically checks a Grafter program.
///
/// # Errors
///
/// Returns a [`DiagnosticBag`] with every diagnostic collected during
/// lexing, parsing and semantic analysis if the program is not a valid
/// Grafter program.
pub fn compile(src: &str) -> Result<Program, DiagnosticBag> {
    compile_with_warnings(src).map(|(program, _)| program)
}

/// Like [`compile`], but also hands back the warnings emitted on success.
///
/// This is the entry point the `grafter::pipeline` layer builds on: one
/// [`DiagnosticBag`] carries errors and warnings from every frontend stage.
///
/// # Errors
///
/// Returns a [`DiagnosticBag`] with every diagnostic (errors and warnings)
/// if the program is not a valid Grafter program.
pub fn compile_with_warnings(src: &str) -> Result<(Program, DiagnosticBag), DiagnosticBag> {
    let surface = parser::parse(src)?;
    sema::check_with_warnings(&surface)
}
