//! Unified diagnostics and source locations for every pipeline stage.
//!
//! All stages of the compile→fuse→execute pipeline report problems through
//! one pair of types: a [`Diag`] is a single message with a [`Severity`],
//! the [`Stage`] that produced it, and an optional source [`Span`]; a
//! [`DiagnosticBag`] accumulates them across stages. The frontend (lexer,
//! parser, sema) fills bags directly; the fusion compiler and the runtime
//! convert their structured errors (`FuseError`, `RuntimeError`) into
//! [`Diag`]s when surfaced through the `grafter::pipeline` API, so callers
//! handle a single error type end to end.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::ops::Index;

use grafter_obs::json::escape as escape_json;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Computes 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// How serious a diagnostic is.
///
/// Errors abort the pipeline stage that produced them; warnings are carried
/// along with a successful result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The pipeline stage a diagnostic originated from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Tokenisation of the source text.
    Lex,
    /// Parsing tokens into the surface AST.
    Parse,
    /// Name resolution, type checking and language restrictions.
    Sema,
    /// The fusion compiler.
    Fuse,
    /// Interpretation of a fused program.
    Runtime,
    /// Engine/session configuration (builder misuse, bad entry points).
    Config,
}

impl Stage {
    /// Whether the stage runs before execution (lex/parse/sema/fuse and
    /// engine configuration). Runtime failures are the complement.
    pub fn is_compile(&self) -> bool {
        !matches!(self, Stage::Runtime)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => f.write_str("lex"),
            Stage::Parse => f.write_str("parse"),
            Stage::Sema => f.write_str("sema"),
            Stage::Fuse => f.write_str("fuse"),
            Stage::Runtime => f.write_str("runtime"),
            Stage::Config => f.write_str("config"),
        }
    }
}

/// A single diagnostic from any pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Diag {
    /// Whether this is an error or a warning.
    pub severity: Severity,
    /// The stage that produced the diagnostic.
    pub stage: Stage,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Source range the message refers to, when known.
    pub span: Option<Span>,
}

impl Diag {
    /// Creates an error attached to a source span.
    pub fn error(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diag {
            severity: Severity::Error,
            stage,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates an error with no particular location.
    pub fn error_global(stage: Stage, message: impl Into<String>) -> Self {
        Diag {
            severity: Severity::Error,
            stage,
            message: message.into(),
            span: None,
        }
    }

    /// Creates a warning attached to a source span.
    pub fn warning(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diag {
            severity: Severity::Warning,
            stage,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a warning with no particular location.
    pub fn warning_global(stage: Stage, message: impl Into<String>) -> Self {
        Diag {
            severity: Severity::Warning,
            stage,
            message: message.into(),
            span: None,
        }
    }

    /// Whether the diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic with `line:col` resolved against `src`.
    ///
    /// Spanned diagnostics additionally get a source-line excerpt with a
    /// caret run underlining the offending range:
    ///
    /// ```text
    /// 2:11: error[sema]: unknown tree class `Missing`
    ///   |
    /// 2 |     child Missing* c;
    ///   |           ^^^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        match self.span {
            Some(span) => {
                let (line, col) = span.line_col(src);
                let mut out = format!(
                    "{line}:{col}: {}[{}]: {}",
                    self.severity, self.stage, self.message
                );
                if let Some(text) = src.lines().nth(line - 1) {
                    let gutter = line.to_string();
                    let pad = " ".repeat(gutter.len());
                    // Caret run covering the span, clamped to the line
                    // end — measured in chars (the units of `col` and
                    // `indent`), not span bytes.
                    let line_chars = text.chars().count();
                    let avail = line_chars.saturating_sub(col - 1).max(1);
                    let span_chars = src
                        .get(span.start..span.end.min(src.len()))
                        .map(|covered| covered.chars().count())
                        .unwrap_or_else(|| span.end.saturating_sub(span.start));
                    let width = span_chars.clamp(1, avail);
                    let indent = " ".repeat(col - 1);
                    let carets = "^".repeat(width);
                    out.push_str(&format!(
                        "\n{pad} |\n{gutter} | {text}\n{pad} | {indent}{carets}"
                    ));
                }
                out
            }
            None => format!("{}[{}]: {}", self.severity, self.stage, self.message),
        }
    }

    /// Renders the diagnostic as one JSON object (`line`/`col` resolved
    /// against `src`; `span` is `null` for global diagnostics).
    pub fn render_json(&self, src: &str) -> String {
        let span = match self.span {
            Some(s) => {
                let (line, col) = s.line_col(src);
                format!(
                    r#"{{"start": {}, "end": {}, "line": {line}, "col": {col}}}"#,
                    s.start, s.end
                )
            }
            None => "null".to_string(),
        };
        format!(
            r#"{{"severity": "{}", "stage": "{}", "message": "{}", "span": {span}}}"#,
            self.severity,
            self.stage,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.stage, self.message)
    }
}

impl Error for Diag {}

/// An ordered accumulation of diagnostics across pipeline stages.
///
/// This is the single error type of the `grafter::pipeline` API: every
/// stage either succeeds (possibly leaving warnings behind) or hands back
/// the bag with at least one error in it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiagnosticBag {
    diags: Vec<Diag>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        DiagnosticBag::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, diag: Diag) {
        self.diags.push(diag);
    }

    /// Adds an error attached to a source span.
    pub fn error(&mut self, stage: Stage, message: impl Into<String>, span: Span) {
        self.push(Diag::error(stage, message, span));
    }

    /// Adds an error with no particular location.
    pub fn error_global(&mut self, stage: Stage, message: impl Into<String>) {
        self.push(Diag::error_global(stage, message));
    }

    /// Adds a warning attached to a source span.
    pub fn warning(&mut self, stage: Stage, message: impl Into<String>, span: Span) {
        self.push(Diag::warning(stage, message, span));
    }

    /// Number of diagnostics collected.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether no diagnostics were collected.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether at least one collected diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(Diag::is_error)
    }

    /// Iterates over the collected diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diag> {
        self.diags.iter()
    }

    /// The collected diagnostics as a slice.
    pub fn diags(&self) -> &[Diag] {
        &self.diags
    }

    /// Consumes the bag into its diagnostics.
    pub fn into_vec(self) -> Vec<Diag> {
        self.diags
    }

    /// Moves every diagnostic of `other` into `self`.
    pub fn merge(&mut self, other: DiagnosticBag) {
        self.diags.extend(other.diags);
    }

    /// Removes exact duplicates, keeping the first occurrence of each
    /// diagnostic in emission order.
    ///
    /// Pipelines that run a pass twice over the same program (e.g. fusing
    /// both the fused artifact and the unfused baseline) accumulate the
    /// same warnings once per pass; collapsing them keeps reports
    /// readable.
    pub fn dedup(&mut self) {
        let mut seen = HashSet::new();
        self.diags.retain(|d| seen.insert(d.clone()));
    }

    /// `Ok(value)` when the bag holds no errors, `Err(self)` otherwise.
    ///
    /// The success path keeps any warnings in the caller's hands via the
    /// returned pair.
    pub fn into_result<T>(self, value: T) -> Result<(T, DiagnosticBag), DiagnosticBag> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok((value, self))
        }
    }

    /// Renders every diagnostic with `line:col` resolved against `src`,
    /// one block per diagnostic (spanned diagnostics include their caret
    /// snippet).
    pub fn render(&self, src: &str) -> String {
        self.diags
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders the whole bag as a JSON array of diagnostic objects (the
    /// `grafterc --json` output format).
    pub fn render_json(&self, src: &str) -> String {
        if self.diags.is_empty() {
            return "[]".to_string();
        }
        let items = self
            .diags
            .iter()
            .map(|d| format!("  {}", d.render_json(src)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("[\n{items}\n]")
    }
}

impl Index<usize> for DiagnosticBag {
    type Output = Diag;

    fn index(&self, index: usize) -> &Diag {
        &self.diags[index]
    }
}

impl Extend<Diag> for DiagnosticBag {
    fn extend<I: IntoIterator<Item = Diag>>(&mut self, iter: I) {
        self.diags.extend(iter);
    }
}

impl FromIterator<Diag> for DiagnosticBag {
    fn from_iter<I: IntoIterator<Item = Diag>>(iter: I) -> Self {
        DiagnosticBag {
            diags: iter.into_iter().collect(),
        }
    }
}

impl From<Diag> for DiagnosticBag {
    fn from(diag: Diag) -> Self {
        DiagnosticBag { diags: vec![diag] }
    }
}

impl From<Vec<Diag>> for DiagnosticBag {
    fn from(diags: Vec<Diag>) -> Self {
        DiagnosticBag { diags }
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diag;
    type IntoIter = std::vec::IntoIter<Diag>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl<'a> IntoIterator for &'a DiagnosticBag {
    type Item = &'a Diag;
    type IntoIter = std::slice::Iter<'a, Diag>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.iter()
    }
}

impl fmt::Display for DiagnosticBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for DiagnosticBag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_tracks_errors_and_warnings() {
        let mut bag = DiagnosticBag::new();
        assert!(bag.is_empty() && !bag.has_errors());
        bag.warning(Stage::Sema, "unused traversal", Span::new(0, 3));
        assert!(!bag.has_errors(), "warnings alone are not errors");
        bag.error(Stage::Parse, "expected `;`", Span::new(4, 5));
        assert!(bag.has_errors());
        assert_eq!(bag.len(), 2);
        assert_eq!(bag[1].stage, Stage::Parse);
    }

    #[test]
    fn into_result_splits_on_errors() {
        let mut ok = DiagnosticBag::new();
        ok.warning(Stage::Lex, "odd spacing", Span::new(0, 1));
        assert!(ok.into_result(42).is_ok());

        let bad: DiagnosticBag = Diag::error_global(Stage::Fuse, "unknown tree class `X`").into();
        assert!(bad.into_result(42).is_err());
    }

    #[test]
    fn render_includes_stage_position_and_caret() {
        let src = "ab\ncd";
        let d = Diag::error(Stage::Lex, "unexpected character", Span::new(3, 4));
        assert_eq!(
            d.render(src),
            "2:1: error[lex]: unexpected character\n  |\n2 | cd\n  | ^"
        );
        let g = Diag::error_global(Stage::Runtime, "null child dereferenced");
        assert_eq!(g.render(src), "error[runtime]: null child dereferenced");
    }

    #[test]
    fn caret_clamps_to_the_source_line() {
        let src = "tree class X {\n    child Missing* c;\n}";
        let start = src.find("Missing").unwrap();
        let d = Diag::error(
            Stage::Sema,
            "unknown tree class `Missing`",
            Span::new(start, start + "Missing".len()),
        );
        let rendered = d.render(src);
        assert!(rendered.starts_with("2:11: error[sema]:"), "{rendered}");
        assert!(rendered.contains("2 |     child Missing* c;"), "{rendered}");
        assert!(rendered.contains("  |           ^^^^^^^"), "{rendered}");

        // A span that runs past the end of its line clamps its caret run.
        let d = Diag::error(
            Stage::Parse,
            "unterminated",
            Span::new(start, src.len() + 100),
        );
        let carets = d.render(src);
        let last = carets.lines().last().unwrap();
        assert_eq!(last.matches('^').count(), "Missing* c;".len(), "{carets}");
    }

    #[test]
    fn caret_width_counts_chars_not_bytes() {
        // '€' is 3 bytes but 1 column; the caret run must be 1 wide.
        let src = "a€b";
        let start = src.find('€').unwrap();
        let d = Diag::error(
            Stage::Lex,
            "unexpected character",
            Span::new(start, start + 3),
        );
        let last = d.render(src).lines().last().unwrap().to_string();
        assert_eq!(last.matches('^').count(), 1, "{last}");
    }

    #[test]
    fn dedup_removes_exact_duplicates_only() {
        let mut bag = DiagnosticBag::new();
        bag.warning(Stage::Sema, "pure `f` never called", Span::new(0, 4));
        bag.warning(Stage::Sema, "pure `f` never called", Span::new(0, 4));
        bag.warning(Stage::Sema, "pure `g` never called", Span::new(5, 9));
        bag.error_global(Stage::Fuse, "unknown tree class `X`");
        bag.error_global(Stage::Fuse, "unknown tree class `X`");
        bag.dedup();
        assert_eq!(bag.len(), 3);
        assert_eq!(bag[0].message, "pure `f` never called");
        assert_eq!(bag[1].message, "pure `g` never called");
        assert_eq!(bag[2].stage, Stage::Fuse);
    }

    #[test]
    fn json_rendering_escapes_and_locates() {
        let src = "ab\ncd";
        let d = Diag::error(Stage::Lex, "unexpected `\"`\n(literal)", Span::new(3, 4));
        let json = d.render_json(src);
        assert_eq!(
            json,
            r#"{"severity": "error", "stage": "lex", "message": "unexpected `\"`\n(literal)", "span": {"start": 3, "end": 4, "line": 2, "col": 1}}"#
        );
        let g = Diag::warning_global(Stage::Config, "no entry configured");
        assert!(g.render_json(src).ends_with(r#""span": null}"#));

        let mut bag = DiagnosticBag::new();
        assert_eq!(bag.render_json(src), "[]");
        bag.push(d);
        bag.push(g);
        let arr = bag.render_json(src);
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]"), "{arr}");
        assert_eq!(arr.matches("\"severity\"").count(), 2);
    }
}
