//! Diagnostics and source locations.

use std::error::Error;
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Computes 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// A compiler diagnostic (always an error; Grafter either fuses a valid
/// program or rejects it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
    /// Source range the message refers to, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic attached to a source span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a diagnostic with no particular location.
    pub fn global(message: impl Into<String>) -> Self {
        Diagnostic {
            message: message.into(),
            span: None,
        }
    }

    /// Renders the diagnostic with `line:col` resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        match self.span {
            Some(span) => {
                let (line, col) = span.line_col(src);
                format!("{line}:{col}: error: {}", self.message)
            }
            None => format!("error: {}", self.message),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.message)
    }
}

impl Error for Diagnostic {}
