//! Semantic analysis: name resolution, type checking and enforcement of the
//! Grafter language restrictions (paper §3.1).
//!
//! Produces the resolved [`Program`]. Restrictions enforced here include:
//!
//! - children are pointers to tree classes; data fields are primitives or
//!   plain structs,
//! - traversing calls appear only at the top level of a traversal body
//!   (never inside `if`), and their receiver is `this` or a descendant
//!   reached through child pointers / aliases,
//! - assignments write only data fields — tree topology changes only via
//!   `new` / `delete`,
//! - node aliases are single-assignment constants and are inlined away,
//! - pure functions are opaque and read-only,
//! - superclasses are declared before use; virtual overrides are linked to
//!   their dispatch slot.

use std::collections::{HashMap, HashSet};

use crate::ast::{self, Literal, Member, SurfaceExpr, SurfacePath, SurfaceStmt, TypeName};
use crate::diag::{DiagnosticBag, Span, Stage};
use crate::hir::*;

/// Resolves and checks a surface program.
///
/// # Errors
///
/// Returns all diagnostics found. The returned program is only produced when
/// there are no errors.
pub fn check(surface: &ast::SurfaceProgram) -> Result<Program, DiagnosticBag> {
    check_with_warnings(surface).map(|(program, _)| program)
}

/// Like [`check`], but also hands back the warnings emitted on success.
///
/// # Errors
///
/// Returns all diagnostics (errors and warnings) when the program is
/// invalid.
pub fn check_with_warnings(
    surface: &ast::SurfaceProgram,
) -> Result<(Program, DiagnosticBag), DiagnosticBag> {
    let mut cx = Checker::default();
    cx.intern_signatures(surface);
    if !cx.errors.has_errors() {
        cx.resolve_bodies(surface);
    }
    if !cx.errors.has_errors() {
        cx.warn_unused_pures();
    }
    cx.errors.into_result(cx.program)
}

#[derive(Default)]
struct Checker {
    program: Program,
    errors: DiagnosticBag,
    class_names: HashMap<String, ClassId>,
    struct_names: HashMap<String, StructId>,
    global_names: HashMap<String, GlobalId>,
    pure_names: HashMap<String, PureId>,
    /// Declaration span of each pure, indexed by [`PureId`].
    pure_spans: Vec<Span>,
    /// Pures referenced by at least one resolved body.
    used_pures: HashSet<PureId>,
}

/// What a surface path resolved to.
enum Resolved {
    /// A tree node (possibly `this` itself), with its static type.
    Node(NodePath, ClassId),
    /// A data location, with its type.
    Data(DataAccess, Ty),
}

struct BodyCx {
    /// The class the method is declared in (`this`'s static type).
    class: ClassId,
    /// Locals of the method being resolved, params first.
    locals: Vec<LocalVar>,
    /// In-scope local names (block scoped).
    scopes: Vec<HashMap<String, LocalId>>,
    /// In-scope aliases (block scoped): name -> (inlined path, static type).
    alias_scopes: Vec<HashMap<String, (NodePath, ClassId)>>,
}

impl Checker {
    fn err(&mut self, message: impl Into<String>, span: Span) {
        self.errors.error(Stage::Sema, message, span);
    }

    /// Warns about pure functions declared but never called (they are
    /// opaque to fusion, so a stale declaration usually signals a program
    /// that forgot to invoke one of its passes' helpers).
    fn warn_unused_pures(&mut self) {
        for (i, p) in self.program.pures.iter().enumerate() {
            let pid = PureId(i as u32);
            if !self.used_pures.contains(&pid) {
                self.errors.warning(
                    Stage::Sema,
                    format!("pure function `{}` is never called", p.name),
                    self.pure_spans[i],
                );
            }
        }
    }

    // ---- phase A: signatures ----------------------------------------------

    fn intern_signatures(&mut self, surface: &ast::SurfaceProgram) {
        // Structs first (classes may use them as field types).
        for (i, st) in surface.structs.iter().enumerate() {
            let id = StructId(i as u32);
            if self.struct_names.insert(st.name.clone(), id).is_some() {
                self.err(format!("duplicate struct `{}`", st.name), st.span);
            }
            self.program.structs.push(Struct {
                name: st.name.clone(),
                members: Vec::new(),
            });
        }
        for (i, st) in surface.structs.iter().enumerate() {
            for (ty, name) in &st.members {
                let ty = match self.value_type(ty) {
                    Some(t) if t.is_primitive() => t,
                    _ => {
                        self.err(
                            format!("struct member `{}` must be a primitive", name),
                            st.span,
                        );
                        Ty::Int
                    }
                };
                let fid = FieldId(self.program.fields.len() as u32);
                self.program.fields.push(Field {
                    name: name.clone(),
                    owner: FieldOwner::Struct(StructId(i as u32)),
                    kind: FieldKind::Data(ty),
                    default: None,
                });
                self.program.structs[i].members.push(fid);
            }
        }

        // Globals.
        for g in &surface.globals {
            let ty = self.value_type(&g.ty).unwrap_or_else(|| {
                self.err(format!("unknown type for global `{}`", g.name), g.span);
                Ty::Int
            });
            let id = GlobalId(self.program.globals.len() as u32);
            if self.global_names.insert(g.name.clone(), id).is_some() {
                self.err(format!("duplicate global `{}`", g.name), g.span);
            }
            if let Some(lit) = g.default {
                self.check_literal_type(lit, ty, g.span);
            }
            self.program.globals.push(GlobalVar {
                name: g.name.clone(),
                ty,
                default: g.default,
            });
        }

        // Pure function signatures.
        for p in &surface.pures {
            let ret = self.value_type(&p.return_type).unwrap_or_else(|| {
                self.err(format!("unknown return type of pure `{}`", p.name), p.span);
                Ty::Int
            });
            let params = p
                .params
                .iter()
                .map(|(t, _)| {
                    self.value_type(t).unwrap_or_else(|| {
                        self.err(
                            format!("unknown parameter type in pure `{}`", p.name),
                            p.span,
                        );
                        Ty::Int
                    })
                })
                .collect();
            let id = PureId(self.program.pures.len() as u32);
            if self.pure_names.insert(p.name.clone(), id).is_some() {
                self.err(format!("duplicate pure function `{}`", p.name), p.span);
            }
            self.pure_spans.push(p.span);
            self.program.pures.push(PureFn {
                name: p.name.clone(),
                return_type: ret,
                params,
            });
        }

        // Classes: declare names in order (supers must come first).
        for (i, cls) in surface.classes.iter().enumerate() {
            let id = ClassId(i as u32);
            if self.class_names.insert(cls.name.clone(), id).is_some() {
                self.err(format!("duplicate tree class `{}`", cls.name), cls.span);
            }
            self.program.classes.push(Class {
                name: cls.name.clone(),
                supers: Vec::new(),
                fields: Vec::new(),
                methods: Vec::new(),
            });
        }
        for (i, cls) in surface.classes.iter().enumerate() {
            let id = ClassId(i as u32);
            for sup in &cls.supers {
                match self.class_names.get(sup) {
                    Some(&sid) if sid.index() < i => {
                        self.program.classes[i].supers.push(sid);
                    }
                    Some(_) => self.err(
                        format!("superclass `{sup}` must be declared before `{}`", cls.name),
                        cls.span,
                    ),
                    None => self.err(format!("unknown superclass `{sup}`"), cls.span),
                }
            }
            self.intern_members(id, cls);
        }
    }

    fn intern_members(&mut self, id: ClassId, cls: &ast::TreeClass) {
        for m in &cls.members {
            match m {
                Member::Child { class, name, span } => {
                    let target = match self.class_names.get(class) {
                        Some(&c) => c,
                        None => {
                            self.err(
                                format!("unknown tree class `{class}` for child `{name}`"),
                                *span,
                            );
                            continue;
                        }
                    };
                    if self.program.field_on_class(id, name).is_some() {
                        self.err(format!("duplicate member `{name}`"), *span);
                    }
                    let fid = FieldId(self.program.fields.len() as u32);
                    self.program.fields.push(Field {
                        name: name.clone(),
                        owner: FieldOwner::Class(id),
                        kind: FieldKind::Child(target),
                        default: None,
                    });
                    self.program.classes[id.index()].fields.push(fid);
                }
                Member::Data {
                    ty,
                    name,
                    default,
                    span,
                } => {
                    let ty = match self.value_type(ty) {
                        Some(t) => t,
                        None => {
                            self.err(format!("unknown type of field `{name}`"), *span);
                            continue;
                        }
                    };
                    if let Ty::Node(_) = ty {
                        self.err(
                            format!("field `{name}`: tree-node fields must use `child`"),
                            *span,
                        );
                    }
                    if self.program.field_on_class(id, name).is_some() {
                        self.err(format!("duplicate member `{name}`"), *span);
                    }
                    if let Some(lit) = default {
                        self.check_literal_type(*lit, ty, *span);
                    }
                    let fid = FieldId(self.program.fields.len() as u32);
                    self.program.fields.push(Field {
                        name: name.clone(),
                        owner: FieldOwner::Class(id),
                        kind: FieldKind::Data(ty),
                        default: *default,
                    });
                    self.program.classes[id.index()].fields.push(fid);
                }
                Member::Traversal(t) => self.intern_method(id, t),
            }
        }
    }

    fn intern_method(&mut self, class: ClassId, t: &ast::TraversalDef) {
        let mut locals = Vec::new();
        for (ty, name) in &t.params {
            let ty = match self.value_type(ty) {
                Some(ty) if !matches!(ty, Ty::Node(_)) => ty,
                Some(_) => {
                    self.err(
                        format!("parameter `{name}`: traversal parameters are passed by value and cannot be tree nodes"),
                        t.span,
                    );
                    Ty::Int
                }
                None => {
                    self.err(format!("unknown type of parameter `{name}`"), t.span);
                    Ty::Int
                }
            };
            locals.push(LocalVar {
                name: name.clone(),
                ty,
                is_param: true,
            });
        }

        // Dispatch slot: an override links to the root-most declaration.
        let inherited = self.program.ancestors(class).into_iter().find_map(|a| {
            self.program.classes[a.index()]
                .methods
                .iter()
                .copied()
                .find(|&m| self.program.methods[m.index()].name == t.name)
        });
        let id = MethodId(self.program.methods.len() as u32);
        let slot = match inherited {
            Some(m) => {
                let base = self.program.methods[m.index()].clone();
                if !base.is_virtual {
                    self.err(
                        format!("`{}` overrides a non-virtual traversal", t.name),
                        t.span,
                    );
                }
                if base.n_params != t.params.len() {
                    self.err(
                        format!("`{}` overrides a traversal with a different arity", t.name),
                        t.span,
                    );
                }
                base.slot
            }
            None => id,
        };
        if self.program.classes[class.index()]
            .methods
            .iter()
            .any(|&m| self.program.methods[m.index()].name == t.name)
        {
            self.err(format!("duplicate traversal `{}`", t.name), t.span);
        }
        let n_params = locals.len();
        self.program.methods.push(Method {
            name: t.name.clone(),
            class,
            is_virtual: t.is_virtual || inherited.is_some(),
            locals,
            n_params,
            body: Vec::new(),
            slot,
        });
        self.program.classes[class.index()].methods.push(id);
    }

    fn value_type(&mut self, ty: &TypeName) -> Option<Ty> {
        match ty {
            TypeName::Int => Some(Ty::Int),
            TypeName::Float => Some(Ty::Float),
            TypeName::Bool => Some(Ty::Bool),
            TypeName::Named(name) => {
                if let Some(&st) = self.struct_names.get(name) {
                    Some(Ty::Struct(st))
                } else {
                    self.class_names.get(name).map(|&c| Some(Ty::Node(c)))?
                }
            }
        }
    }

    fn check_literal_type(&mut self, lit: Literal, ty: Ty, span: Span) {
        let ok = matches!(
            (lit, ty),
            (Literal::Int(_), Ty::Int)
                | (Literal::Int(_), Ty::Float)
                | (Literal::Float(_), Ty::Float)
                | (Literal::Bool(_), Ty::Bool)
        );
        if !ok {
            self.err("literal type does not match declared type", span);
        }
    }

    // ---- phase B: bodies ---------------------------------------------------

    fn resolve_bodies(&mut self, surface: &ast::SurfaceProgram) {
        for (ci, cls) in surface.classes.iter().enumerate() {
            for m in &cls.members {
                let Member::Traversal(t) = m else { continue };
                // Traversal names are unique within a class (checked in
                // phase A), so the name identifies the method.
                let Some(&mid) = self.program.classes[ci]
                    .methods
                    .iter()
                    .find(|&&mm| self.program.methods[mm.index()].name == t.name)
                else {
                    continue;
                };
                let method = &self.program.methods[mid.index()];
                let mut cx = BodyCx {
                    class: ClassId(ci as u32),
                    locals: method.locals.clone(),
                    scopes: vec![HashMap::new()],
                    alias_scopes: vec![HashMap::new()],
                };
                for (i, lv) in cx.locals.iter().enumerate() {
                    cx.scopes[0].insert(lv.name.clone(), LocalId(i as u32));
                }
                let body = self.resolve_block(&t.body, &mut cx, true);
                let method = &mut self.program.methods[mid.index()];
                method.body = body;
                method.locals = cx.locals;
            }
        }
    }

    fn resolve_block(
        &mut self,
        stmts: &[SurfaceStmt],
        cx: &mut BodyCx,
        top_level: bool,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            if let Some(stmt) = self.resolve_stmt(s, cx, top_level) {
                out.push(stmt);
            }
        }
        out
    }

    fn resolve_stmt(
        &mut self,
        stmt: &SurfaceStmt,
        cx: &mut BodyCx,
        top_level: bool,
    ) -> Option<Stmt> {
        match stmt {
            SurfaceStmt::Traverse {
                receiver,
                method,
                args,
                span,
            } => {
                if !top_level {
                    self.err(
                        "traversing calls may only appear at the top level of a traversal body",
                        *span,
                    );
                    return None;
                }
                let resolved = self.resolve_path(receiver, cx)?;
                let Resolved::Node(path, static_ty) = resolved else {
                    self.err("traversing call receiver must be a tree node", *span);
                    return None;
                };
                let Some(mid) = self.program.method_on_class(static_ty, method) else {
                    self.err(
                        format!(
                            "no traversal `{method}` on class `{}`",
                            self.program.classes[static_ty.index()].name
                        ),
                        *span,
                    );
                    return None;
                };
                let slot = self.program.methods[mid.index()].slot;
                let decl = &self.program.methods[mid.index()];
                if args.len() != decl.n_params {
                    self.err(
                        format!(
                            "traversal `{method}` expects {} argument(s), got {}",
                            decl.n_params,
                            args.len()
                        ),
                        *span,
                    );
                    return None;
                }
                let param_tys: Vec<Ty> =
                    decl.locals[..decl.n_params].iter().map(|l| l.ty).collect();
                let mut rargs = Vec::new();
                for (a, want) in args.iter().zip(param_tys) {
                    let (e, ty) = self.resolve_expr(a, cx)?;
                    self.require_assignable(ty, want, a.span());
                    rargs.push(e);
                }
                Some(Stmt::Traverse(TraverseStmt {
                    receiver: path,
                    slot,
                    args: rargs,
                    span: *span,
                }))
            }
            SurfaceStmt::Assign {
                target,
                value,
                span,
            } => {
                let resolved = self.resolve_path(target, cx)?;
                let Resolved::Data(access, ty) = resolved else {
                    self.err(
                        "assignments may only write data fields; use `new`/`delete` to change tree topology",
                        *span,
                    );
                    return None;
                };
                let (value, vty) = self.resolve_expr(value, cx)?;
                self.require_assignable(vty, ty, *span);
                Some(Stmt::Assign {
                    target: access,
                    value,
                })
            }
            SurfaceStmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let (cond, cty) = self.resolve_expr(cond, cx)?;
                if cty != Ty::Bool {
                    self.err("if condition must be a bool", *span);
                }
                cx.scopes.push(HashMap::new());
                cx.alias_scopes.push(HashMap::new());
                let then_branch = self.resolve_block(then_branch, cx, false);
                cx.alias_scopes.pop();
                cx.scopes.pop();
                cx.scopes.push(HashMap::new());
                cx.alias_scopes.push(HashMap::new());
                let else_branch = self.resolve_block(else_branch, cx, false);
                cx.alias_scopes.pop();
                cx.scopes.pop();
                Some(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            SurfaceStmt::LocalDef {
                ty,
                name,
                init,
                span,
            } => {
                let ty = match self.value_type(ty) {
                    Some(t) if !matches!(t, Ty::Node(_)) => t,
                    Some(_) => {
                        self.err(
                            format!("local `{name}`: use a `T* const` alias for tree nodes"),
                            *span,
                        );
                        return None;
                    }
                    None => {
                        self.err(format!("unknown type of local `{name}`"), *span);
                        return None;
                    }
                };
                if cx.lookup_local(name).is_some() || cx.lookup_alias(name).is_some() {
                    self.err(format!("`{name}` shadows an existing variable"), *span);
                }
                let id = LocalId(cx.locals.len() as u32);
                cx.locals.push(LocalVar {
                    name: name.clone(),
                    ty,
                    is_param: false,
                });
                cx.scopes.last_mut().unwrap().insert(name.clone(), id);
                let init = match init {
                    Some(e) => {
                        let (e, ety) = self.resolve_expr(e, cx)?;
                        self.require_assignable(ety, ty, *span);
                        Some(e)
                    }
                    None => None,
                };
                Some(Stmt::LocalDef { local: id, init })
            }
            SurfaceStmt::AliasDef {
                class,
                name,
                path,
                span,
            } => {
                let Some(&declared) = self.class_names.get(class) else {
                    self.err(format!("unknown tree class `{class}`"), *span);
                    return None;
                };
                let resolved = self.resolve_path(path, cx)?;
                let Resolved::Node(node_path, static_ty) = resolved else {
                    self.err("alias initialiser must be a tree node", *span);
                    return None;
                };
                if node_path.is_this() {
                    self.err("alias must refer to a descendant of `this`", *span);
                }
                if !self.program.is_subtype(static_ty, declared)
                    && !self.program.is_subtype(declared, static_ty)
                {
                    self.err(
                        format!(
                            "alias type `{class}` is unrelated to `{}`",
                            self.program.classes[static_ty.index()].name
                        ),
                        *span,
                    );
                }
                if cx.lookup_alias(name).is_some() || cx.lookup_local(name).is_some() {
                    self.err(format!("`{name}` shadows an existing variable"), *span);
                }
                cx.alias_scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), (node_path, declared));
                // Aliases are inlined; they produce no statement.
                None
            }
            SurfaceStmt::New {
                target,
                class,
                span,
            } => {
                let Some(&cid) = self.class_names.get(class) else {
                    self.err(format!("unknown tree class `{class}`"), *span);
                    return None;
                };
                let resolved = self.resolve_path(target, cx)?;
                let Resolved::Node(path, _static_ty) = resolved else {
                    self.err("`new` must assign to a child field", *span);
                    return None;
                };
                if path.is_this() {
                    self.err("`new` cannot replace the traversed node itself", *span);
                    return None;
                }
                // The constructed type must be a subtype of the child's
                // declared (non-cast) static type.
                let last = path.steps.last().unwrap();
                let FieldKind::Child(declared) = self.program.fields[last.field.index()].kind
                else {
                    unreachable!("node path steps are child fields");
                };
                if !self.program.is_subtype(cid, declared) {
                    self.err(
                        format!(
                            "`new {class}()` does not produce a subtype of child type `{}`",
                            self.program.classes[declared.index()].name
                        ),
                        *span,
                    );
                }
                Some(Stmt::New {
                    target: path,
                    class: cid,
                })
            }
            SurfaceStmt::Delete { target, span } => {
                let resolved = self.resolve_path(target, cx)?;
                let Resolved::Node(path, _) = resolved else {
                    self.err("`delete` expects a tree node", *span);
                    return None;
                };
                if path.is_this() {
                    self.err("`delete` cannot delete the traversed node itself", *span);
                    return None;
                }
                Some(Stmt::Delete { target: path })
            }
            SurfaceStmt::Return { .. } => Some(Stmt::Return),
            SurfaceStmt::PureCall { name, args, span } => {
                let Some(&pid) = self.pure_names.get(name) else {
                    self.err(format!("unknown pure function `{name}`"), *span);
                    return None;
                };
                let rargs = self.resolve_pure_args(pid, args, cx, *span)?;
                Some(Stmt::PureStmt {
                    pure: pid,
                    args: rargs,
                })
            }
        }
    }

    fn resolve_pure_args(
        &mut self,
        pid: PureId,
        args: &[SurfaceExpr],
        cx: &mut BodyCx,
        span: Span,
    ) -> Option<Vec<Expr>> {
        self.used_pures.insert(pid);
        let want: Vec<Ty> = self.program.pures[pid.index()].params.clone();
        if want.len() != args.len() {
            self.err(
                format!(
                    "pure `{}` expects {} argument(s), got {}",
                    self.program.pures[pid.index()].name,
                    want.len(),
                    args.len()
                ),
                span,
            );
            return None;
        }
        let mut out = Vec::new();
        for (a, w) in args.iter().zip(want) {
            let (e, ty) = self.resolve_expr(a, cx)?;
            self.require_assignable(ty, w, a.span());
            out.push(e);
        }
        Some(out)
    }

    fn require_assignable(&mut self, from: Ty, to: Ty, span: Span) {
        let ok = from == to || matches!((from, to), (Ty::Int, Ty::Float) | (Ty::Float, Ty::Int));
        if !ok {
            self.err(
                format!("type mismatch: cannot use {from:?} where {to:?} is expected"),
                span,
            );
        }
    }

    // ---- paths and expressions ---------------------------------------------

    fn resolve_path(&mut self, path: &SurfacePath, cx: &mut BodyCx) -> Option<Resolved> {
        // Resolve the base to either a node path + static type, or a data
        // location + remaining member chain.
        let span = path.span;
        enum Base {
            Node(NodePath, ClassId),
            Data(DataAccess, Ty),
        }
        let base = match &path.base {
            ast::PathBase::This => Base::Node(NodePath::this(), cx.class),
            ast::PathBase::Cast { class, inner } => {
                let Some(&target) = self.class_names.get(class) else {
                    self.err(format!("unknown tree class `{class}` in cast"), span);
                    return None;
                };
                let inner = self.resolve_path(inner, cx)?;
                let Resolved::Node(mut np, static_ty) = inner else {
                    self.err("static_cast applies only to tree nodes", span);
                    return None;
                };
                if !self.program.is_subtype(target, static_ty)
                    && !self.program.is_subtype(static_ty, target)
                {
                    self.err(
                        format!(
                            "cast between unrelated classes `{class}` and `{}`",
                            self.program.classes[static_ty.index()].name
                        ),
                        span,
                    );
                }
                match np.steps.last_mut() {
                    Some(last) => last.cast_to = Some(target),
                    None => np.base_cast = Some(target),
                }
                Base::Node(np, target)
            }
            ast::PathBase::Ident(name) => {
                if let Some((np, ty)) = cx.lookup_alias(name) {
                    Base::Node(np.clone(), ty)
                } else if let Some(local) = cx.lookup_local(name) {
                    let ty = cx.locals[local.index()].ty;
                    Base::Data(
                        DataAccess::Local {
                            local,
                            members: Vec::new(),
                        },
                        ty,
                    )
                } else if let Some(fid) = self.program.field_on_class(cx.class, name) {
                    // Unqualified member access: `Width` means `this.Width`,
                    // `Next` means `this->Next`.
                    match self.program.fields[fid.index()].kind {
                        FieldKind::Child(c) => Base::Node(
                            NodePath {
                                base_cast: None,
                                steps: vec![PathStep {
                                    field: fid,
                                    cast_to: None,
                                }],
                            },
                            c,
                        ),
                        FieldKind::Data(ty) => Base::Data(
                            DataAccess::OnTree {
                                path: NodePath::this(),
                                data: vec![fid],
                            },
                            ty,
                        ),
                    }
                } else if let Some(&gid) = self.global_names.get(name) {
                    let ty = self.program.globals[gid.index()].ty;
                    Base::Data(
                        DataAccess::Global {
                            global: gid,
                            members: Vec::new(),
                        },
                        ty,
                    )
                } else {
                    self.err(format!("unknown name `{name}`"), span);
                    return None;
                }
            }
        };

        // Apply `->` steps (child navigation) — only valid from a node.
        let (mut node, mut static_ty, mut data, mut data_ty) = match base {
            Base::Node(np, ty) => (Some(np), ty, None, Ty::Int),
            Base::Data(da, ty) => (None, ClassId(0), Some(da), ty),
        };
        for arrow in &path.arrows {
            let Some(np) = node.as_mut() else {
                self.err(
                    format!("`->{}` applied to a non-node value", arrow.name),
                    span,
                );
                return None;
            };
            let Some(fid) = self.program.field_on_class(static_ty, &arrow.name) else {
                self.err(
                    format!(
                        "no member `{}` on class `{}`",
                        arrow.name,
                        self.program.classes[static_ty.index()].name
                    ),
                    span,
                );
                return None;
            };
            match self.program.fields[fid.index()].kind {
                FieldKind::Child(c) => {
                    np.steps.push(PathStep {
                        field: fid,
                        cast_to: None,
                    });
                    static_ty = c;
                }
                FieldKind::Data(ty) => {
                    // `node->field` on a data field: treat like `.field`
                    // (C++ pointer-member access to data).
                    data = Some(DataAccess::OnTree {
                        path: np.clone(),
                        data: vec![fid],
                    });
                    data_ty = ty;
                    node = None;
                }
            }
        }

        // Apply `.` steps (data member accesses).
        for dot in &path.dots {
            match (&mut node, &mut data) {
                (Some(np), None) => {
                    let Some(fid) = self.program.field_on_class(static_ty, dot) else {
                        self.err(
                            format!(
                                "no data field `{dot}` on class `{}`",
                                self.program.classes[static_ty.index()].name
                            ),
                            span,
                        );
                        return None;
                    };
                    match self.program.fields[fid.index()].kind {
                        FieldKind::Data(ty) => {
                            data = Some(DataAccess::OnTree {
                                path: np.clone(),
                                data: vec![fid],
                            });
                            data_ty = ty;
                            node = None;
                        }
                        FieldKind::Child(_) => {
                            self.err(
                                format!("child field `{dot}` must be accessed with `->`"),
                                span,
                            );
                            return None;
                        }
                    }
                }
                (None, Some(access)) => {
                    let Ty::Struct(st) = data_ty else {
                        self.err(format!("`.{dot}` applied to a non-struct value"), span);
                        return None;
                    };
                    let Some(fid) = self.program.field_on_struct(st, dot) else {
                        self.err(
                            format!(
                                "no member `{dot}` on struct `{}`",
                                self.program.structs[st.index()].name
                            ),
                            span,
                        );
                        return None;
                    };
                    match access {
                        DataAccess::OnTree { data, .. } => data.push(fid),
                        DataAccess::Local { members, .. } => members.push(fid),
                        DataAccess::Global { members, .. } => members.push(fid),
                    }
                    data_ty = match self.program.fields[fid.index()].kind {
                        FieldKind::Data(t) => t,
                        FieldKind::Child(_) => unreachable!("struct members are data"),
                    };
                }
                _ => unreachable!("path resolution is node xor data"),
            }
        }

        Some(match (node, data) {
            (Some(np), None) => Resolved::Node(np, static_ty),
            (None, Some(da)) => Resolved::Data(da, data_ty),
            _ => unreachable!("path resolution is node xor data"),
        })
    }

    fn resolve_expr(&mut self, expr: &SurfaceExpr, cx: &mut BodyCx) -> Option<(Expr, Ty)> {
        match expr {
            SurfaceExpr::Literal(Literal::Int(v), _) => Some((Expr::Int(*v), Ty::Int)),
            SurfaceExpr::Literal(Literal::Float(v), _) => Some((Expr::Float(*v), Ty::Float)),
            SurfaceExpr::Literal(Literal::Bool(v), _) => Some((Expr::Bool(*v), Ty::Bool)),
            SurfaceExpr::Path(path) => {
                let resolved = self.resolve_path(path, cx)?;
                match resolved {
                    Resolved::Data(access, ty) => {
                        if matches!(ty, Ty::Struct(_)) {
                            self.err(
                                "struct values cannot be read whole; access a member",
                                path.span,
                            );
                        }
                        Some((Expr::Read(access), ty))
                    }
                    Resolved::Node(..) => {
                        self.err(
                            "tree nodes cannot be used as values in expressions",
                            path.span,
                        );
                        None
                    }
                }
            }
            SurfaceExpr::Unary { op, expr, span } => {
                let (e, ty) = self.resolve_expr(expr, cx)?;
                let rty = match op {
                    UnOp::Neg => {
                        if !matches!(ty, Ty::Int | Ty::Float) {
                            self.err("unary `-` needs a numeric operand", *span);
                        }
                        ty
                    }
                    UnOp::Not => {
                        if ty != Ty::Bool {
                            self.err("`!` needs a bool operand", *span);
                        }
                        Ty::Bool
                    }
                };
                Some((Expr::Unary(*op, Box::new(e)), rty))
            }
            SurfaceExpr::Binary { op, lhs, rhs, span } => {
                let (l, lt) = self.resolve_expr(lhs, cx)?;
                let (r, rt) = self.resolve_expr(rhs, cx)?;
                let numeric = |t: Ty| matches!(t, Ty::Int | Ty::Float);
                let rty = match op {
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool || rt != Ty::Bool {
                            self.err("logical operators need bool operands", *span);
                        }
                        Ty::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt && !(numeric(lt) && numeric(rt)) {
                            self.err("cannot compare values of different types", *span);
                        }
                        Ty::Bool
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if !numeric(lt) || !numeric(rt) {
                            self.err("comparison needs numeric operands", *span);
                        }
                        Ty::Bool
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        if !numeric(lt) || !numeric(rt) {
                            self.err("arithmetic needs numeric operands", *span);
                        }
                        if lt == Ty::Float || rt == Ty::Float {
                            Ty::Float
                        } else {
                            Ty::Int
                        }
                    }
                };
                Some((Expr::Binary(*op, Box::new(l), Box::new(r)), rty))
            }
            SurfaceExpr::Call { name, args, span } => {
                let Some(&pid) = self.pure_names.get(name) else {
                    self.err(format!("unknown pure function `{name}`"), *span);
                    return None;
                };
                let rargs = self.resolve_pure_args(pid, args, cx, *span)?;
                let ret = self.program.pures[pid.index()].return_type;
                Some((Expr::PureCall(pid, rargs), ret))
            }
        }
    }
}

impl BodyCx {
    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn lookup_alias(&self, name: &str) -> Option<(NodePath, ClassId)> {
        self.alias_scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).cloned())
    }
}
