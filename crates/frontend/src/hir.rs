//! Resolved program representation (high-level IR).
//!
//! Produced by [`crate::sema`] from the surface AST. All names are interned
//! into dense ids; node aliases are inlined into paths; virtual methods are
//! linked to the slot they override. This is the representation the fusion
//! compiler analyses and the interpreter's IR is lowered from.

use std::fmt;

use crate::ast::Literal;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a `usize` index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A tree class.
    ClassId
);
id_type!(
    /// A field: a child pointer, a data field, or a struct member.
    FieldId
);
id_type!(
    /// A traversal method definition (a concrete body in some class).
    MethodId
);
id_type!(
    /// A pure (opaque, read-only) function.
    PureId
);
id_type!(
    /// A global variable.
    GlobalId
);
id_type!(
    /// A local variable or parameter, scoped to one method body.
    LocalId
);
id_type!(
    /// A plain data struct.
    StructId
);

/// A value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    Bool,
    /// An inline struct value.
    Struct(StructId),
    /// A tree-node pointer (only for child fields and aliases).
    Node(ClassId),
}

impl Ty {
    /// Whether the type is a primitive scalar.
    pub fn is_primitive(self) -> bool {
        matches!(self, Ty::Int | Ty::Float | Ty::Bool)
    }
}

/// What a field is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// A child pointer with the given static type.
    Child(ClassId),
    /// A data field of the given type.
    Data(Ty),
}

/// Where a field is declared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldOwner {
    Class(ClassId),
    Struct(StructId),
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub owner: FieldOwner,
    pub kind: FieldKind,
    /// Default value for data fields (zero-like if absent).
    pub default: Option<Literal>,
}

/// A tree class.
#[derive(Clone, Debug)]
pub struct Class {
    pub name: String,
    /// Direct superclasses (usually zero or one).
    pub supers: Vec<ClassId>,
    /// Fields declared directly in this class (children and data).
    pub fields: Vec<FieldId>,
    /// Methods declared directly in this class.
    pub methods: Vec<MethodId>,
}

/// A plain data struct.
#[derive(Clone, Debug)]
pub struct Struct {
    pub name: String,
    /// Member fields (primitives).
    pub members: Vec<FieldId>,
}

/// A pure, opaque function: Grafter only knows it is read-only.
#[derive(Clone, Debug)]
pub struct PureFn {
    pub name: String,
    pub return_type: Ty,
    pub params: Vec<Ty>,
}

/// A global variable (an off-tree location).
#[derive(Clone, Debug)]
pub struct GlobalVar {
    pub name: String,
    pub ty: Ty,
    pub default: Option<Literal>,
}

/// A local variable or parameter of a method.
#[derive(Clone, Debug)]
pub struct LocalVar {
    pub name: String,
    pub ty: Ty,
    /// `true` for the first `n_params` locals.
    pub is_param: bool,
}

/// A traversal method.
#[derive(Clone, Debug)]
pub struct Method {
    pub name: String,
    /// The class the method is declared in.
    pub class: ClassId,
    pub is_virtual: bool,
    /// Locals; the first `n_params` are the parameters, in order.
    pub locals: Vec<LocalVar>,
    pub n_params: usize,
    pub body: Vec<Stmt>,
    /// The root-most declaration this method overrides (itself if none).
    /// Methods with equal `slot` belong to the same dynamic-dispatch family.
    pub slot: MethodId,
}

/// One `->child` navigation step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathStep {
    pub field: FieldId,
    /// A `static_cast` applied to the node reached by this step, changing
    /// its static type for subsequent member lookups.
    pub cast_to: Option<ClassId>,
}

/// A chain of child navigations starting at `this` (aliases are inlined).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodePath {
    /// A cast applied to `this` itself.
    pub base_cast: Option<ClassId>,
    pub steps: Vec<PathStep>,
}

impl NodePath {
    /// The path that is just `this`.
    pub fn this() -> Self {
        NodePath::default()
    }

    /// Whether the path refers to the traversed node itself.
    pub fn is_this(&self) -> bool {
        self.steps.is_empty()
    }

    /// The child fields traversed, ignoring casts.
    pub fn fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.steps.iter().map(|s| s.field)
    }
}

/// A resolved data access (read or write target).
#[derive(Clone, Debug, PartialEq)]
pub enum DataAccess {
    /// `(this)(->c)*(.s)+` — on-tree, parameterised by the traversed node.
    OnTree { path: NodePath, data: Vec<FieldId> },
    /// A local variable (or parameter), possibly a struct member chain.
    Local {
        local: LocalId,
        members: Vec<FieldId>,
    },
    /// A global variable, possibly a struct member chain.
    Global {
        global: GlobalId,
        members: Vec<FieldId>,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// C-like spelling, for the code emitter.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A resolved expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(i64),
    Float(f64),
    Bool(bool),
    Read(DataAccess),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    PureCall(PureId, Vec<Expr>),
}

/// A traversing call: `receiver->method(args)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TraverseStmt {
    pub receiver: NodePath,
    /// Dispatch slot (root-most declaration of the called virtual family).
    pub slot: MethodId,
    pub args: Vec<Expr>,
    /// Source span of the call site, so fusion verdicts can point back at
    /// the exact `receiver->method(...)` statement in diagnostics.
    pub span: crate::diag::Span,
}

/// A resolved statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    Traverse(TraverseStmt),
    Assign {
        target: DataAccess,
        value: Expr,
    },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    LocalDef {
        local: LocalId,
        init: Option<Expr>,
    },
    New {
        target: NodePath,
        class: ClassId,
    },
    Delete {
        target: NodePath,
    },
    Return,
    PureStmt {
        pure: PureId,
        args: Vec<Expr>,
    },
}

/// A fully resolved Grafter program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    pub classes: Vec<Class>,
    pub structs: Vec<Struct>,
    pub fields: Vec<Field>,
    pub methods: Vec<Method>,
    pub pures: Vec<PureFn>,
    pub globals: Vec<GlobalVar>,
}

impl Program {
    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Looks up a pure function by name.
    pub fn pure_by_name(&self, name: &str) -> Option<PureId> {
        self.pures
            .iter()
            .position(|p| p.name == name)
            .map(|i| PureId(i as u32))
    }

    /// All ancestors of a class (transitive supers), nearest first,
    /// excluding the class itself.
    pub fn ancestors(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = self.classes[class.index()].supers.clone();
        while let Some(c) = stack.pop() {
            if !out.contains(&c) {
                out.push(c);
                stack.extend(self.classes[c.index()].supers.iter().copied());
            }
        }
        out
    }

    /// Whether `sub` is `sup` or a transitive subtype of it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        sub == sup || self.ancestors(sub).contains(&sup)
    }

    /// Every concrete type a node statically typed `class` may have at
    /// runtime: the class itself plus all transitive subclasses, in id
    /// order. (All Grafter tree classes are instantiable.)
    pub fn concrete_subtypes(&self, class: ClassId) -> Vec<ClassId> {
        (0..self.classes.len() as u32)
            .map(ClassId)
            .filter(|&c| self.is_subtype(c, class))
            .collect()
    }

    /// Fields visible on a class: inherited ones first, then its own.
    pub fn all_fields(&self, class: ClassId) -> Vec<FieldId> {
        let mut out = Vec::new();
        let mut lineage = self.ancestors(class);
        lineage.reverse();
        lineage.push(class);
        for c in lineage {
            out.extend(self.classes[c.index()].fields.iter().copied());
        }
        out
    }

    /// Looks up a (possibly inherited) field by name on a class.
    ///
    /// Later (more derived) declarations shadow earlier ones.
    pub fn field_on_class(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.all_fields(class)
            .into_iter()
            .rev()
            .find(|&f| self.fields[f.index()].name == name)
    }

    /// Looks up a struct member field by name.
    pub fn field_on_struct(&self, st: StructId, name: &str) -> Option<FieldId> {
        self.structs[st.index()]
            .members
            .iter()
            .copied()
            .find(|&f| self.fields[f.index()].name == name)
    }

    /// Resolves a method *name* on a class, walking up the hierarchy.
    pub fn method_on_class(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut lineage = vec![class];
        lineage.extend(self.ancestors(class));
        for c in lineage {
            if let Some(&m) = self.classes[c.index()]
                .methods
                .iter()
                .find(|&&m| self.methods[m.index()].name == name)
            {
                return Some(m);
            }
        }
        None
    }

    /// Resolves a dispatch `slot` for a *concrete* receiver class: the
    /// most-derived override of the slot's method family.
    pub fn resolve_virtual(&self, class: ClassId, slot: MethodId) -> Option<MethodId> {
        let name = &self.methods[slot.index()].name;
        let m = self.method_on_class(class, name)?;
        // Guard against unrelated same-named methods in disjoint hierarchies.
        if self.methods[m.index()].slot == self.methods[slot.index()].slot {
            Some(m)
        } else {
            None
        }
    }

    /// The static type reached by following `path` from a node of type
    /// `start` (respecting casts), or `None` if a step does not exist.
    pub fn path_target_type(&self, start: ClassId, path: &NodePath) -> Option<ClassId> {
        let mut ty = path.base_cast.unwrap_or(start);
        for step in &path.steps {
            let field = &self.fields[step.field.index()];
            match field.kind {
                FieldKind::Child(c) => ty = step.cast_to.unwrap_or(c),
                FieldKind::Data(_) => return None,
            }
        }
        Some(ty)
    }

    /// Joins a set of classes to their least common ancestor, if any.
    ///
    /// Used by the code generator to type the traversed-node parameter of a
    /// fused function (the paper's "lattice for the types traversed").
    pub fn least_common_ancestor(&self, classes: &[ClassId]) -> Option<ClassId> {
        let mut candidates: Option<Vec<ClassId>> = None;
        for &c in classes {
            let mut up = vec![c];
            up.extend(self.ancestors(c));
            candidates = Some(match candidates {
                None => up,
                Some(prev) => prev.into_iter().filter(|x| up.contains(x)).collect(),
            });
        }
        candidates.and_then(|c| c.into_iter().next())
    }

    /// Total number of member symbols (fields) — the automata alphabet size.
    pub fn n_fields(&self) -> usize {
        self.fields.len()
    }
}
