//! Surface abstract syntax tree produced by the parser.
//!
//! Names are unresolved strings; [`crate::sema`] resolves them into the
//! [`crate::hir`] representation. The shapes mirror the paper's Fig. 3
//! grammar.

use crate::diag::Span;

/// A whole source file.
#[derive(Clone, Debug, Default)]
pub struct SurfaceProgram {
    pub classes: Vec<TreeClass>,
    pub structs: Vec<StructDef>,
    pub pures: Vec<PureDecl>,
    pub globals: Vec<GlobalDef>,
}

/// `tree class Name : Super { members }`.
#[derive(Clone, Debug)]
pub struct TreeClass {
    pub name: String,
    pub supers: Vec<String>,
    pub members: Vec<Member>,
    pub span: Span,
}

/// A member of a tree class.
#[derive(Clone, Debug)]
pub enum Member {
    /// `child T* name;`
    Child {
        class: String,
        name: String,
        span: Span,
    },
    /// `ty name = literal;`
    Data {
        ty: TypeName,
        name: String,
        default: Option<Literal>,
        span: Span,
    },
    /// `[virtual] traversal name(params) { body }`
    Traversal(TraversalDef),
}

/// A traversal method definition.
#[derive(Clone, Debug)]
pub struct TraversalDef {
    pub name: String,
    pub is_virtual: bool,
    pub params: Vec<(TypeName, String)>,
    pub body: Vec<SurfaceStmt>,
    pub span: Span,
}

/// `struct Name { ty member; ... }`.
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub members: Vec<(TypeName, String)>,
    pub span: Span,
}

/// `pure ty name(params);` — body is opaque (registered natively at runtime).
#[derive(Clone, Debug)]
pub struct PureDecl {
    pub name: String,
    pub return_type: TypeName,
    pub params: Vec<(TypeName, String)>,
    pub span: Span,
}

/// `global ty name = literal;`.
#[derive(Clone, Debug)]
pub struct GlobalDef {
    pub ty: TypeName,
    pub name: String,
    pub default: Option<Literal>,
    pub span: Span,
}

/// An unresolved type name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeName {
    Int,
    Float,
    Bool,
    /// A struct (or, where allowed, tree class) name.
    Named(String),
}

/// A literal constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Bool(bool),
}

/// A statement as parsed.
#[derive(Clone, Debug)]
pub enum SurfaceStmt {
    /// `path->method(args);` — a traversing call.
    Traverse {
        receiver: SurfacePath,
        method: String,
        args: Vec<SurfaceExpr>,
        span: Span,
    },
    /// `access = expr;`
    Assign {
        target: SurfacePath,
        value: SurfaceExpr,
        span: Span,
    },
    /// `if (cond) { ... } else { ... }`
    If {
        cond: SurfaceExpr,
        then_branch: Vec<SurfaceStmt>,
        else_branch: Vec<SurfaceStmt>,
        span: Span,
    },
    /// `ty name = expr;` — a primitive/struct local definition.
    LocalDef {
        ty: TypeName,
        name: String,
        init: Option<SurfaceExpr>,
        span: Span,
    },
    /// `T* const name = path;` — a tree-node alias.
    AliasDef {
        class: String,
        name: String,
        path: SurfacePath,
        span: Span,
    },
    /// `path = new T();`
    New {
        target: SurfacePath,
        class: String,
        span: Span,
    },
    /// `delete path;`
    Delete { target: SurfacePath, span: Span },
    /// `return;`
    Return { span: Span },
    /// `pureFn(args);`
    PureCall {
        name: String,
        args: Vec<SurfaceExpr>,
        span: Span,
    },
}

impl SurfaceStmt {
    /// Source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            SurfaceStmt::Traverse { span, .. }
            | SurfaceStmt::Assign { span, .. }
            | SurfaceStmt::If { span, .. }
            | SurfaceStmt::LocalDef { span, .. }
            | SurfaceStmt::AliasDef { span, .. }
            | SurfaceStmt::New { span, .. }
            | SurfaceStmt::Delete { span, .. }
            | SurfaceStmt::Return { span }
            | SurfaceStmt::PureCall { span, .. } => *span,
        }
    }
}

/// The base of a surface path.
#[derive(Clone, Debug)]
pub enum PathBase {
    /// `this`
    This,
    /// A plain identifier: alias, local, parameter or global (resolved later).
    Ident(String),
    /// `static_cast<T*>(path)`
    Cast {
        class: String,
        inner: Box<SurfacePath>,
    },
}

/// A chain of `->child` and `.member` accesses from a base.
///
/// The grammar only permits all `->` steps (tree navigation) followed by all
/// `.` steps (data member accesses); the parser enforces this shape.
#[derive(Clone, Debug)]
pub struct SurfacePath {
    pub base: PathBase,
    /// `->name` steps (child-pointer dereferences, or a cast boundary).
    pub arrows: Vec<ArrowStep>,
    /// `.name` steps (data member accesses).
    pub dots: Vec<String>,
    pub span: Span,
}

/// One `->name` step, possibly followed by a cast of the intermediate node.
#[derive(Clone, Debug)]
pub struct ArrowStep {
    pub name: String,
}

/// An expression as parsed.
#[derive(Clone, Debug)]
pub enum SurfaceExpr {
    Literal(Literal, Span),
    /// A path read (data access); also covers bare locals/params/globals.
    Path(SurfacePath),
    Unary {
        op: crate::hir::UnOp,
        expr: Box<SurfaceExpr>,
        span: Span,
    },
    Binary {
        op: crate::hir::BinOp,
        lhs: Box<SurfaceExpr>,
        rhs: Box<SurfaceExpr>,
        span: Span,
    },
    /// `pureFn(args)`
    Call {
        name: String,
        args: Vec<SurfaceExpr>,
        span: Span,
    },
}

impl SurfaceExpr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            SurfaceExpr::Literal(_, span) => *span,
            SurfaceExpr::Path(p) => p.span,
            SurfaceExpr::Unary { span, .. }
            | SurfaceExpr::Binary { span, .. }
            | SurfaceExpr::Call { span, .. } => *span,
        }
    }
}
