//! Tokenizer for the Grafter traversal language.

use crate::diag::{Diag, DiagnosticBag, Span, Stage};

/// The kind of a lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),

    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Dot,
    Arrow,
    Star,
    Assign,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Plus,
    Minus,
    Slash,
    Percent,
    AndAnd,
    OrOr,
    Bang,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("`{name}`"),
            TokenKind::Int(v) => format!("`{v}`"),
            TokenKind::Float(v) => format!("`{v}`"),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a diagnostic for unterminated block comments, malformed numbers
/// and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, DiagnosticBag> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut errors = DiagnosticBag::new();
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut closed = false;
                let mut j = i + 2;
                while j + 1 < bytes.len() {
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        closed = true;
                        j += 2;
                        break;
                    }
                    j += 1;
                }
                if !closed {
                    errors.push(Diag::error(
                        Stage::Lex,
                        "unterminated block comment",
                        Span::new(start, bytes.len()),
                    ));
                    break;
                }
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && matches!(bytes[j] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    j += 1;
                }
                let name = &src[i..j];
                tokens.push(Token {
                    kind: TokenKind::Ident(name.to_string()),
                    span: Span::new(i, j),
                });
                i = j;
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let span = Span::new(i, j);
                if is_float {
                    match text.parse::<f64>() {
                        Ok(v) => tokens.push(Token {
                            kind: TokenKind::Float(v),
                            span,
                        }),
                        Err(_) => errors.push(Diag::error(
                            Stage::Lex,
                            format!("invalid float literal `{text}`"),
                            span,
                        )),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => tokens.push(Token {
                            kind: TokenKind::Int(v),
                            span,
                        }),
                        Err(_) => errors.push(Diag::error(
                            Stage::Lex,
                            format!("integer literal `{text}` out of range"),
                            span,
                        )),
                    }
                }
                i = j;
            }
            _ => {
                // Multi-byte UTF-8 is never part of a valid token; slice
                // defensively so bad input yields a diagnostic, not a panic.
                let two = src.get(i..i + 2).unwrap_or("");
                let (kind, len) = match two {
                    "->" => (Some(TokenKind::Arrow), 2),
                    "==" => (Some(TokenKind::EqEq), 2),
                    "!=" => (Some(TokenKind::NotEq), 2),
                    "<=" => (Some(TokenKind::Le), 2),
                    ">=" => (Some(TokenKind::Ge), 2),
                    "&&" => (Some(TokenKind::AndAnd), 2),
                    "||" => (Some(TokenKind::OrOr), 2),
                    _ => {
                        let kind = match c {
                            '{' => Some(TokenKind::LBrace),
                            '}' => Some(TokenKind::RBrace),
                            '(' => Some(TokenKind::LParen),
                            ')' => Some(TokenKind::RParen),
                            ';' => Some(TokenKind::Semi),
                            ',' => Some(TokenKind::Comma),
                            ':' => Some(TokenKind::Colon),
                            '.' => Some(TokenKind::Dot),
                            '*' => Some(TokenKind::Star),
                            '=' => Some(TokenKind::Assign),
                            '<' => Some(TokenKind::Lt),
                            '>' => Some(TokenKind::Gt),
                            '+' => Some(TokenKind::Plus),
                            '-' => Some(TokenKind::Minus),
                            '/' => Some(TokenKind::Slash),
                            '%' => Some(TokenKind::Percent),
                            '!' => Some(TokenKind::Bang),
                            _ => None,
                        };
                        (kind, 1)
                    }
                };
                match kind {
                    Some(kind) => {
                        tokens.push(Token {
                            kind,
                            span: Span::new(i, i + len),
                        });
                        i += len;
                    }
                    None => {
                        let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
                        let width = ch.len_utf8();
                        errors.push(Diag::error(
                            Stage::Lex,
                            format!("unexpected character `{ch}`"),
                            Span::new(i, i + width),
                        ));
                        i += width;
                    }
                }
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    if errors.is_empty() {
        Ok(tokens)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        let ks = kinds("this->next.x = 1;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("this".into()),
                TokenKind::Arrow,
                TokenKind::Ident("next".into()),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_scientific() {
        assert_eq!(
            kinds("1.5 2e3 7"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Float(2e3),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn distinguishes_member_dot_from_float_dot() {
        // `x.5` is not a float; `.` only glues digits on both sides... the
        // lexer treats `1.x` as int, dot, ident.
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // line\n /* block \n still */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_unterminated_comment() {
        let errs = lex("a /* nope").unwrap_err();
        assert!(errs[0].message.contains("unterminated"));
    }

    #[test]
    fn reports_unexpected_character() {
        let errs = lex("a # b").unwrap_err();
        assert!(errs[0].message.contains("unexpected character"));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == != && || ->"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
