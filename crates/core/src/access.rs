//! Access-path extraction and access automata (paper §3.2).
//!
//! Every top-level statement of a traversal gets an [`AccessSummary`]: six
//! automata over [`PathSym`] describing the tree and global locations the
//! statement may read or write (relative to the node the enclosing function
//! is invoked on), plus flat sets for locals and a may-return flag.
//!
//! Simple statements produce unions of primitive path automata. Traversing
//! calls are summarised by Algorithm 1: a labelled call graph over all
//! *concrete* functions transitively reachable under dynamic dispatch, with
//! one automaton state per function and a back edge whenever a function is
//! revisited (so unbounded recursion appears as loops).

use std::collections::HashMap;

use grafter_automata::{Nfa, PathSym, StateId};
use grafter_frontend::{
    ClassId, DataAccess, Expr, FieldId, GlobalId, LocalId, MethodId, NodePath, Program, Stmt,
    TraverseStmt,
};

/// The automata alphabet symbol of a field.
pub fn field_sym(field: FieldId) -> PathSym {
    PathSym::Field(field.0)
}

/// The automata alphabet symbol of a global variable.
///
/// Globals live in a disjoint symbol range above all fields.
pub fn global_sym(program: &Program, global: GlobalId) -> PathSym {
    PathSym::Field(program.n_fields() as u32 + global.0)
}

/// Summary of the locations one top-level statement may touch.
#[derive(Clone, Debug)]
pub struct AccessSummary {
    /// On-tree reads, rooted at the traversed-node transition.
    pub tree_reads: Nfa<PathSym>,
    /// On-tree writes.
    pub tree_writes: Nfa<PathSym>,
    /// Off-tree (global) reads.
    pub global_reads: Nfa<PathSym>,
    /// Off-tree (global) writes.
    pub global_writes: Nfa<PathSym>,
    /// Locals read (conflated per variable — sound, locals are scalar or
    /// small structs).
    pub local_reads: Vec<LocalId>,
    /// Locals written.
    pub local_writes: Vec<LocalId>,
    /// Whether executing the statement may terminate the traversal.
    pub may_return: bool,
}

impl AccessSummary {
    fn empty() -> Self {
        AccessSummary {
            tree_reads: Nfa::new(),
            tree_writes: Nfa::new(),
            global_reads: Nfa::new(),
            global_writes: Nfa::new(),
            local_reads: Vec::new(),
            local_writes: Vec::new(),
            may_return: false,
        }
    }

    /// Whether this statement may conflict with `other` when both execute
    /// with the same `this` binding.
    ///
    /// `same_frame` enables local-variable conflicts; it is true only for
    /// statements originating from the same traversal copy in a merged
    /// function (inlined copies have disjoint frames).
    pub fn conflicts_with(&self, other: &AccessSummary, same_frame: bool) -> bool {
        if self.tree_writes.intersects(&other.tree_reads)
            || self.tree_writes.intersects(&other.tree_writes)
            || self.tree_reads.intersects(&other.tree_writes)
        {
            return true;
        }
        if self.global_writes.intersects(&other.global_reads)
            || self.global_writes.intersects(&other.global_writes)
            || self.global_reads.intersects(&other.global_writes)
        {
            return true;
        }
        if same_frame {
            let hit = |a: &[LocalId], b: &[LocalId]| a.iter().any(|x| b.contains(x));
            if hit(&self.local_writes, &other.local_reads)
                || hit(&self.local_writes, &other.local_writes)
                || hit(&self.local_reads, &other.local_writes)
            {
                return true;
            }
        }
        false
    }
}

/// Cached per-statement access summaries for a whole program.
///
/// Call summaries depend on the *static receiver context* (the class whose
/// method contains the call), so the cache key is `(method, stmt index)`.
pub struct ProgramAccesses<'p> {
    program: &'p Program,
    cache: HashMap<(MethodId, usize), AccessSummary>,
}

impl<'p> ProgramAccesses<'p> {
    /// Creates an empty cache over `program`.
    pub fn new(program: &'p Program) -> Self {
        ProgramAccesses {
            program,
            cache: HashMap::new(),
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Summary for top-level statement `index` of `method`.
    pub fn summary(&mut self, method: MethodId, index: usize) -> &AccessSummary {
        if !self.cache.contains_key(&(method, index)) {
            let stmt = self.program.methods[method.index()].body[index].clone();
            let class = self.program.methods[method.index()].class;
            let summary = self.stmt_summary(&stmt, class);
            self.cache.insert((method, index), summary);
        }
        &self.cache[&(method, index)]
    }

    /// Builds the summary of one top-level statement in the context of a
    /// method of `class`.
    pub fn stmt_summary(&self, stmt: &Stmt, class: ClassId) -> AccessSummary {
        let mut s = AccessSummary::empty();
        self.collect_stmt(stmt, class, &mut s);
        s
    }

    fn collect_stmt(&self, stmt: &Stmt, class: ClassId, s: &mut AccessSummary) {
        match stmt {
            Stmt::Traverse(call) => self.collect_call(call, class, s),
            Stmt::Assign { target, value } => {
                self.collect_expr(value, s);
                self.collect_access(target, true, s);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.collect_expr(cond, s);
                for st in then_branch.iter().chain(else_branch) {
                    self.collect_stmt(st, class, s);
                }
            }
            Stmt::LocalDef { local, init } => {
                if let Some(init) = init {
                    self.collect_expr(init, s);
                }
                push_unique(&mut s.local_writes, *local);
            }
            Stmt::New { target, class: _ } | Stmt::Delete { target } => {
                // A topology mutation writes the node location and any
                // possible sub-field of the (old or new) subtree, and reads
                // the path prefix leading there.
                let path = on_tree_syms(target, &[]);
                let mut w = Nfa::from_path(&path, false);
                let last = w.len() - 1;
                w.add_transition(last, PathSym::Any, last);
                // Every state on the loop accepts: the node and all
                // descendants are clobbered.
                s.tree_writes.union_in_place(&w);
                if path.len() > 1 {
                    s.tree_reads
                        .union_in_place(&Nfa::from_path(&path[..path.len() - 1], true));
                }
            }
            Stmt::Return => s.may_return = true,
            Stmt::PureStmt { args, .. } => {
                for a in args {
                    self.collect_expr(a, s);
                }
            }
        }
    }

    fn collect_expr(&self, expr: &Expr, s: &mut AccessSummary) {
        match expr {
            Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) => {}
            Expr::Read(access) => self.collect_access(access, false, s),
            Expr::Unary(_, e) => self.collect_expr(e, s),
            Expr::Binary(_, l, r) => {
                self.collect_expr(l, s);
                self.collect_expr(r, s);
            }
            Expr::PureCall(_, args) => {
                for a in args {
                    self.collect_expr(a, s);
                }
            }
        }
    }

    fn collect_access(&self, access: &DataAccess, is_write: bool, s: &mut AccessSummary) {
        match access {
            DataAccess::OnTree { path, data } => {
                let syms = on_tree_syms(path, data);
                if is_write {
                    s.tree_writes.union_in_place(&Nfa::from_path(&syms, false));
                    if syms.len() > 1 {
                        s.tree_reads
                            .union_in_place(&Nfa::from_path(&syms[..syms.len() - 1], true));
                    }
                } else {
                    s.tree_reads.union_in_place(&Nfa::from_path(&syms, true));
                }
            }
            DataAccess::Local { local, .. } => {
                if is_write {
                    push_unique(&mut s.local_writes, *local);
                } else {
                    push_unique(&mut s.local_reads, *local);
                }
            }
            DataAccess::Global { global, members } => {
                let mut syms = vec![global_sym(self.program, *global)];
                syms.extend(members.iter().map(|&f| field_sym(f)));
                // An off-tree access ending at a non-primitive (struct)
                // value touches any member within it; `members` resolves to
                // a primitive here, so no wildcard suffix is needed unless
                // the access names the struct itself (writes to whole
                // struct are rejected by sema).
                if is_write {
                    s.global_writes
                        .union_in_place(&Nfa::from_path(&syms, false));
                    if syms.len() > 1 {
                        s.global_reads
                            .union_in_place(&Nfa::from_path(&syms[..syms.len() - 1], true));
                    }
                } else {
                    s.global_reads.union_in_place(&Nfa::from_path(&syms, true));
                }
            }
        }
    }

    // ---- Algorithm 1: call automata ---------------------------------------

    /// Summarises a traversing call in the context of a method of `class`.
    ///
    /// Builds the labelled call graph over all concrete functions reachable
    /// from the call (under dynamic dispatch), attaches every reachable
    /// statement's automata at the state of its function, and prefixes the
    /// receiver path. Argument expressions are evaluated in the caller's
    /// frame and contribute caller-level accesses.
    fn collect_call(&self, call: &TraverseStmt, class: ClassId, s: &mut AccessSummary) {
        for a in &call.args {
            self.collect_expr(a, s);
        }

        let mut builder = CallAutomataBuilder {
            program: self.program,
            accesses: self,
            reads: Nfa::new(),
            writes: Nfa::new(),
            global_reads: Nfa::new(),
            global_writes: Nfa::new(),
            fn_state: HashMap::new(),
        };

        // Root transition, then the receiver path.
        let r0 = builder.reads.add_state();
        builder.reads.add_transition(0, PathSym::Root, r0);
        let w0 = builder.writes.add_state();
        builder.writes.add_transition(0, PathSym::Root, w0);
        let mut state = (r0, w0);
        for step in &call.receiver.steps {
            let rn = builder.reads.add_state();
            builder
                .reads
                .add_transition(state.0, field_sym(step.field), rn);
            // Dispatching through a child pointer reads that pointer.
            builder.reads.set_accepting(rn, true);
            let wn = builder.writes.add_state();
            builder
                .writes
                .add_transition(state.1, field_sym(step.field), wn);
            state = (rn, wn);
        }

        let Some(static_ty) = self.program.path_target_type(class, &call.receiver) else {
            return;
        };
        builder.append_dispatch(call.slot, static_ty, state);

        s.tree_reads.union_in_place(&builder.reads);
        s.tree_writes.union_in_place(&builder.writes);
        s.global_reads.union_in_place(&builder.global_reads);
        s.global_writes.union_in_place(&builder.global_writes);
    }
}

struct CallAutomataBuilder<'a, 'p> {
    program: &'p Program,
    accesses: &'a ProgramAccesses<'p>,
    reads: Nfa<PathSym>,
    writes: Nfa<PathSym>,
    global_reads: Nfa<PathSym>,
    global_writes: Nfa<PathSym>,
    /// Memo: one (reads, writes) state pair per concrete function — the
    /// paper's `FunctionToState`, guaranteeing termination and representing
    /// recursion as automaton loops.
    fn_state: HashMap<MethodId, (StateId, StateId)>,
}

impl CallAutomataBuilder<'_, '_> {
    /// Expands a virtual dispatch of `slot` on a node whose static type is
    /// `static_ty`, linking from `from` (a (reads, writes) state pair).
    fn append_dispatch(&mut self, slot: MethodId, static_ty: ClassId, from: (StateId, StateId)) {
        for concrete in self.program.concrete_subtypes(static_ty) {
            let Some(target) = self.program.resolve_virtual(concrete, slot) else {
                continue;
            };
            let state = self.append_function(target);
            // Dispatch consumes no member access: link with epsilon.
            self.reads.add_epsilon(from.0, state.0);
            self.writes.add_epsilon(from.1, state.1);
        }
    }

    /// Returns the state pair of a concrete function, creating and filling
    /// it on first encounter.
    fn append_function(&mut self, method: MethodId) -> (StateId, StateId) {
        if let Some(&st) = self.fn_state.get(&method) {
            return st;
        }
        let st = (self.reads.add_state(), self.writes.add_state());
        self.fn_state.insert(method, st);
        let body = self.program.methods[method.index()].body.clone();
        let class = self.program.methods[method.index()].class;
        for stmt in &body {
            self.append_stmt(stmt, class, st);
        }
        st
    }

    fn append_stmt(&mut self, stmt: &Stmt, class: ClassId, at: (StateId, StateId)) {
        if let Stmt::Traverse(call) = stmt {
            // Argument accesses happen in the callee's caller frame (this
            // function); attach their tree parts at `at`.
            let mut args = AccessSummary::empty();
            for a in &call.args {
                self.accesses.collect_expr(a, &mut args);
            }
            attach_at(&mut self.reads, &args.tree_reads, at.0);
            attach_at(&mut self.writes, &args.tree_writes, at.1);
            self.global_reads.union_in_place(&args.global_reads);
            self.global_writes.union_in_place(&args.global_writes);

            // Walk the receiver path, then dispatch.
            let mut state = at;
            for step in &call.receiver.steps {
                let rn = self.reads.add_state();
                self.reads
                    .add_transition(state.0, field_sym(step.field), rn);
                self.reads.set_accepting(rn, true);
                let wn = self.writes.add_state();
                self.writes
                    .add_transition(state.1, field_sym(step.field), wn);
                state = (rn, wn);
            }
            if let Some(static_ty) = self.program.path_target_type(class, &call.receiver) {
                self.append_dispatch(call.slot, static_ty, state);
            }
        } else {
            let summary = self.accesses.stmt_summary(stmt, class);
            attach_at(&mut self.reads, &summary.tree_reads, at.0);
            attach_at(&mut self.writes, &summary.tree_writes, at.1);
            self.global_reads.union_in_place(&summary.global_reads);
            self.global_writes.union_in_place(&summary.global_writes);
        }
    }
}

/// Attaches a statement-level on-tree automaton (whose paths begin with the
/// traversed-node transition) into `target`, rebasing it at `state`: the
/// `Root` edge is replaced by an epsilon from `state`, so the attached
/// accesses become relative to the function the statement belongs to.
fn attach_at(target: &mut Nfa<PathSym>, stmt_automaton: &Nfa<PathSym>, state: StateId) {
    if stmt_automaton.is_empty() {
        return;
    }
    let offset = target.len();
    // Absorb by re-adding states and transitions with an offset.
    for st in 0..stmt_automaton.len() {
        let ns = target.add_state();
        debug_assert_eq!(ns, offset + st);
        target.set_accepting(ns, stmt_automaton.is_accepting(st));
    }
    for st in 0..stmt_automaton.len() {
        for (sym, to) in stmt_automaton.transitions_from(st) {
            if *sym == PathSym::Root {
                // The traversed-node transition marks the start of an
                // on-tree path; in a statement automaton it can only occur
                // at a path head. Entering via `state` replaces it.
                target.add_epsilon(state, to + offset);
            } else {
                target.add_transition(st + offset, *sym, to + offset);
            }
        }
        for to in stmt_automaton.epsilons_from(st) {
            target.add_epsilon(st + offset, to + offset);
        }
    }
}

/// The symbol path of an on-tree access: `Root`, the child steps, then the
/// data member steps.
fn on_tree_syms(path: &NodePath, data: &[FieldId]) -> Vec<PathSym> {
    let mut syms = vec![PathSym::Root];
    syms.extend(path.fields().map(field_sym));
    syms.extend(data.iter().map(|&f| field_sym(f)));
    syms
}

fn push_unique(v: &mut Vec<LocalId>, x: LocalId) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::compile;

    fn fig2() -> Program {
        compile(
            r#"
            global int CHAR_WIDTH = 8;
            struct String { int Length; }
            struct BorderInfo { int Size; }
            tree class Element {
                child Element* Next;
                int Height = 0; int Width = 0;
                int MaxHeight = 0; int TotalWidth = 0;
                virtual traversal computeWidth() {}
                virtual traversal computeHeight() {}
            }
            tree class TextBox : public Element {
                String Text;
                traversal computeWidth() {
                    Next->computeWidth();
                    Width = Text.Length;
                    TotalWidth = Next.Width + Width;
                }
                traversal computeHeight() {
                    Next->computeHeight();
                    Height = Text.Length * (Width / CHAR_WIDTH) + 1;
                    MaxHeight = Height;
                    if (Next.Height > Height) { MaxHeight = Next.Height; }
                }
            }
            tree class Group : public Element {
                child Element* Content;
                BorderInfo Border;
                traversal computeWidth() {
                    Content->computeWidth();
                    Next->computeWidth();
                    Width = Content.Width + Border.Size * 2;
                    TotalWidth = Width + Next.Width;
                }
                traversal computeHeight() {
                    Content->computeHeight();
                    Next->computeHeight();
                    Height = Content.MaxHeight + Border.Size * 2;
                    MaxHeight = Height;
                    if (Next.Height > Height) { MaxHeight = Next.Height; }
                }
            }
            tree class End : public Element { }
            "#,
        )
        .expect("fig2 compiles")
    }

    #[test]
    fn simple_statement_reads_and_writes() {
        let p = fig2();
        let mut acc = ProgramAccesses::new(&p);
        let tb = p.class_by_name("TextBox").unwrap();
        let m = p.method_on_class(tb, "computeWidth").unwrap();
        // statement 1: `Width = Text.Length;`
        let s = acc.summary(m, 1).clone();
        let width = p.field_on_class(tb, "Width").unwrap();
        let text = p.field_on_class(tb, "Text").unwrap();
        let length = p
            .field_on_struct(p.struct_by_name("String").unwrap(), "Length")
            .unwrap();
        assert!(s.tree_writes.accepts(&[PathSym::Root, field_sym(width)]));
        assert!(s
            .tree_reads
            .accepts(&[PathSym::Root, field_sym(text), field_sym(length)]));
        assert!(!s.tree_reads.accepts(&[PathSym::Root, field_sym(width)]));
        assert!(!s.may_return);
    }

    #[test]
    fn global_reads_are_off_tree() {
        let p = fig2();
        let mut acc = ProgramAccesses::new(&p);
        let tb = p.class_by_name("TextBox").unwrap();
        let m = p.method_on_class(tb, "computeHeight").unwrap();
        // statement 1 reads CHAR_WIDTH.
        let s = acc.summary(m, 1).clone();
        let g = p.global_by_name("CHAR_WIDTH").unwrap();
        assert!(s.global_reads.accepts(&[global_sym(&p, g)]));
        assert!(s.global_writes.is_empty_language());
    }

    #[test]
    fn call_automata_cover_recursive_accesses() {
        let p = fig2();
        let mut acc = ProgramAccesses::new(&p);
        let group = p.class_by_name("Group").unwrap();
        let m = p.method_on_class(group, "computeWidth").unwrap();
        // statement 0: `Content->computeWidth();`
        let s = acc.summary(m, 0).clone();
        let content = p.field_on_class(group, "Content").unwrap();
        let next = p.field_on_class(group, "Next").unwrap();
        let width = p.field_on_class(group, "Width").unwrap();

        // The call writes Content.Width, Content.Next.Width (TextBox body
        // reached through dispatch), and arbitrarily deep Next chains.
        let w = |path: &[PathSym]| s.tree_writes.accepts(path);
        assert!(w(&[PathSym::Root, field_sym(content), field_sym(width)]));
        assert!(w(&[
            PathSym::Root,
            field_sym(content),
            field_sym(next),
            field_sym(width)
        ]));
        assert!(w(&[
            PathSym::Root,
            field_sym(content),
            field_sym(next),
            field_sym(next),
            field_sym(width)
        ]));
        // Nested Group content too (mutual recursion through the hierarchy).
        assert!(w(&[
            PathSym::Root,
            field_sym(content),
            field_sym(content),
            field_sym(width)
        ]));
        // But never writes anything outside the Content subtree.
        assert!(!w(&[PathSym::Root, field_sym(width)]));
        assert!(!w(&[PathSym::Root, field_sym(next), field_sym(width)]));
    }

    #[test]
    fn call_automata_include_global_reads_of_callees() {
        let p = fig2();
        let mut acc = ProgramAccesses::new(&p);
        let group = p.class_by_name("Group").unwrap();
        let m = p.method_on_class(group, "computeHeight").unwrap();
        // statement 0: `Content->computeHeight();` — TextBox::computeHeight
        // reads CHAR_WIDTH, so the call summary must include it.
        let s = acc.summary(m, 0).clone();
        let g = p.global_by_name("CHAR_WIDTH").unwrap();
        assert!(s.global_reads.accepts(&[global_sym(&p, g)]));
    }

    #[test]
    fn dependent_statements_conflict() {
        let p = fig2();
        let mut acc = ProgramAccesses::new(&p);
        let tb = p.class_by_name("TextBox").unwrap();
        let m = p.method_on_class(tb, "computeWidth").unwrap();
        let s1 = acc.summary(m, 1).clone(); // Width = Text.Length
        let s2 = acc.summary(m, 2).clone(); // TotalWidth = Next.Width + Width
        assert!(s1.conflicts_with(&s2, true), "s2 reads Width written by s1");
        assert!(s2.conflicts_with(&s1, true), "conflict is symmetric");
    }

    #[test]
    fn independent_traversals_do_not_conflict() {
        // incA touches only `a`, incB only `b` — no conflicts anywhere.
        let p = compile(
            r#"
            tree class Node {
                child Node* next;
                int a = 0; int b = 0;
                virtual traversal incA() {}
                virtual traversal incB() {}
            }
            tree class Cons : Node {
                traversal incA() { a = a + 1; this->next->incA(); }
                traversal incB() { b = b + 1; this->next->incB(); }
            }
            tree class End : Node { }
            "#,
        )
        .unwrap();
        let mut acc = ProgramAccesses::new(&p);
        let cons = p.class_by_name("Cons").unwrap();
        let ma = p.method_on_class(cons, "incA").unwrap();
        let mb = p.method_on_class(cons, "incB").unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let sa = acc.summary(ma, i).clone();
                let sb = acc.summary(mb, j).clone();
                assert!(
                    !sa.conflicts_with(&sb, false),
                    "incA[{i}] vs incB[{j}] must be independent"
                );
            }
        }
    }

    #[test]
    fn topology_mutation_conflicts_with_subtree_access() {
        let p = compile(
            r#"
            tree class E { virtual traversal f() {} virtual traversal g() {} }
            tree class N : E {
                child E* kid;
                int x = 0;
                traversal f() { delete this->kid; this->kid = new E(); }
                traversal g() { x = static_cast<N*>(this->kid).x; }
            }
            "#,
        )
        .unwrap();
        let mut acc = ProgramAccesses::new(&p);
        let n = p.class_by_name("N").unwrap();
        let mf = p.method_on_class(n, "f").unwrap();
        let mg = p.method_on_class(n, "g").unwrap();
        let del = acc.summary(mf, 0).clone();
        let read = acc.summary(mg, 0).clone();
        assert!(del.conflicts_with(&read, false));
        let new = acc.summary(mf, 1).clone();
        assert!(new.conflicts_with(&read, false));
    }

    #[test]
    fn return_sets_may_return() {
        let p = compile(
            r#"
            tree class A {
                bool stop = false;
                int x = 0;
                traversal f() {
                    if (stop) { return; }
                    x = 1;
                }
            }
            "#,
        )
        .unwrap();
        let mut acc = ProgramAccesses::new(&p);
        let a = p.class_by_name("A").unwrap();
        let m = p.method_on_class(a, "f").unwrap();
        assert!(acc.summary(m, 0).may_return);
        assert!(!acc.summary(m, 1).may_return);
    }
}
