//! Grafter: sound, fine-grained traversal fusion for heterogeneous trees.
//!
//! This crate reproduces the compiler described in Sakka, Sundararajah,
//! Newton and Kulkarni, *"Sound, Fine-Grained Traversal Fusion for
//! Heterogeneous Trees"*, PLDI 2019. Given a program in the Grafter
//! traversal language (see [`grafter_frontend`]) and a sequence of traversal
//! invocations on a tree root, it produces a set of mutually recursive
//! *fused* functions that perform the same work in fewer passes over the
//! tree:
//!
//! 1. [`access`] summarises every statement's reads and writes as finite
//!    automata over access paths (paper §3.2), including the call automata
//!    of Algorithm 1 that capture all accesses transitively reachable from a
//!    traversing call under dynamic dispatch and mutual recursion;
//! 2. [`depgraph`] intersects those automata to build the dependence graph
//!    of a candidate fused function;
//! 3. [`fusion`] runs the fusion algorithm (outline → inline → reorder →
//!    group → recurse) with *type-specific partial fusion*: every sequence
//!    of concrete functions fuses independently, memoised so recursive
//!    encounters of a known sequence become recursive calls (§3.3), bounded
//!    by the cutoffs of §4;
//! 4. [`cpp`] renders the result as C++-like source (the paper's Fig. 6),
//!    while `grafter-runtime` executes it directly.
//!
//! # Example
//!
//! ```
//! use grafter::{FuseOptions, fuse};
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0; int b = 0;
//!         virtual traversal incA() {}
//!         virtual traversal incB() {}
//!     }
//!     tree class Cons : Node {
//!         traversal incA() { a = a + 1; this->next->incA(); }
//!         traversal incB() { b = b + 1; this->next->incB(); }
//!     }
//!     tree class End : Node { }
//! "#;
//! let program = grafter_frontend::compile(src).unwrap();
//! let fused = fuse(&program, "Node", &["incA", "incB"], &FuseOptions::default()).unwrap();
//! // The two independent traversals fuse into a single pass:
//! assert!(fused.fully_fused());
//! ```

pub mod access;
pub mod cpp;
pub mod depgraph;
pub mod error;
pub mod explain;
pub mod fusion;
pub mod pipeline;

pub use access::{AccessSummary, ProgramAccesses};
pub use depgraph::{
    CallPairVerdict, DepGraph, FnParallelism, MergedStmt, ParBlock, SubtreeIndependence,
};
pub use error::Error;
pub use explain::{
    BlockCause, CallSite, ConflictKind, EdgeEnd, FusionExplain, FusionVerdict, MissReason,
    PairExplain,
};
pub use fusion::{
    fuse, fuse_slots, CallPart, FuseError, FuseOptions, FusedFn, FusedFnId, FusedProgram,
    FusionCoverage, FusionOptions, ScheduledItem, Stub, StubId,
};
pub use grafter_frontend::{Diag, DiagnosticBag, Severity, Stage};
pub use pipeline::{Compiled, Fused, FusionMetrics};
