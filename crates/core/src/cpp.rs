//! C++-like source rendering of fused programs (the paper's Fig. 6).
//!
//! Grafter was originally a source-to-source Clang tool; its output is a set
//! of global fused functions plus per-class virtual dispatch stubs driven by
//! an `active_flags` bitmask. This module renders a [`FusedProgram`] in that
//! style — useful for golden tests, documentation and inspecting fusion
//! decisions. Execution uses `grafter-runtime` instead.

use std::fmt::Write as _;

use grafter_frontend::{
    BinOp, DataAccess, Expr, LocalId, MethodId, NodePath, Program, Stmt, Ty, UnOp,
};

use crate::fusion::{FusedProgram, ScheduledItem};

/// Renders the whole fused program: every fused function, then every stub.
pub fn emit(fp: &FusedProgram) -> String {
    let mut out = String::new();
    for f in &fp.functions {
        emit_function(fp, f, &mut out);
        out.push('\n');
    }
    for stub in &fp.stubs {
        for &(class, target) in &stub.targets {
            let class_name = &fp.program.classes[class.index()].name;
            let fname = &fp.functions[target.0 as usize].name;
            let _ = writeln!(
                out,
                "void {class_name}::{}(unsigned int active_flags) {{ {fname}(({}*) this, active_flags); }}",
                stub.name,
                fp.program.classes[fp.functions[target.0 as usize].receiver_class.index()].name,
            );
        }
        out.push('\n');
    }
    out
}

fn emit_function(fp: &FusedProgram, f: &crate::fusion::FusedFn, out: &mut String) {
    let p = &fp.program;
    let recv = &p.classes[f.receiver_class.index()].name;
    let _ = writeln!(
        out,
        "void {}({recv}* _r, unsigned int active_flags) {{",
        f.name
    );
    // Per-traversal receiver aliases, cast to each original receiver type
    // (paper Fig. 6 lines 4-5).
    for (ti, &m) in f.seq.iter().enumerate() {
        let cls = &p.classes[p.methods[m.index()].class.index()].name;
        let _ = writeln!(out, "  {cls}* _r_f{ti} = ({cls}*)(_r);");
    }
    for item in &f.body {
        match item {
            ScheduledItem::Stmt { traversal, stmt } => {
                let _ = writeln!(out, "  if (active_flags & 0b{:b}) {{", 1u64 << traversal);
                emit_stmt(p, f.seq[*traversal], *traversal, stmt, 2, out);
                let _ = writeln!(out, "  }}");
            }
            ScheduledItem::Call {
                receiver,
                stub,
                parts,
            } => {
                let mask: u64 = parts.iter().fold(0, |m, part| m | (1u64 << part.traversal));
                let _ = writeln!(out, "  if (active_flags & 0b{mask:b}) /* call */ {{");
                let _ = writeln!(out, "    unsigned int call_flags = 0;");
                for part in parts.iter().rev() {
                    let _ = writeln!(out, "    call_flags <<= 1;");
                    let _ = writeln!(
                        out,
                        "    call_flags |= (0b1 & (active_flags >> {}));",
                        part.traversal
                    );
                }
                let recv_str =
                    node_path_str(p, f.seq[parts[0].traversal], parts[0].traversal, receiver);
                let _ = writeln!(
                    out,
                    "    {recv_str}->{}(call_flags);",
                    fp.stubs[stub.0 as usize].name
                );
                let _ = writeln!(out, "  }}");
            }
        }
    }
    let _ = writeln!(out, "}}");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_stmt(
    p: &Program,
    method: MethodId,
    traversal: usize,
    stmt: &Stmt,
    depth: usize,
    out: &mut String,
) {
    indent(out, depth);
    match stmt {
        Stmt::Traverse(call) => {
            // Only appears unfused inside if-bodies (never happens today —
            // traverses are top level) but handle it for completeness.
            let recv = node_path_str(p, method, traversal, &call.receiver);
            let name = &p.methods[call.slot.index()].name;
            let args = call
                .args
                .iter()
                .map(|a| expr_str(p, method, traversal, a))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{recv}->{name}({args});");
        }
        Stmt::Assign { target, value } => {
            let _ = writeln!(
                out,
                "{} = {};",
                access_str(p, method, traversal, target),
                expr_str(p, method, traversal, value)
            );
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(p, method, traversal, cond));
            for s in then_branch {
                emit_stmt(p, method, traversal, s, depth + 1, out);
            }
            if else_branch.is_empty() {
                indent(out, depth);
                let _ = writeln!(out, "}}");
            } else {
                indent(out, depth);
                let _ = writeln!(out, "}} else {{");
                for s in else_branch {
                    emit_stmt(p, method, traversal, s, depth + 1, out);
                }
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::LocalDef { local, init } => {
            let lv = &p.methods[method.index()].locals[local.index()];
            let ty = ty_str(p, lv.ty);
            match init {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "{ty} _t{traversal}_{} = {};",
                        lv.name,
                        expr_str(p, method, traversal, e)
                    );
                }
                None => {
                    let _ = writeln!(out, "{ty} _t{traversal}_{};", lv.name);
                }
            }
        }
        Stmt::New { target, class } => {
            let _ = writeln!(
                out,
                "{} = new {}();",
                node_path_str(p, method, traversal, target),
                p.classes[class.index()].name
            );
        }
        Stmt::Delete { target } => {
            let _ = writeln!(
                out,
                "delete {};",
                node_path_str(p, method, traversal, target)
            );
        }
        Stmt::Return => {
            let _ = writeln!(
                out,
                "active_flags &= ~(0b{:b}); /* return */",
                1u64 << traversal
            );
        }
        Stmt::PureStmt { pure, args } => {
            let args = args
                .iter()
                .map(|a| expr_str(p, method, traversal, a))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "{}({args});", p.pures[pure.index()].name);
        }
    }
}

fn ty_str(p: &Program, ty: Ty) -> String {
    match ty {
        Ty::Int => "int".into(),
        Ty::Float => "double".into(),
        Ty::Bool => "bool".into(),
        Ty::Struct(s) => p.structs[s.index()].name.clone(),
        Ty::Node(c) => format!("{}*", p.classes[c.index()].name),
    }
}

fn node_path_str(p: &Program, _method: MethodId, traversal: usize, path: &NodePath) -> String {
    let mut s = format!("_r_f{traversal}");
    if let Some(c) = path.base_cast {
        s = format!("(({}*)({s}))", p.classes[c.index()].name);
    }
    for step in &path.steps {
        let _ = write!(s, "->{}", p.fields[step.field.index()].name);
        if let Some(c) = step.cast_to {
            s = format!("(({}*)({s}))", p.classes[c.index()].name);
        }
    }
    s
}

fn access_str(p: &Program, method: MethodId, traversal: usize, access: &DataAccess) -> String {
    match access {
        DataAccess::OnTree { path, data } => {
            let mut s = node_path_str(p, method, traversal, path);
            let mut first = true;
            for f in data {
                // The node itself is always behind a pointer (`_r_fN` or a
                // child chain), so the first data field uses `->`; deeper
                // struct members are plain member accesses.
                let sep = if first { "->" } else { "." };
                let _ = write!(s, "{sep}{}", p.fields[f.index()].name);
                first = false;
            }
            s
        }
        DataAccess::Local { local, members } => {
            let mut s = local_str(p, method, traversal, *local);
            for f in members {
                let _ = write!(s, ".{}", p.fields[f.index()].name);
            }
            s
        }
        DataAccess::Global { global, members } => {
            let mut s = p.globals[global.index()].name.clone();
            for f in members {
                let _ = write!(s, ".{}", p.fields[f.index()].name);
            }
            s
        }
    }
}

fn local_str(p: &Program, method: MethodId, traversal: usize, local: LocalId) -> String {
    format!(
        "_t{traversal}_{}",
        p.methods[method.index()].locals[local.index()].name
    )
}

fn expr_str(p: &Program, method: MethodId, traversal: usize, expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => format!("{v:?}"),
        Expr::Bool(v) => v.to_string(),
        Expr::Read(a) => access_str(p, method, traversal, a),
        Expr::Unary(op, e) => {
            let op = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{op}({})", expr_str(p, method, traversal, e))
        }
        Expr::Binary(op, l, r) => format!(
            "({} {} {})",
            expr_str(p, method, traversal, l),
            binop_str(*op),
            expr_str(p, method, traversal, r)
        ),
        Expr::PureCall(pure, args) => {
            let args = args
                .iter()
                .map(|a| expr_str(p, method, traversal, a))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}({args})", p.pures[pure.index()].name)
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    op.symbol()
}
