//! `grafterc` — command-line front door to the fusion compiler.
//!
//! Mirrors the original Grafter's Clang-tool usage: feed it a traversal
//! program, name the root class and the traversal sequence, and it prints
//! the fused, mutually recursive functions in the paper's Fig. 6 style.
//! Drives the staged `grafter::pipeline` API and reports problems through
//! its unified diagnostics.
//!
//! ```text
//! grafterc <file.gr> --root <Class> --passes <t1,t2,...> [--unfused] [--stats]
//! ```

use std::process::ExitCode;

use grafter::{FuseOptions, Pipeline};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: grafterc <file.gr> --root <Class> --passes <t1,t2,...> [--unfused] [--stats]"
        );
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match Pipeline::compile(source.as_str()) {
        Ok(c) => c,
        Err(bag) => {
            for d in bag.iter() {
                eprintln!("{path}:{}", d.render(&source));
            }
            return ExitCode::FAILURE;
        }
    };
    for w in compiled.warnings().iter() {
        eprintln!("{path}:{}", w.render(compiled.source()));
    }
    let Some(root) = arg_value(&args, "--root") else {
        eprintln!("error: missing --root <Class>");
        return ExitCode::from(2);
    };
    let Some(passes) = arg_value(&args, "--passes") else {
        eprintln!("error: missing --passes <t1,t2,...>");
        return ExitCode::from(2);
    };
    let pass_list: Vec<&str> = passes.split(',').map(str::trim).collect();
    let opts = if args.iter().any(|a| a == "--unfused") {
        FuseOptions::unfused()
    } else {
        FuseOptions::default()
    };
    match compiled.fuse(&root, &pass_list, &opts) {
        Ok(fused) => {
            print!("{}", fused.render_cpp());
            if args.iter().any(|a| a == "--stats") {
                eprintln!(
                    "fused {} traversal(s) on `{root}`: {}",
                    pass_list.len(),
                    fused.metrics()
                );
            }
            ExitCode::SUCCESS
        }
        Err(bag) => {
            eprintln!("{}", bag.render(compiled.source()));
            ExitCode::FAILURE
        }
    }
}
