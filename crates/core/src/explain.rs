//! Per-pair fusability verdicts — the `--explain` pass.
//!
//! [`FusionCoverage`] counts how many same-receiver
//! call pairs fused, were missed, or were blocked; this module records *why*,
//! per pair. The grouping stage emits one [`PairExplain`] for every candidate
//! pair it classifies, carrying the source span of both call sites and a
//! structured [`FusionVerdict`]:
//!
//! - [`FusionVerdict::Fused`] — the pair landed in one dispatch group;
//! - [`FusionVerdict::Missed`] — pairwise fusion was legal but the greedy
//!   grouping (or a [`FuseOptions`](crate::FuseOptions) knob) left the calls
//!   apart;
//! - [`FusionVerdict::Blocked`] — no legal grouping exists, with the specific
//!   cause: a receiver that does not resolve to a tree class, no common
//!   dispatch supertype (naming the two static targets), or a dependence
//!   cycle (naming the access-conflict edge that closes it, recovered from
//!   the same automata intersections that built the [`DepGraph`]).
//!
//! The verdicts aggregate into a [`FusionExplain`] attached to
//! [`FusedProgram`](crate::FusedProgram), rendered as caret-snippet text via
//! [`Diag::render`] or as machine JSON via the shared
//! [`grafter_obs::json::JsonWriter`]. By construction the per-category totals
//! equal the [`FusionCoverage`] counters — the
//! invariant the test suite checks on every case study.
//!
//! [`DepGraph`]: crate::DepGraph

use grafter_frontend::{Diag, Span, Stage};
use grafter_obs::json::JsonWriter;

use crate::fusion::FusionCoverage;

/// Why a pairwise-legal candidate pair was left ungrouped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MissReason {
    /// `FuseOptions::grouping` is `false` (the unfused baseline): no
    /// grouping ran at all, though the pair would have been legal.
    GroupingDisabled,
    /// Grouping both calls would exceed `FuseOptions::max_group_size`.
    GroupSizeCutoff {
        /// The configured limit.
        limit: usize,
    },
    /// Grouping both calls would repeat one static function more than
    /// `FuseOptions::max_occurrences` times.
    OccurrenceCutoff {
        /// The configured limit.
        limit: usize,
    },
    /// Legal in isolation, but the greedy pass committed the calls to
    /// different groups (group-level legality constraints with other
    /// members, or visit order).
    GreedyOrder,
}

impl MissReason {
    /// Machine-readable slug, stable across releases.
    pub fn slug(&self) -> &'static str {
        match self {
            MissReason::GroupingDisabled => "grouping-disabled",
            MissReason::GroupSizeCutoff { .. } => "group-size-cutoff",
            MissReason::OccurrenceCutoff { .. } => "occurrence-cutoff",
            MissReason::GreedyOrder => "greedy-order",
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            MissReason::GroupingDisabled => {
                "fusion is disabled by FusionOptions (grouping = false)".to_string()
            }
            MissReason::GroupSizeCutoff { limit } => {
                format!("grouping both calls would exceed max_group_size = {limit}")
            }
            MissReason::OccurrenceCutoff { limit } => {
                format!("grouping both calls would repeat a function more than max_occurrences = {limit} times")
            }
            MissReason::GreedyOrder => {
                "legal in isolation, but greedy grouping committed the calls to different groups"
                    .to_string()
            }
        }
    }
}

/// The kind of dependence edge that closes a condensation cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// A tree write intersecting a tree read.
    TreeWriteRead,
    /// Two tree writes intersecting.
    TreeWriteWrite,
    /// A tree read intersecting a tree write.
    TreeReadWrite,
    /// A global write intersecting a global read.
    GlobalWriteRead,
    /// Two global writes intersecting.
    GlobalWriteWrite,
    /// A global read intersecting a global write.
    GlobalReadWrite,
    /// A same-frame local-variable conflict.
    Local,
    /// A same-frame control edge (one side may `return`).
    Control,
}

impl ConflictKind {
    /// Machine-readable slug, stable across releases.
    pub fn slug(&self) -> &'static str {
        match self {
            ConflictKind::TreeWriteRead => "tree-write-read",
            ConflictKind::TreeWriteWrite => "tree-write-write",
            ConflictKind::TreeReadWrite => "tree-read-write",
            ConflictKind::GlobalWriteRead => "global-write-read",
            ConflictKind::GlobalWriteWrite => "global-write-write",
            ConflictKind::GlobalReadWrite => "global-read-write",
            ConflictKind::Local => "local-conflict",
            ConflictKind::Control => "control",
        }
    }

    /// Human-readable description of the edge.
    pub fn describe(&self) -> &'static str {
        match self {
            ConflictKind::TreeWriteRead => "a tree write overlapping a later tree read",
            ConflictKind::TreeWriteWrite => "two overlapping tree writes",
            ConflictKind::TreeReadWrite => "a tree read overlapped by a later tree write",
            ConflictKind::GlobalWriteRead => "a global write overlapping a later global read",
            ConflictKind::GlobalWriteWrite => "two overlapping global writes",
            ConflictKind::GlobalReadWrite => "a global read overlapped by a later global write",
            ConflictKind::Local => "a local-variable conflict within one frame",
            ConflictKind::Control => "a control dependence (one side may return)",
        }
    }
}

/// One endpoint of the dependence edge named by a
/// [`BlockCause::DependenceCycle`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeEnd {
    /// Which traversal copy of the merged body the statement came from.
    pub traversal: usize,
    /// Top-level statement index within that traversal's body.
    pub index: usize,
    /// Rendered description, e.g. ``call `compute`​`` or `statement 2`.
    pub what: String,
}

/// Why no legal grouping could fuse a pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockCause {
    /// A receiver path does not resolve to a tree class (e.g. it crosses
    /// into struct data), so the calls cannot share a dispatch.
    CrossHierarchy {
        /// The method whose receiver fails to resolve.
        method: String,
    },
    /// The two static dispatch targets share no common supertype.
    NoCommonSupertype {
        /// Static target class of the first call.
        left: String,
        /// Static target class of the second call.
        right: String,
    },
    /// Merging the two calls would close a dependence cycle through the
    /// named edge.
    DependenceCycle {
        /// The access-conflict kind of the edge.
        kind: ConflictKind,
        /// Edge source (on the path from the first call).
        from: EdgeEnd,
        /// Edge target.
        to: EdgeEnd,
    },
}

impl BlockCause {
    /// Machine-readable slug, stable across releases.
    pub fn slug(&self) -> &'static str {
        match self {
            BlockCause::CrossHierarchy { .. } => "cross-hierarchy",
            BlockCause::NoCommonSupertype { .. } => "no-common-supertype",
            BlockCause::DependenceCycle { .. } => "dependence-cycle",
        }
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            BlockCause::CrossHierarchy { method } => {
                format!("the receiver of `{method}` does not resolve to a tree class")
            }
            BlockCause::NoCommonSupertype { left, right } => {
                format!("no common dispatch supertype: `{left}` vs `{right}`")
            }
            BlockCause::DependenceCycle { kind, from, to } => {
                format!(
                    "fusing would close a dependence cycle through {}: {} \u{2192} {}",
                    kind.describe(),
                    from.what,
                    to.what
                )
            }
        }
    }
}

/// The verdict on one same-receiver candidate pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusionVerdict {
    /// The pair was grouped into one child dispatch (a saved visit).
    Fused {
        /// Dense group id within the fused function's body.
        group: usize,
    },
    /// Pairwise fusion was legal but the calls were left apart.
    Missed {
        /// Why.
        reason: MissReason,
    },
    /// No legal grouping could fuse the pair.
    Blocked {
        /// The specific cause.
        cause: BlockCause,
    },
}

impl FusionVerdict {
    /// The verdict's category name: `fused`, `missed` or `blocked`.
    pub fn category(&self) -> &'static str {
        match self {
            FusionVerdict::Fused { .. } => "fused",
            FusionVerdict::Missed { .. } => "missed",
            FusionVerdict::Blocked { .. } => "blocked",
        }
    }

    /// Machine-readable reason slug (`grouped` for fused pairs).
    pub fn slug(&self) -> &'static str {
        match self {
            FusionVerdict::Fused { .. } => "grouped",
            FusionVerdict::Missed { reason } => reason.slug(),
            FusionVerdict::Blocked { cause } => cause.slug(),
        }
    }

    /// Human-readable explanation.
    pub fn describe(&self) -> String {
        match self {
            FusionVerdict::Fused { group } => {
                format!("grouped into one child dispatch (group {group})")
            }
            FusionVerdict::Missed { reason } => reason.describe(),
            FusionVerdict::Blocked { cause } => cause.describe(),
        }
    }
}

/// One call site of a candidate pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Name of the invoked traversal (the dispatch slot's name).
    pub method: String,
    /// Source span of the `receiver->method(...)` statement.
    pub span: Span,
}

/// The full record of one candidate pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairExplain {
    /// Generated name of the fused function whose body held the pair.
    pub fused_fn: String,
    /// Rendered common receiver path, e.g. `this->left`.
    pub receiver: String,
    /// First call of the pair (in merged order).
    pub left: CallSite,
    /// Second call of the pair.
    pub right: CallSite,
    /// The verdict.
    pub verdict: FusionVerdict,
}

/// All per-pair verdicts of one fusion run.
///
/// Accumulated once per distinct fused function (bodies are memoised), in
/// deterministic order, so the report is a static code property suitable
/// for golden tests. Per-category totals equal the
/// [`FusionCoverage`] counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FusionExplain {
    /// Every classified candidate pair, in discovery order.
    pub pairs: Vec<PairExplain>,
}

impl FusionExplain {
    /// Number of fused pairs.
    pub fn fused(&self) -> usize {
        self.count(|v| matches!(v, FusionVerdict::Fused { .. }))
    }

    /// Number of missed pairs.
    pub fn missed(&self) -> usize {
        self.count(|v| matches!(v, FusionVerdict::Missed { .. }))
    }

    /// Number of blocked pairs.
    pub fn blocked(&self) -> usize {
        self.count(|v| matches!(v, FusionVerdict::Blocked { .. }))
    }

    fn count(&self, f: impl Fn(&FusionVerdict) -> bool) -> usize {
        self.pairs.iter().filter(|p| f(&p.verdict)).count()
    }

    /// The totals as a [`FusionCoverage`] — equal to the counters the
    /// grouping stage accumulated (invariant-tested).
    pub fn totals(&self) -> FusionCoverage {
        FusionCoverage {
            fused_pairs: self.fused(),
            missed_pairs: self.missed(),
            blocked_pairs: self.blocked(),
        }
    }

    /// Renders the report as human text over the program source.
    ///
    /// Fused pairs get a one-line note; missed and blocked pairs get
    /// caret snippets (via [`Diag::render`]) pointing at both call sites.
    pub fn render_text(&self, src: &str) -> String {
        let mut out = format!(
            "fusion explain: {} candidate pair(s): {} fused, {} missed, {} blocked\n",
            self.pairs.len(),
            self.fused(),
            self.missed(),
            self.blocked()
        );
        for p in &self.pairs {
            out.push('\n');
            out.push_str(&format!(
                "[{}] {}: `{}`: {} + {}: {}\n",
                p.verdict.category(),
                p.fused_fn,
                p.receiver,
                p.left.method,
                p.right.method,
                p.verdict.describe()
            ));
            if matches!(p.verdict, FusionVerdict::Fused { .. }) {
                continue;
            }
            let why = p.verdict.describe();
            for (site, side) in [(&p.left, "first"), (&p.right, "second")] {
                let d = Diag::warning(
                    Stage::Fuse,
                    format!("{side} call `{}` not fused: {why}", site.method),
                    site.span,
                );
                out.push_str(&d.render(src));
                out.push('\n');
            }
        }
        out
    }

    /// Renders the report as one JSON object (the `--explain --json`
    /// payload and the grafterd `explain` response body).
    pub fn render_json(&self, src: &str) -> String {
        let mut w = JsonWriter::with_capacity(256 + 256 * self.pairs.len());
        w.begin_obj();
        w.key("totals").begin_obj();
        w.key("fused").num(self.fused());
        w.key("missed").num(self.missed());
        w.key("blocked").num(self.blocked());
        w.end_obj();
        w.key("pairs").begin_arr();
        for p in &self.pairs {
            w.begin_obj();
            w.key("fn").str(&p.fused_fn);
            w.key("receiver").str(&p.receiver);
            for (key, site) in [("left", &p.left), ("right", &p.right)] {
                let (line, col) = site.span.line_col(src);
                w.key(key).begin_obj();
                w.key("method").str(&site.method);
                w.key("span").begin_obj();
                w.key("start").num(site.span.start);
                w.key("end").num(site.span.end);
                w.key("line").num(line);
                w.key("col").num(col);
                w.end_obj();
                w.end_obj();
            }
            w.key("verdict").str(p.verdict.category());
            w.key("reason").str(p.verdict.slug());
            w.key("detail").str(&p.verdict.describe());
            match &p.verdict {
                FusionVerdict::Fused { group } => {
                    w.key("group").num(*group);
                }
                FusionVerdict::Missed { .. } => {}
                FusionVerdict::Blocked { cause } => {
                    if let BlockCause::DependenceCycle { kind, from, to } = cause {
                        w.key("edge").begin_obj();
                        w.key("kind").str(kind.slug());
                        for (key, end) in [("from", from), ("to", to)] {
                            w.key(key).begin_obj();
                            w.key("traversal").num(end.traversal);
                            w.key("index").num(end.index);
                            w.key("what").str(&end.what);
                            w.end_obj();
                        }
                        w.end_obj();
                    }
                }
            }
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}
