//! The staged compile→fuse stages of the compiler.
//!
//! [`Compiled::compile`] turns DSL source into a [`Compiled`] program
//! (running lexer, parser and sema, with all diagnostics accumulated in
//! one [`DiagnosticBag`]); [`Compiled::fuse`] runs the fusion compiler and
//! yields a [`Fused`] artifact that can render C++ ([`Fused::render_cpp`])
//! or report compile-side fusion statistics ([`Fused::metrics`]).
//! Execution lives in `grafter_engine` — build an `Engine` from a
//! [`Compiled`] (or straight from source) and open per-request sessions.
//!
//! ```
//! use grafter::Compiled;
//!
//! let src = r#"
//!     tree class Node {
//!         child Node* next;
//!         int a = 0; int b = 0;
//!         virtual traversal incA() {}
//!         virtual traversal incB() {}
//!     }
//!     tree class Cons : Node {
//!         traversal incA() { a = a + 1; this->next->incA(); }
//!         traversal incB() { b = b + 1; this->next->incB(); }
//!     }
//!     tree class End : Node { }
//! "#;
//! let fused = Compiled::compile(src)?.fuse_default("Node", &["incA", "incB"])?;
//! assert!(fused.metrics().fully_fused);
//! assert!(fused.render_cpp().contains("__stub0"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

use grafter_frontend::{Diag, DiagnosticBag, Program, Stage};

use crate::cpp;
use crate::error::Error;
use crate::fusion::{fuse, FuseError, FuseOptions, FusedProgram};

impl From<FuseError> for Diag {
    fn from(e: FuseError) -> Diag {
        Diag::error_global(Stage::Fuse, e.to_string())
    }
}

impl From<FuseError> for DiagnosticBag {
    fn from(e: FuseError) -> DiagnosticBag {
        DiagnosticBag::from(Diag::from(e))
    }
}

/// A semantically checked program, ready to fuse.
#[derive(Clone, Debug)]
pub struct Compiled {
    src: String,
    program: Program,
    warnings: DiagnosticBag,
}

impl Compiled {
    /// Compiles DSL source through lexing, parsing and semantic analysis
    /// (the Engine builder's compile step).
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] (stage, span, rendered caret snippet)
    /// when any frontend stage reports an error; warnings ride along on
    /// success via [`Compiled::warnings`].
    pub fn compile(src: impl Into<String>) -> Result<Compiled, Error> {
        Self::compile_timed(src).map(|(c, _, _)| c)
    }

    /// Like [`Compiled::compile`], but also reports how long the parse
    /// (lexing included) and sema stages took — the engine's compile
    /// trace builds on this.
    ///
    /// # Errors
    ///
    /// Same as [`Compiled::compile`].
    pub fn compile_timed(
        src: impl Into<String>,
    ) -> Result<(Compiled, std::time::Duration, std::time::Duration), Error> {
        let src = src.into();
        let t0 = std::time::Instant::now();
        let surface = match grafter_frontend::parser::parse(&src) {
            Ok(surface) => surface,
            Err(bag) => return Err(Error::new(bag, &src)),
        };
        let parse = t0.elapsed();
        let t1 = std::time::Instant::now();
        match grafter_frontend::sema::check_with_warnings(&surface) {
            Ok((program, warnings)) => Ok((
                Compiled {
                    src,
                    program,
                    warnings,
                },
                parse,
                t1.elapsed(),
            )),
            Err(bag) => Err(Error::new(bag, &src)),
        }
    }

    /// The resolved program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The source text the program was compiled from.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Warnings the frontend emitted while compiling.
    pub fn warnings(&self) -> &DiagnosticBag {
        &self.warnings
    }

    /// Consumes the stage into the bare [`Program`].
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Fuses the traversal sequence `traversals` invoked back-to-back on a
    /// root of static type `root_class`.
    ///
    /// # Errors
    ///
    /// Returns a [`DiagnosticBag`] (stage `fuse`) if the class or a
    /// traversal name does not resolve.
    pub fn fuse(
        &self,
        root_class: &str,
        traversals: &[&str],
        opts: &FuseOptions,
    ) -> Result<Fused, DiagnosticBag> {
        let fused = fuse(&self.program, root_class, traversals, opts)?;
        Ok(Fused {
            src: self.src.clone(),
            warnings: self.warnings.clone(),
            fused,
        })
    }

    /// [`Compiled::fuse`] with [`FuseOptions::default`].
    ///
    /// # Errors
    ///
    /// See [`Compiled::fuse`].
    pub fn fuse_default(
        &self,
        root_class: &str,
        traversals: &[&str],
    ) -> Result<Fused, DiagnosticBag> {
        self.fuse(root_class, traversals, &FuseOptions::default())
    }

    /// [`Compiled::fuse`] with [`FuseOptions::unfused`]: the baseline that
    /// walks the tree once per traversal.
    ///
    /// # Errors
    ///
    /// See [`Compiled::fuse`].
    pub fn fuse_unfused(
        &self,
        root_class: &str,
        traversals: &[&str],
    ) -> Result<Fused, DiagnosticBag> {
        self.fuse(root_class, traversals, &FuseOptions::unfused())
    }
}

/// Compile-side statistics of a fusion run (see [`Fused::metrics`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FusionMetrics {
    /// Number of generated fused functions.
    pub functions: usize,
    /// Number of generated dispatch stubs.
    pub stubs: usize,
    /// Number of root entry passes (1 when the whole sequence fused into a
    /// single pass; one per traversal for the unfused baseline).
    pub passes: usize,
    /// Whether fusion achieved a single visit per child everywhere.
    pub fully_fused: bool,
    /// Same-receiver call pairs merged into one dispatch (static count,
    /// see [`crate::FusionCoverage`]).
    pub fused_pairs: usize,
    /// Statically fusable same-receiver pairs left unfused (legal but
    /// ungrouped; run `--explain` for the per-pair reasons).
    pub missed_pairs: usize,
    /// Same-receiver pairs no legal grouping could fuse (no common
    /// supertype, cross-hierarchy receiver, or a dependence cycle).
    pub blocked_pairs: usize,
}

impl fmt::Display for FusionMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} function(s), {} stub(s), {} pass(es), fully fused: {}, \
             coverage: {} fused / {} missed / {} blocked pair(s)",
            self.functions,
            self.stubs,
            self.passes,
            self.fully_fused,
            self.fused_pairs,
            self.missed_pairs,
            self.blocked_pairs
        )
    }
}

/// The output of the fusion stage: a fused program plus the context needed
/// to render, execute and report on it.
#[derive(Clone, Debug)]
pub struct Fused {
    src: String,
    warnings: DiagnosticBag,
    fused: FusedProgram,
}

impl Fused {
    /// Renders the fused program as C++-like source (the paper's Fig. 6).
    pub fn render_cpp(&self) -> String {
        cpp::emit(&self.fused)
    }

    /// Compile-side fusion statistics.
    pub fn metrics(&self) -> FusionMetrics {
        FusionMetrics {
            functions: self.fused.n_functions(),
            stubs: self.fused.stubs.len(),
            passes: self.fused.entries.len(),
            fully_fused: self.fused.fully_fused(),
            fused_pairs: self.fused.coverage.fused_pairs,
            missed_pairs: self.fused.coverage.missed_pairs,
            blocked_pairs: self.fused.coverage.blocked_pairs,
        }
    }

    /// The per-pair fusability verdicts of the fusion run (the `--explain`
    /// report).
    pub fn explain(&self) -> &crate::explain::FusionExplain {
        &self.fused.explain
    }

    /// The source program shared by the fused code.
    pub fn program(&self) -> &Program {
        &self.fused.program
    }

    /// The source text the pipeline started from.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Warnings accumulated by earlier stages.
    pub fn warnings(&self) -> &DiagnosticBag {
        &self.warnings
    }

    /// The underlying fused program (for direct `Interp` construction or
    /// structural inspection).
    pub fn fused_program(&self) -> &FusedProgram {
        &self.fused
    }

    /// Consumes the stage into the bare [`FusedProgram`].
    pub fn into_fused_program(self) -> FusedProgram {
        self.fused
    }
}

impl std::ops::Deref for Fused {
    type Target = FusedProgram;

    fn deref(&self) -> &FusedProgram {
        &self.fused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        tree class Node {
            child Node* next;
            int a = 0; int b = 0;
            virtual traversal incA() {}
            virtual traversal incB() {}
        }
        tree class Cons : Node {
            traversal incA() { a = a + 1; this->next->incA(); }
            traversal incB() { b = b + 1; this->next->incB(); }
        }
        tree class End : Node { }
    "#;

    #[test]
    fn staged_flow_compiles_and_fuses() {
        let compiled = Compiled::compile(SRC).unwrap();
        assert!(compiled.warnings().is_empty());
        let fused = compiled.fuse_default("Node", &["incA", "incB"]).unwrap();
        let m = fused.metrics();
        assert!(m.fully_fused);
        assert_eq!(m.passes, 1);
        let unfused = compiled.fuse_unfused("Node", &["incA", "incB"]).unwrap();
        assert_eq!(unfused.metrics().passes, 2);
    }

    #[test]
    fn compile_errors_carry_stage() {
        let bag = Compiled::compile("tree class X { child Y* next; }")
            .unwrap_err()
            .into_bag();
        assert!(bag.has_errors());
        assert!(bag.iter().all(|d| d.stage == Stage::Sema), "{bag}");
    }

    #[test]
    fn fuse_errors_carry_stage() {
        let compiled = Compiled::compile(SRC).unwrap();
        let bag = compiled.fuse_default("Nope", &["incA"]).unwrap_err();
        assert_eq!(bag[0].stage, Stage::Fuse);
        assert!(bag[0].message.contains("unknown tree class"));
        let bag = compiled.fuse_default("Node", &["nope"]).unwrap_err();
        assert!(bag[0].message.contains("no traversal"));
    }

    #[test]
    fn frontend_warnings_ride_along() {
        let src = format!("pure int mystery(int x);\n{SRC}");
        let compiled = Compiled::compile(src).unwrap();
        assert_eq!(compiled.warnings().len(), 1);
        assert!(compiled.warnings()[0].message.contains("never called"));
        let fused = compiled.fuse_default("Node", &["incA"]).unwrap();
        assert_eq!(fused.warnings().len(), 1, "warnings survive fusion");
    }

    #[test]
    fn render_cpp_matches_direct_emit() {
        let fused = Compiled::compile(SRC)
            .unwrap()
            .fuse_default("Node", &["incA", "incB"])
            .unwrap();
        assert_eq!(fused.render_cpp(), cpp::emit(fused.fused_program()));
    }
}
