//! The typed error of the Engine API.
//!
//! The staged pipeline surfaces problems as bare [`DiagnosticBag`]s, which
//! carry everything but force every caller to re-derive "what failed" and
//! to keep the source text around for rendering. [`Error`] packages a
//! failed operation once, at the failure site: the [`Stage`] that failed,
//! the primary source [`Span`] (when known), the full diagnostic list, and
//! a pre-rendered caret snippet — so the error is self-contained long
//! after the source string is gone, and implements [`std::error::Error`]
//! for idiomatic `?` propagation and `anyhow`-style chaining.

use std::fmt;

use grafter_frontend::{Diag, DiagnosticBag, Span, Stage};

/// A typed, self-contained pipeline/engine error.
///
/// Construct with [`Error::new`] at the point where the source text is
/// still available; the caret snippet is rendered eagerly so `Display`
/// needs no further context.
///
/// ```
/// use grafter::{Error, Stage};
///
/// let src = "tree class X {\n    child Missing* c;\n}";
/// let bag = grafter_frontend::compile(src).unwrap_err();
/// let err = Error::new(bag, src);
/// assert_eq!(err.stage(), Stage::Sema);
/// assert!(err.is_compile() && !err.is_runtime());
/// assert!(err.to_string().contains("^^^"), "{err}");
/// ```
#[derive(Clone, Debug)]
pub struct Error {
    stage: Stage,
    span: Option<Span>,
    diags: DiagnosticBag,
    rendered: String,
}

impl Error {
    /// Wraps a diagnostic bag, resolving spans against `src` and
    /// pre-rendering the caret snippet. Exact duplicate diagnostics are
    /// collapsed.
    ///
    /// The error's stage/span are those of the first *error* in the bag
    /// (falling back to the first diagnostic for all-warning bags).
    pub fn new(mut diags: DiagnosticBag, src: &str) -> Self {
        diags.dedup();
        let primary = diags
            .iter()
            .find(|d| d.is_error())
            .or_else(|| diags.iter().next());
        let (stage, span) = match primary {
            Some(d) => (d.stage, d.span),
            None => (Stage::Config, None),
        };
        let rendered = if diags.is_empty() {
            "error[config]: empty diagnostic bag".to_string()
        } else {
            diags.render(src)
        };
        Error {
            stage,
            span,
            diags,
            rendered,
        }
    }

    /// Wraps a single diagnostic.
    pub fn from_diag(diag: Diag, src: &str) -> Self {
        Error::new(DiagnosticBag::from(diag), src)
    }

    /// A configuration error (builder misuse), tagged [`Stage::Config`].
    pub fn config(message: impl Into<String>) -> Self {
        Error::from_diag(Diag::error_global(Stage::Config, message), "")
    }

    /// The stage that produced the primary (first error) diagnostic.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The primary diagnostic's source span, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// Every diagnostic behind this error, in emission order.
    pub fn diagnostics(&self) -> &DiagnosticBag {
        &self.diags
    }

    /// Whether the failure happened before execution (lex, parse, sema,
    /// fuse, or engine configuration).
    pub fn is_compile(&self) -> bool {
        self.stage.is_compile()
    }

    /// Whether the failure happened while executing a program.
    pub fn is_runtime(&self) -> bool {
        self.stage == Stage::Runtime
    }

    /// The pre-rendered report (also what `Display` prints): one block
    /// per diagnostic, spanned ones with their source-line caret snippet.
    pub fn rendered(&self) -> &str {
        &self.rendered
    }

    /// The diagnostics as a JSON array, with positions resolved against
    /// `src` (the `grafterc --json` format).
    pub fn render_json(&self, src: &str) -> String {
        self.diags.render_json(src)
    }

    /// Consumes the error back into its diagnostic bag (the shim path:
    /// old `Result<_, DiagnosticBag>` signatures delegate here).
    pub fn into_bag(self) -> DiagnosticBag {
        self.diags
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

impl std::error::Error for Error {}

impl From<Error> for DiagnosticBag {
    fn from(e: Error) -> DiagnosticBag {
        e.into_bag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::Severity;

    #[test]
    fn error_carries_stage_span_and_snippet() {
        let src = "tree class X {\n    child Missing* c;\n}";
        let bag = grafter_frontend::compile(src).unwrap_err();
        let err = Error::new(bag, src);
        assert_eq!(err.stage(), Stage::Sema);
        assert!(err.span().is_some());
        assert!(err.is_compile());
        let text = err.to_string();
        assert!(text.contains("error[sema]"), "{text}");
        assert!(text.contains("child Missing* c;"), "{text}");
        assert!(text.contains('^'), "{text}");
    }

    #[test]
    fn error_dedupes_and_prefers_the_first_error() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diag::warning_global(Stage::Sema, "w"));
        bag.push(Diag::error_global(Stage::Fuse, "boom"));
        bag.push(Diag::error_global(Stage::Fuse, "boom"));
        let err = Error::new(bag, "");
        assert_eq!(err.stage(), Stage::Fuse);
        assert_eq!(err.diagnostics().len(), 2, "duplicates collapsed");
        assert_eq!(err.diagnostics()[0].severity, Severity::Warning);
    }

    #[test]
    fn config_errors_are_compile_side() {
        let err = Error::config("missing source");
        assert_eq!(err.stage(), Stage::Config);
        assert!(err.is_compile());
        assert_eq!(err.to_string(), "error[config]: missing source");
        assert!(err.render_json("").contains(r#""stage": "config""#));
    }

    #[test]
    fn error_round_trips_to_a_bag() {
        let bag: DiagnosticBag = Diag::error_global(Stage::Runtime, "null deref").into();
        let err = Error::new(bag.clone(), "");
        assert!(err.is_runtime());
        let back: DiagnosticBag = err.into();
        assert_eq!(back, bag);
    }
}
