//! Dependence graphs for candidate fused functions (paper §3.2).
//!
//! A candidate fused function for a sequence `L` of concrete traversal
//! functions is (conceptually) the concatenation of their inlined bodies.
//! The dependence graph has one vertex per top-level statement; an edge
//! `u → v` (with `u` before `v` in the merged order) exists when
//!
//! 1. `u` and `v` may access the same memory location with at least one of
//!    them writing (tested by intersecting their access automata), or
//! 2. `u` and `v` come from the same traversal copy and either may `return`
//!    from it (control dependence).
//!
//! Statements from *different* inlined copies have disjoint local frames, so
//! local variables only induce dependences within a copy.

use grafter_frontend::{MethodId, Program, Stmt};

use crate::access::{AccessSummary, ProgramAccesses};

/// One statement of a merged (outlined + inlined) function body.
#[derive(Clone, Debug)]
pub struct MergedStmt {
    /// Which element of the fused sequence the statement came from.
    pub traversal: usize,
    /// Statement index within that traversal's body.
    pub index: usize,
    /// The statement itself.
    pub stmt: Stmt,
}

/// The dependence graph of a merged function body.
#[derive(Clone, Debug)]
pub struct DepGraph {
    n: usize,
    /// `succs[u]` = vertices that must stay after `u`.
    succs: Vec<Vec<usize>>,
    /// `preds[v]` = vertices that must stay before `v`.
    preds: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Builds the merged statement list for a sequence of concrete
    /// functions, all invoked on the same node.
    pub fn merge_bodies(program: &Program, seq: &[MethodId]) -> Vec<MergedStmt> {
        let mut merged = Vec::new();
        for (ti, &m) in seq.iter().enumerate() {
            for (si, stmt) in program.methods[m.index()].body.iter().enumerate() {
                merged.push(MergedStmt {
                    traversal: ti,
                    index: si,
                    stmt: stmt.clone(),
                });
            }
        }
        merged
    }

    /// Builds the dependence graph over `merged`, the statement list of the
    /// sequence `seq` (used to attribute statements to their methods for
    /// access summaries).
    pub fn build(
        accesses: &mut ProgramAccesses<'_>,
        seq: &[MethodId],
        merged: &[MergedStmt],
    ) -> DepGraph {
        let n = merged.len();
        let summaries: Vec<AccessSummary> = merged
            .iter()
            .map(|ms| accesses.summary(seq[ms.traversal], ms.index).clone())
            .collect();

        let mut g = DepGraph {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        };
        for u in 0..n {
            for v in (u + 1)..n {
                let same_frame = merged[u].traversal == merged[v].traversal;
                let control = same_frame && (summaries[u].may_return || summaries[v].may_return);
                if control || summaries[u].conflicts_with(&summaries[v], same_frame) {
                    g.succs[u].push(v);
                    g.preds[v].push(u);
                }
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether there is a direct edge `u → v`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succs[u].contains(&v)
    }

    /// Direct successors of `u`.
    pub fn succs(&self, u: usize) -> &[usize] {
        &self.succs[u]
    }

    /// Direct predecessors of `v`.
    pub fn preds(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// Whether `v` is reachable from `u` by a non-empty path.
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![u];
        while let Some(x) = stack.pop() {
            for &s in &self.succs[x] {
                if s == v {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Whether `v` is reachable from `u` through at least one intermediate
    /// vertex that is *not* in `group`.
    ///
    /// This is the legality test for call grouping: merging the members of
    /// `group` into one vertex keeps the graph acyclic iff no member reaches
    /// another member through an outside vertex.
    pub fn reaches_outside(&self, u: usize, v: usize, group: &[usize]) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack: Vec<usize> = Vec::new();
        for &s in &self.succs[u] {
            if !group.contains(&s) {
                stack.push(s);
            }
        }
        while let Some(x) = stack.pop() {
            if seen[x] {
                continue;
            }
            seen[x] = true;
            if x == v {
                return true;
            }
            for &s in &self.succs[x] {
                if s == v {
                    return true;
                }
                if !group.contains(&s) && !seen[s] {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Topological order of the graph with `groups` condensed into single
    /// super-vertices, stable with respect to original position (Kahn's
    /// algorithm, smallest-available first). Vertices in the same group come
    /// out consecutively, in original order.
    ///
    /// `group_of[v]` maps each vertex to its group id; every vertex belongs
    /// to exactly one group (singletons included).
    ///
    /// # Panics
    ///
    /// Panics if the condensed graph has a cycle — callers must only group
    /// calls whose condensation is legal (see [`DepGraph::reaches_outside`]).
    pub fn schedule(&self, group_of: &[usize], n_groups: usize) -> Vec<usize> {
        assert_eq!(group_of.len(), self.n);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for v in 0..self.n {
            members[group_of[v]].push(v);
        }
        // Build condensed edges and in-degrees.
        let mut gsuccs: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        let mut indeg = vec![0usize; n_groups];
        for u in 0..self.n {
            for &v in &self.succs[u] {
                let (gu, gv) = (group_of[u], group_of[v]);
                if gu != gv && !gsuccs[gu].contains(&gv) {
                    gsuccs[gu].push(gv);
                    indeg[gv] += 1;
                }
            }
        }
        // Kahn, preferring the group whose first member is earliest.
        let mut ready: Vec<usize> = (0..n_groups).filter(|&g| indeg[g] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        let mut emitted = 0;
        while !ready.is_empty() {
            let (i, &g) = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &g)| members[g].first().copied().unwrap_or(usize::MAX))
                .expect("ready nonempty");
            ready.remove(i);
            order.extend(members[g].iter().copied());
            emitted += 1;
            for &s in &gsuccs[g] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(
            emitted, n_groups,
            "condensed dependence graph must be acyclic"
        );
        order
    }

    /// Renders the graph in Graphviz DOT format, labelling vertices with
    /// their traversal index and statement kind — handy when inspecting why
    /// a grouping was rejected.
    pub fn to_dot(&self, merged: &[MergedStmt]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph deps {\n  rankdir=TB;\n");
        for (v, ms) in merged.iter().enumerate() {
            let kind = match &ms.stmt {
                Stmt::Traverse(_) => "call",
                Stmt::Assign { .. } => "assign",
                Stmt::If { .. } => "if",
                Stmt::LocalDef { .. } => "local",
                Stmt::New { .. } => "new",
                Stmt::Delete { .. } => "delete",
                Stmt::Return => "return",
                Stmt::PureStmt { .. } => "pure",
            };
            let shape = if matches!(ms.stmt, Stmt::Traverse(_)) {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                out,
                "  v{v} [label=\"t{}#{} {kind}\", shape={shape}];",
                ms.traversal, ms.index
            );
        }
        for u in 0..self.n {
            for &v in &self.succs[u] {
                let _ = writeln!(out, "  v{u} -> v{v};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validates that `order` (a permutation of vertices) respects every
    /// edge. Used by tests and debug assertions.
    pub fn order_is_valid(&self, order: &[usize]) -> bool {
        let mut pos = vec![0usize; self.n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        (0..self.n).all(|u| self.succs[u].iter().all(|&v| pos[u] < pos[v]))
    }
}

// ---------------------------------------------------------------------
// Subtree independence (intra-tree parallelism)
// ---------------------------------------------------------------------

/// Why a pair of sibling call groups may not execute in parallel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParBlock {
    /// The subtree effects conflict: a cross-subtree read/write or
    /// write/write overlap through the access automata.
    Conflict,
    /// A member call may write a global — a global-accumulator ordering
    /// hazard (parallel workers run against a read-only globals snapshot,
    /// so any subtree global write forces sequential execution).
    GlobalWrite,
}

/// The verdict for one ordered pair of grouped-call body items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallPairVerdict {
    /// Body-item index of the earlier call.
    pub a: usize,
    /// Body-item index of the later call.
    pub b: usize,
    /// `None` when the pair is parallel-safe; otherwise why not.
    pub blocked: Option<ParBlock>,
}

/// Subtree-independence facts of one fused function's scheduled body.
///
/// A *parallel set* is a maximal run of consecutive `Call` body items
/// that are pairwise parallel-safe: no dependence edge connects any two
/// member vertices in either direction (no cross-subtree conflict) and no
/// member may write a global. Executing the member dispatches of one set
/// in any order — or concurrently on disjoint heap shards — produces the
/// same final state as the scheduled order.
#[derive(Clone, Debug, Default)]
pub struct FnParallelism {
    /// `(start, len)` in body-item indices, `len >= 2`: the items
    /// `body[start..start + len]` form one parallel set.
    pub sets: Vec<(usize, usize)>,
    /// Per-pair verdicts over the body's call items (diagnostics; the
    /// refusal tests assert on the block reason).
    pub pairs: Vec<CallPairVerdict>,
}

impl FnParallelism {
    /// The length of the parallel set starting exactly at `body_idx`, if
    /// one does.
    pub fn set_at(&self, body_idx: usize) -> Option<usize> {
        self.sets
            .iter()
            .find(|&&(start, _)| start == body_idx)
            .map(|&(_, len)| len)
    }
}

/// The per-fused-function subtree-independence verdicts of a whole fused
/// program (recorded on `FusedProgram::par`, indexed by `FusedFnId`).
#[derive(Clone, Debug, Default)]
pub struct SubtreeIndependence {
    /// One entry per fused function, in function-table order.
    pub fns: Vec<FnParallelism>,
}

impl SubtreeIndependence {
    /// The facts for fused function `index`.
    pub fn for_fn(&self, index: usize) -> &FnParallelism {
        &self.fns[index]
    }

    /// Whether any fused function has at least one parallel set (i.e.
    /// whether a parallel run of this program can fork at all).
    pub fn any_parallel(&self) -> bool {
        self.fns.iter().any(|f| !f.sets.is_empty())
    }
}

/// Classifies the grouped-call items of one scheduled body for parallel
/// execution.
///
/// `items` has one entry per scheduled body item, in body order:
/// `Some(member_vertices)` for a grouped call (vertex indices into
/// `graph`), `None` for a plain statement. `writes_globals[v]` says
/// whether merged vertex `v`'s summary may write any global (for call
/// vertices this covers the whole subtree traversal via the call
/// automata).
pub fn subtree_independence(
    graph: &DepGraph,
    items: &[Option<Vec<usize>>],
    writes_globals: &[bool],
) -> FnParallelism {
    let independent = |a: &[usize], b: &[usize]| {
        a.iter().all(|&u| {
            b.iter()
                .all(|&v| !graph.has_edge(u, v) && !graph.has_edge(v, u))
        })
    };
    let fork_ok = |members: &[usize]| members.iter().all(|&v| !writes_globals[v]);

    // Pairwise verdicts over all call items (diagnostics).
    let calls: Vec<(usize, &Vec<usize>)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, m)| m.as_ref().map(|members| (i, members)))
        .collect();
    let mut pairs = Vec::new();
    for (i, &(a, ma)) in calls.iter().enumerate() {
        for &(b, mb) in &calls[i + 1..] {
            let blocked = if !independent(ma, mb) {
                Some(ParBlock::Conflict)
            } else if !fork_ok(ma) || !fork_ok(mb) {
                Some(ParBlock::GlobalWrite)
            } else {
                None
            };
            pairs.push(CallPairVerdict { a, b, blocked });
        }
    }

    // Maximal runs of consecutive, pairwise-safe call items.
    let mut sets = Vec::new();
    let mut run: Vec<(usize, &Vec<usize>)> = Vec::new();
    let mut flush = |run: &mut Vec<(usize, &Vec<usize>)>| {
        if run.len() >= 2 {
            sets.push((run[0].0, run.len()));
        }
        run.clear();
    };
    for (i, item) in items.iter().enumerate() {
        match item {
            Some(members) if fork_ok(members) => {
                if !run.iter().all(|&(_, m)| independent(m, members)) {
                    flush(&mut run);
                }
                run.push((i, members));
            }
            _ => flush(&mut run),
        }
    }
    flush(&mut run);
    FnParallelism { sets, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter_frontend::compile;

    fn dep_fixture() -> (Program, Vec<MethodId>) {
        let p = compile(
            r#"
            tree class Node {
                child Node* next;
                int a = 0; int b = 0;
                virtual traversal writeA() {}
                virtual traversal readA() {}
                virtual traversal touchB() {}
            }
            tree class Cons : Node {
                traversal writeA() { a = 1; this->next->writeA(); }
                traversal readA() { b = a; this->next->readA(); }
                traversal touchB() { b = b + 1; this->next->touchB(); }
            }
            tree class End : Node { }
            "#,
        )
        .unwrap();
        let cons = p.class_by_name("Cons").unwrap();
        let seq = vec![
            p.method_on_class(cons, "writeA").unwrap(),
            p.method_on_class(cons, "readA").unwrap(),
        ];
        (p, seq)
    }

    #[test]
    fn merge_bodies_concatenates_in_order() {
        let (p, seq) = dep_fixture();
        let merged = DepGraph::merge_bodies(&p, &seq);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].traversal, 0);
        assert_eq!(merged[3].traversal, 1);
        assert_eq!(merged[1].index, 1);
    }

    #[test]
    fn detects_cross_traversal_data_dependence() {
        let (p, seq) = dep_fixture();
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        // writeA's `a = 1` (0) is a source of readA's `b = a` (2).
        assert!(g.has_edge(0, 2));
        // The recursive calls both touch `a` below: call (1) vs call (3).
        assert!(g.has_edge(1, 3));
        // writeA's statement does not conflict with readA's call (the call
        // only touches descendants' fields, not this node's `a`)... it does:
        // readA's call reads next.a etc., writeA's stmt writes this.a — no
        // overlap.
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn independent_traversals_have_no_cross_edges() {
        let p = compile(
            r#"
            tree class Node {
                child Node* next;
                int a = 0; int b = 0;
                virtual traversal incA() {}
                virtual traversal incB() {}
            }
            tree class Cons : Node {
                traversal incA() { a = a + 1; this->next->incA(); }
                traversal incB() { b = b + 1; this->next->incB(); }
            }
            tree class End : Node { }
            "#,
        )
        .unwrap();
        let cons = p.class_by_name("Cons").unwrap();
        let seq = vec![
            p.method_on_class(cons, "incA").unwrap(),
            p.method_on_class(cons, "incB").unwrap(),
        ];
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        for u in 0..2 {
            for v in 2..4 {
                assert!(!g.has_edge(u, v), "{u} -> {v} should be absent");
            }
        }
        // Within incA, `a = a + 1` and the recursive call are independent
        // (the call only touches next's subtree).
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn control_dependence_pins_returns() {
        let p = compile(
            r#"
            tree class A {
                bool stop = false;
                int x = 0;
                int y = 0;
                traversal f() {
                    if (stop) { return; }
                    x = 1;
                    y = 2;
                }
            }
            "#,
        )
        .unwrap();
        let a = p.class_by_name("A").unwrap();
        let seq = vec![p.method_on_class(a, "f").unwrap()];
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        // The conditional return pins both later statements.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        // But x=1 and y=2 stay mutually independent.
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn schedule_groups_consecutively_and_validly() {
        let (p, seq) = dep_fixture();
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        // Group the two calls (vertices 1 and 3) together if legal.
        assert!(!g.reaches_outside(1, 3, &[1, 3]));
        let group_of = vec![0, 1, 2, 1];
        let order = g.schedule(&group_of, 3);
        assert!(g.order_is_valid(&order), "order {order:?}");
        let p1 = order.iter().position(|&v| v == 1).unwrap();
        let p3 = order.iter().position(|&v| v == 3).unwrap();
        assert_eq!(p3, p1 + 1, "grouped calls are consecutive: {order:?}");
    }

    #[test]
    fn dot_output_names_calls_and_statements() {
        let (p, seq) = dep_fixture();
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        let dot = g.to_dot(&merged);
        assert!(dot.contains("digraph deps"));
        assert!(dot.contains("call"));
        assert!(dot.contains("assign"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn sibling_subtree_calls_form_a_parallel_set() {
        let p = compile(
            r#"
            tree class Tree {
                int v = 0;
                virtual traversal bump() {}
            }
            tree class Inner : Tree {
                child Tree* left;
                child Tree* right;
                traversal bump() { v = v + 1; this->left->bump(); this->right->bump(); }
            }
            tree class Leaf : Tree { }
            "#,
        )
        .unwrap();
        let inner = p.class_by_name("Inner").unwrap();
        let seq = vec![p.method_on_class(inner, "bump").unwrap()];
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        // Body items: Stmt(v=v+1), Call(left), Call(right) — vertices 0,1,2.
        let items = vec![None, Some(vec![1]), Some(vec![2])];
        let writes_globals = vec![false, false, false];
        let par = subtree_independence(&g, &items, &writes_globals);
        assert_eq!(par.sets, vec![(1, 2)], "left/right dispatches fork");
        assert_eq!(par.set_at(1), Some(2));
        assert_eq!(par.set_at(2), None);
        assert_eq!(
            par.pairs,
            vec![CallPairVerdict {
                a: 1,
                b: 2,
                blocked: None
            }]
        );
    }

    #[test]
    fn global_accumulator_blocks_the_fork() {
        let p = compile(
            r#"
            global int SUM = 0;
            tree class Tree {
                int v = 0;
                virtual traversal sum() {}
            }
            tree class Inner : Tree {
                child Tree* left;
                child Tree* right;
                traversal sum() { SUM = SUM + v; this->left->sum(); this->right->sum(); }
            }
            tree class Leaf : Tree { }
            "#,
        )
        .unwrap();
        let inner = p.class_by_name("Inner").unwrap();
        let seq = vec![p.method_on_class(inner, "sum").unwrap()];
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        let items = vec![None, Some(vec![1]), Some(vec![2])];
        let writes_globals: Vec<bool> = merged
            .iter()
            .map(|ms| {
                !acc.summary(seq[ms.traversal], ms.index)
                    .global_writes
                    .is_empty_language()
            })
            .collect();
        assert!(writes_globals[1] && writes_globals[2], "calls write SUM");
        let par = subtree_independence(&g, &items, &writes_globals);
        assert!(par.sets.is_empty(), "accumulating siblings must not fork");
        // Both subtrees write SUM, so the pair conflicts outright.
        assert_eq!(par.pairs[0].blocked, Some(ParBlock::Conflict));
    }

    #[test]
    fn reaches_outside_detects_blocking_vertex() {
        let p = compile(
            r#"
            tree class Node {
                child Node* next;
                int a = 0;
                virtual traversal f() {}
                virtual traversal g() {}
            }
            tree class Cons : Node {
                traversal f() { this->next->f(); a = 1; }
                traversal g() { a = 2; this->next->g(); }
            }
            tree class End : Node { }
            "#,
        )
        .unwrap();
        let cons = p.class_by_name("Cons").unwrap();
        let seq = vec![
            p.method_on_class(cons, "f").unwrap(),
            p.method_on_class(cons, "g").unwrap(),
        ];
        let merged = DepGraph::merge_bodies(&p, &seq);
        let mut acc = ProgramAccesses::new(&p);
        let g = DepGraph::build(&mut acc, &seq, &merged);
        // merged: 0 = call f, 1 = a=1, 2 = a=2, 3 = call g.
        // a=1 and a=2 conflict; both calls are on `next`.
        // Grouping the calls requires call(0) ... call(3) with a=1, a=2 in
        // between; 0→3 path through outside vertices does not exist (calls
        // touch only the next subtree, stores touch this.a).
        assert!(!g.reaches_outside(0, 3, &[0, 3]));
        // But a=1 (1) reaches a=2 (2) directly.
        assert!(g.reaches(1, 2));
    }
}
