//! The fusion algorithm (paper §3.3) with type-specific partial fusion and
//! the termination cutoffs of §4.
//!
//! Fusion operates on *sequences of concrete functions* invoked on the same
//! tree node. For each new sequence `L`:
//!
//! 1. **outline + inline** — the bodies are concatenated into a merged
//!    statement list (each statement remembers which traversal copy it
//!    belongs to);
//! 2. **analyse** — a [`DepGraph`] is built from the access automata;
//! 3. **group** — traversing calls on the same child are greedily grouped,
//!    subject to dependence legality (condensation must stay acyclic) and
//!    the cutoffs (max group size, max occurrences of one function);
//! 4. **reorder** — a dependence-respecting schedule is produced in which
//!    grouped calls are adjacent (implicit code motion);
//! 5. **recurse** — every group becomes a dispatch *stub*: for each possible
//!    concrete type of the child, the group's virtual slots resolve to a
//!    concrete sequence which is fused in turn. Sequences are memoised, so
//!    re-encountering one (including the sequence currently being built)
//!    produces a (possibly recursive) call to the existing fused function —
//!    the step that makes fusion profitable and keeps it terminating.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use grafter_frontend::{ClassId, Expr, MethodId, NodePath, Program, Stmt};

use crate::access::ProgramAccesses;
use crate::depgraph::{
    subtree_independence, DepGraph, FnParallelism, MergedStmt, SubtreeIndependence,
};
use crate::explain::{
    BlockCause, CallSite, ConflictKind, EdgeEnd, FusionExplain, FusionVerdict, MissReason,
    PairExplain,
};

/// Index of a fused function within a [`FusedProgram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FusedFnId(pub u32);

/// Index of a dispatch stub within a [`FusedProgram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StubId(pub u32);

/// Tuning knobs of the fusion engine (paper §4).
///
/// The Engine API names this [`FusionOptions`]; both names refer to the
/// same struct. Every knob bounds the type-specific partial fusion
/// algorithm:
///
/// | Knob | Default | Effect |
/// |---|---|---|
/// | `max_group_size` | 8 | longest sequence of traversal functions fused into one |
/// | `max_occurrences` | 5 | how often one static function may repeat within a group |
/// | `grouping` | `true` | `false` disables fusion entirely (the unfused baseline) |
///
/// Construct the baseline with [`FuseOptions::unfused`], or tighten
/// cutoffs with struct-update syntax:
///
/// ```
/// use grafter::FusionOptions;
///
/// let tight = FusionOptions { max_group_size: 2, ..FusionOptions::default() };
/// assert!(tight.grouping);
/// assert!(!FusionOptions::unfused().grouping);
/// ```
#[derive(Clone, Debug)]
pub struct FuseOptions {
    /// Maximum number of traversal functions fused into one sequence
    /// ("limiting the length of a sequence of functions to fuse").
    /// Longer entry sequences split into multiple passes.
    pub max_group_size: usize,
    /// Maximum number of times one static function may appear in a group
    /// ("limiting the number of times any one static function can
    /// appear"). Bounds code growth under mutual recursion.
    pub max_occurrences: usize,
    /// When `false`, no call grouping is performed: the output is the
    /// unfused baseline expressed in the same runtime representation
    /// (one pass over the tree per entry traversal).
    pub grouping: bool,
}

/// The Engine API's name for [`FuseOptions`] (see
/// `Engine::builder().fusion(..)`).
pub type FusionOptions = FuseOptions;

impl Default for FuseOptions {
    fn default() -> Self {
        FuseOptions {
            max_group_size: 8,
            max_occurrences: 5,
            grouping: true,
        }
    }
}

impl FuseOptions {
    /// Options producing the unfused baseline.
    pub fn unfused() -> Self {
        FuseOptions {
            grouping: false,
            ..FuseOptions::default()
        }
    }
}

/// One member of a grouped traversing call.
#[derive(Clone, Debug)]
pub struct CallPart {
    /// Which traversal copy of the enclosing fused function the call
    /// belongs to (its active flag index).
    pub traversal: usize,
    /// The dispatch slot being invoked.
    pub slot: MethodId,
    /// Argument expressions, evaluated in the caller's frame for
    /// `traversal`.
    pub args: Vec<Expr>,
}

/// An element of a fused function's scheduled body.
#[derive(Clone, Debug)]
pub enum ScheduledItem {
    /// A simple statement, guarded by its traversal's active flag.
    Stmt {
        /// Flag index of the traversal copy the statement came from.
        traversal: usize,
        /// The statement (locals refer to the frame of `traversal`).
        stmt: Stmt,
    },
    /// A grouped traversing call, lowered to a dispatch through `stub`.
    Call {
        /// The common receiver path of the grouped calls.
        receiver: NodePath,
        /// The stub dispatching to the fused child sequence.
        stub: StubId,
        /// The grouped calls in execution order; part `i` drives child
        /// flag `i`.
        parts: Vec<CallPart>,
    },
}

/// A fused function: the fusion of one sequence of concrete functions.
#[derive(Clone, Debug)]
pub struct FusedFn {
    /// The concrete functions fused, in order; element `i` is traversal
    /// copy `i`.
    pub seq: Vec<MethodId>,
    /// Static type of the traversed-node parameter (least common ancestor
    /// of the sequence's receiver classes).
    pub receiver_class: ClassId,
    /// The scheduled body.
    pub body: Vec<ScheduledItem>,
    /// Generated name, e.g. `_fuse__F3F4`.
    pub name: String,
}

/// A dispatch stub: maps each possible concrete receiver type to the fused
/// function for the correspondingly resolved sequence (the paper's
/// `__stubN` virtual methods).
#[derive(Clone, Debug)]
pub struct Stub {
    /// Static type the stub dispatches on.
    pub receiver_static: ClassId,
    /// The virtual slots of the grouped sequence.
    pub slots: Vec<MethodId>,
    /// Concrete type → fused function.
    pub targets: Vec<(ClassId, FusedFnId)>,
    /// Generated name, e.g. `__stub1`.
    pub name: String,
}

impl Stub {
    /// The fused function for a concrete receiver class, if resolvable.
    pub fn target_for(&self, class: ClassId) -> Option<FusedFnId> {
        self.targets
            .iter()
            .find(|(c, _)| *c == class)
            .map(|&(_, f)| f)
    }
}

/// Static fusion-coverage statistics, accumulated over every *pair* of
/// traversing calls that share a receiver path within one merged body —
/// the candidates fusion could in principle turn into a single child
/// visit. Counted once per distinct fused function (bodies are memoised),
/// so the numbers are static code properties, not dynamic visit counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionCoverage {
    /// Same-receiver call pairs grouped into one dispatch (a saved visit).
    pub fused_pairs: usize,
    /// Pairs that were *legal* to fuse in isolation — common dispatch
    /// supertype, condensation stays acyclic — but were left ungrouped
    /// (greedy order, cutoffs, or fusion disabled).
    pub missed_pairs: usize,
    /// Pairs no legal grouping could fuse (no common supertype, or a
    /// dependence cycle between them).
    pub blocked_pairs: usize,
}

impl FusionCoverage {
    /// All statically fusable same-receiver pairs, fused or not.
    pub fn candidate_pairs(&self) -> usize {
        self.fused_pairs + self.missed_pairs + self.blocked_pairs
    }
}

/// The output of fusion: a set of mutually recursive fused functions plus
/// the dispatch stubs connecting them, with a designated entry stub.
#[derive(Clone, Debug)]
pub struct FusedProgram {
    /// The source program (class/field/method tables are shared with the
    /// fused code, and — via `Arc` — with every heap laid out for it).
    pub program: Arc<Program>,
    /// All generated fused functions.
    pub functions: Vec<FusedFn>,
    /// All generated dispatch stubs.
    pub stubs: Vec<Stub>,
    /// The stubs to invoke on the tree root, in order. Fused output has a
    /// single entry covering the whole sequence; the unfused baseline has
    /// one entry per traversal (separate passes).
    pub entries: Vec<StubId>,
    /// The entry sequence's dispatch slots.
    pub entry_slots: Vec<MethodId>,
    /// Static coverage accounting of the grouping stage.
    pub coverage: FusionCoverage,
    /// Per-pair fusability verdicts behind [`FusedProgram::coverage`]: one
    /// span-carrying record per candidate pair, with the reason it fused,
    /// was missed, or was blocked. Category totals equal `coverage`.
    pub explain: FusionExplain,
    /// Subtree-independence verdicts per fused function (indexed by
    /// [`FusedFnId`]): which runs of sibling dispatches are parallel-safe.
    /// Computed from the same dependence graphs that scheduled the bodies.
    pub par: SubtreeIndependence,
}

impl FusedProgram {
    /// The fused function table entry.
    pub fn function(&self, id: FusedFnId) -> &FusedFn {
        &self.functions[id.0 as usize]
    }

    /// The stub table entry.
    pub fn stub(&self, id: StubId) -> &Stub {
        &self.stubs[id.0 as usize]
    }

    /// Whether fusion achieved a single visit per child everywhere: the
    /// whole entry sequence starts as one pass and no fused function's body
    /// contains two grouped calls with the same receiver path.
    pub fn fully_fused(&self) -> bool {
        self.entries.len() == 1
            && self.functions.iter().all(|f| {
                let receivers: Vec<Vec<_>> = f
                    .body
                    .iter()
                    .filter_map(|item| match item {
                        ScheduledItem::Call { receiver, .. } => Some(receiver.fields().collect()),
                        ScheduledItem::Stmt { .. } => None,
                    })
                    .collect();
                let mut uniq = receivers.clone();
                uniq.sort();
                uniq.dedup();
                uniq.len() == receivers.len()
            })
    }

    /// Total number of generated fused functions.
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// The subtree-independence facts of one fused function.
    pub fn parallelism(&self, id: FusedFnId) -> &FnParallelism {
        self.par.for_fn(id.0 as usize)
    }
}

/// An error reported by the fusion driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuseError {
    /// The requested root class does not exist.
    UnknownClass(String),
    /// A requested traversal does not exist on the root class.
    UnknownTraversal(String, String),
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::UnknownClass(c) => write!(f, "unknown tree class `{c}`"),
            FuseError::UnknownTraversal(c, t) => {
                write!(f, "no traversal `{t}` on class `{c}`")
            }
        }
    }
}

impl std::error::Error for FuseError {}

/// Fuses the traversal sequence `traversals`, invoked back-to-back on a
/// root of static type `root_class`.
///
/// This is the top-level driver corresponding to the paper's treatment of
/// consecutive traversal calls in `main` (Fig. 2, lines 51–52).
///
/// # Errors
///
/// Returns [`FuseError`] if the class or a traversal name does not resolve.
pub fn fuse(
    program: &Program,
    root_class: &str,
    traversals: &[&str],
    opts: &FuseOptions,
) -> Result<FusedProgram, FuseError> {
    let class = program
        .class_by_name(root_class)
        .ok_or_else(|| FuseError::UnknownClass(root_class.to_string()))?;
    let mut slots = Vec::new();
    for t in traversals {
        let m = program
            .method_on_class(class, t)
            .ok_or_else(|| FuseError::UnknownTraversal(root_class.to_string(), t.to_string()))?;
        slots.push(program.methods[m.index()].slot);
    }
    Ok(fuse_slots(program, class, &slots, opts))
}

/// Fuses a sequence of dispatch slots on a root of static type `class`.
///
/// Like [`fuse`] but with resolved ids; useful when driving the compiler
/// programmatically.
pub fn fuse_slots(
    program: &Program,
    class: ClassId,
    slots: &[MethodId],
    opts: &FuseOptions,
) -> FusedProgram {
    let mut fuser = Fuser {
        program,
        accesses: ProgramAccesses::new(program),
        opts: opts.clone(),
        functions: Vec::new(),
        fn_keys: HashMap::new(),
        stubs: Vec::new(),
        stub_keys: HashMap::new(),
        coverage: FusionCoverage::default(),
        explain: FusionExplain::default(),
        par: Vec::new(),
    };
    let entries = if opts.grouping {
        vec![fuser.stub_for(class, slots.to_vec())]
    } else {
        // Unfused baseline: each traversal is dispatched separately, so the
        // tree is walked once per traversal just like the original program.
        slots
            .iter()
            .map(|&slot| fuser.stub_for(class, vec![slot]))
            .collect()
    };
    FusedProgram {
        program: Arc::new(program.clone()),
        functions: fuser.functions,
        stubs: fuser.stubs,
        entries,
        entry_slots: slots.to_vec(),
        coverage: fuser.coverage,
        explain: fuser.explain,
        par: SubtreeIndependence { fns: fuser.par },
    }
}

struct Fuser<'p> {
    program: &'p Program,
    accesses: ProgramAccesses<'p>,
    opts: FuseOptions,
    functions: Vec<FusedFn>,
    fn_keys: HashMap<Vec<MethodId>, FusedFnId>,
    stubs: Vec<Stub>,
    stub_keys: HashMap<(ClassId, Vec<MethodId>), StubId>,
    coverage: FusionCoverage,
    /// Per-pair verdicts behind `coverage`, pushed in discovery order.
    explain: FusionExplain,
    /// Parallelism facts per fused function, filled as bodies finish.
    par: Vec<FnParallelism>,
}

impl Fuser<'_> {
    /// Returns the stub dispatching `slots` on static type `class`,
    /// creating it (and every fused function it needs) on first use.
    fn stub_for(&mut self, class: ClassId, slots: Vec<MethodId>) -> StubId {
        let key = (class, slots.clone());
        if let Some(&id) = self.stub_keys.get(&key) {
            return id;
        }
        let id = StubId(self.stubs.len() as u32);
        self.stubs.push(Stub {
            receiver_static: class,
            slots: slots.clone(),
            targets: Vec::new(),
            name: format!("__stub{}", self.stubs.len()),
        });
        self.stub_keys.insert(key, id);
        for concrete in self.program.concrete_subtypes(class) {
            let mut seq = Vec::with_capacity(slots.len());
            let mut ok = true;
            for &slot in &slots {
                match self.program.resolve_virtual(concrete, slot) {
                    Some(m) => seq.push(m),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let fid = self.fused_for(seq);
            self.stubs[id.0 as usize].targets.push((concrete, fid));
        }
        id
    }

    /// Returns the fused function for a sequence of concrete functions,
    /// generating it on first encounter. Re-entrant: a sequence that
    /// reaches itself recursively gets a recursive call through its own
    /// stub (the id is registered before the body is built).
    fn fused_for(&mut self, seq: Vec<MethodId>) -> FusedFnId {
        if let Some(&id) = self.fn_keys.get(&seq) {
            return id;
        }
        let id = FusedFnId(self.functions.len() as u32);
        let receiver_class = self
            .program
            .least_common_ancestor(
                &seq.iter()
                    .map(|m| self.program.methods[m.index()].class)
                    .collect::<Vec<_>>(),
            )
            .unwrap_or(self.program.methods[seq[0].index()].class);
        let name = format!(
            "_fuse_{}",
            seq.iter().map(|m| format!("_F{}", m.0)).collect::<String>()
        );
        self.functions.push(FusedFn {
            seq: seq.clone(),
            receiver_class,
            body: Vec::new(),
            name,
        });
        self.fn_keys.insert(seq.clone(), id);
        self.par.push(FnParallelism::default());

        let merged = DepGraph::merge_bodies(self.program, &seq);
        let graph = DepGraph::build(&mut self.accesses, &seq, &merged);
        let (group_of, n_groups) = self.group_calls(&seq, &merged, &graph);
        let order = graph.schedule(&group_of, n_groups);
        debug_assert!(graph.order_is_valid(&order));

        let (body, members) = self.emit_body(&seq, &merged, &group_of, &order);
        // Subtree independence: which sibling dispatches of this body are
        // free of cross-subtree conflicts (the dependence edges) and of
        // global writes (the parallel workers' ordering hazard).
        let writes_globals: Vec<bool> = merged
            .iter()
            .map(|ms| {
                !self
                    .accesses
                    .summary(seq[ms.traversal], ms.index)
                    .global_writes
                    .is_empty_language()
            })
            .collect();
        self.par[id.0 as usize] = subtree_independence(&graph, &members, &writes_globals);
        self.functions[id.0 as usize].body = body;
        id
    }

    /// Greedy call grouping (paper §4): pick an ungrouped call, accumulate
    /// other ungrouped calls on the same child while the condensed graph
    /// stays acyclic and the cutoffs hold.
    fn group_calls(
        &mut self,
        seq: &[MethodId],
        merged: &[MergedStmt],
        graph: &DepGraph,
    ) -> (Vec<usize>, usize) {
        let n = merged.len();
        // Initially every vertex is its own group.
        let mut group_of: Vec<usize> = (0..n).collect();

        let call_vertices: Vec<usize> = (0..n)
            .filter(|&v| matches!(merged[v].stmt, Stmt::Traverse(_)))
            .collect();
        let receiver_key = |v: usize| -> Vec<u32> {
            let Stmt::Traverse(call) = &merged[v].stmt else {
                unreachable!("call vertices are traverses");
            };
            call.receiver.fields().map(|f| f.0).collect()
        };
        let slot_of = |v: usize| -> MethodId {
            let Stmt::Traverse(call) = &merged[v].stmt else {
                unreachable!("call vertices are traverses");
            };
            call.slot
        };
        let static_target = |fuser: &Self, v: usize| -> Option<ClassId> {
            let Stmt::Traverse(call) = &merged[v].stmt else {
                unreachable!("call vertices are traverses");
            };
            let owner = fuser.program.methods[seq[merged[v].traversal].index()].class;
            fuser.program.path_target_type(owner, &call.receiver)
        };

        let mut grouped = vec![false; n];
        for &u in &call_vertices {
            if !self.opts.grouping {
                break; // skip greedy grouping; coverage below still counts
            }
            if grouped[u] {
                continue;
            }
            grouped[u] = true;
            let mut members = vec![u];
            let key = receiver_key(u);
            let mut types = vec![static_target(self, u).unwrap_or(ClassId(0))];
            for &v in &call_vertices {
                if grouped[v] || receiver_key(v) != key {
                    continue;
                }
                if members.len() + 1 > self.opts.max_group_size {
                    break;
                }
                let occurrences = members
                    .iter()
                    .filter(|&&m| slot_of(m) == slot_of(v))
                    .count();
                if occurrences + 1 > self.opts.max_occurrences {
                    continue;
                }
                // The grouped calls need a common supertype to dispatch on.
                let Some(vt) = static_target(self, v) else {
                    continue;
                };
                let mut tentative_types = types.clone();
                tentative_types.push(vt);
                if self
                    .program
                    .least_common_ancestor(&tentative_types)
                    .is_none()
                {
                    continue;
                }
                // Tentatively merge and keep only if the condensation stays
                // acyclic.
                let saved = group_of[v];
                group_of[v] = group_of[u];
                if condensation_acyclic(graph, &group_of) {
                    grouped[v] = true;
                    members.push(v);
                    types = tentative_types;
                } else {
                    group_of[v] = saved;
                }
            }
        }

        // Re-number groups densely (before coverage, so fused verdicts can
        // name the dense group id the scheduled body will use).
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for g in group_of.iter_mut() {
            let next = remap.len();
            *g = *remap.entry(*g).or_insert(next);
        }
        let n_groups = remap.len();

        // Coverage accounting + explain: every same-receiver pair of
        // traversing calls is a static fusion candidate. Pairs landing in
        // the same group were fused; the rest are classified by whether
        // merging just the two of them would have been legal (a common
        // dispatch supertype exists and the condensed graph stays acyclic)
        // — "missed" if so, "blocked" otherwise — and each pair gets a
        // span-carrying verdict recording the specific reason.
        let fn_name = self
            .functions
            .last()
            .expect("group_calls runs for the function just registered")
            .name
            .clone();
        for (i, &u) in call_vertices.iter().enumerate() {
            for &v in &call_vertices[i + 1..] {
                if receiver_key(u) != receiver_key(v) {
                    continue;
                }
                let verdict = if self.opts.grouping && group_of[u] == group_of[v] {
                    self.coverage.fused_pairs += 1;
                    FusionVerdict::Fused { group: group_of[u] }
                } else {
                    let targets = (static_target(self, u), static_target(self, v));
                    let legal = match targets {
                        (Some(a), Some(b)) => {
                            self.program.least_common_ancestor(&[a, b]).is_some() && {
                                let mut pair: Vec<usize> = (0..n).collect();
                                pair[v] = u;
                                condensation_acyclic(graph, &pair)
                            }
                        }
                        _ => false,
                    };
                    if legal {
                        self.coverage.missed_pairs += 1;
                        let reason = if !self.opts.grouping {
                            MissReason::GroupingDisabled
                        } else {
                            let size = |g: usize| {
                                call_vertices.iter().filter(|&&w| group_of[w] == g).count()
                            };
                            let combined: Vec<usize> = call_vertices
                                .iter()
                                .copied()
                                .filter(|&w| {
                                    group_of[w] == group_of[u] || group_of[w] == group_of[v]
                                })
                                .collect();
                            let repeats = combined.iter().any(|&w| {
                                combined
                                    .iter()
                                    .filter(|&&x| slot_of(x) == slot_of(w))
                                    .count()
                                    > self.opts.max_occurrences
                            });
                            if size(group_of[u]) + size(group_of[v]) > self.opts.max_group_size {
                                MissReason::GroupSizeCutoff {
                                    limit: self.opts.max_group_size,
                                }
                            } else if repeats {
                                MissReason::OccurrenceCutoff {
                                    limit: self.opts.max_occurrences,
                                }
                            } else {
                                MissReason::GreedyOrder
                            }
                        };
                        FusionVerdict::Missed { reason }
                    } else {
                        self.coverage.blocked_pairs += 1;
                        let method_name =
                            |w: usize| self.program.methods[slot_of(w).index()].name.clone();
                        let cause = match targets {
                            (None, _) => BlockCause::CrossHierarchy {
                                method: method_name(u),
                            },
                            (_, None) => BlockCause::CrossHierarchy {
                                method: method_name(v),
                            },
                            (Some(a), Some(b)) => {
                                if self.program.least_common_ancestor(&[a, b]).is_none() {
                                    BlockCause::NoCommonSupertype {
                                        left: self.program.classes[a.index()].name.clone(),
                                        right: self.program.classes[b.index()].name.clone(),
                                    }
                                } else {
                                    self.cycle_cause(seq, merged, graph, u, v)
                                }
                            }
                        };
                        FusionVerdict::Blocked { cause }
                    }
                };
                self.explain.pairs.push(PairExplain {
                    fused_fn: fn_name.clone(),
                    receiver: render_receiver(self.program, u, merged),
                    left: call_site(self.program, merged, u),
                    right: call_site(self.program, merged, v),
                    verdict,
                });
            }
        }

        (group_of, n_groups)
    }

    /// Names the dependence edge that closes the condensation cycle when
    /// the pair `(u, v)` is merged: the first edge of a shortest dependence
    /// path `u → … → v` through vertices outside the pair (with forward-only
    /// edges, such a path is exactly what makes the pair-merged condensation
    /// cyclic), classified by re-running the access-automata intersections
    /// that built the graph.
    fn cycle_cause(
        &mut self,
        seq: &[MethodId],
        merged: &[MergedStmt],
        graph: &DepGraph,
        u: usize,
        v: usize,
    ) -> BlockCause {
        let n = merged.len();
        // BFS from u towards v, never stepping *through* v (intermediate
        // vertices must be outside the pair; the final hop lands on v).
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        let mut found = false;
        for &s in graph.succs(u) {
            if s != v && parent[s].is_none() {
                parent[s] = Some(u);
                queue.push_back(s);
            }
        }
        'bfs: while let Some(x) = queue.pop_front() {
            for &s in graph.succs(x) {
                if s == v {
                    parent[v] = Some(x);
                    found = true;
                    break 'bfs;
                }
                if parent[s].is_none() {
                    parent[s] = Some(x);
                    queue.push_back(s);
                }
            }
        }
        let (from, to) = if found {
            // Walk back from v to recover the first hop out of u.
            let mut hop = v;
            while let Some(p) = parent[hop] {
                if p == u {
                    break;
                }
                hop = p;
            }
            (u, hop)
        } else {
            // Defensive: with forward-only edges this should not happen;
            // fall back to the direct pair edge.
            (u, v)
        };
        let kind = self.classify_edge(seq, merged, from, to);
        BlockCause::DependenceCycle {
            kind,
            from: edge_end(self.program, merged, from),
            to: edge_end(self.program, merged, to),
        }
    }

    /// Classifies the dependence edge `(a, b)` by re-running the individual
    /// automata intersections of [`AccessSummary::conflicts_with`], data
    /// conflicts first (more informative than the control fallback).
    ///
    /// [`AccessSummary::conflicts_with`]: crate::AccessSummary::conflicts_with
    fn classify_edge(
        &mut self,
        seq: &[MethodId],
        merged: &[MergedStmt],
        a: usize,
        b: usize,
    ) -> ConflictKind {
        let same_frame = merged[a].traversal == merged[b].traversal;
        let sa = self
            .accesses
            .summary(seq[merged[a].traversal], merged[a].index)
            .clone();
        let sb = self
            .accesses
            .summary(seq[merged[b].traversal], merged[b].index)
            .clone();
        let locals_hit = |x: &[grafter_frontend::LocalId], y: &[grafter_frontend::LocalId]| {
            x.iter().any(|l| y.contains(l))
        };
        if sa.tree_writes.intersects(&sb.tree_reads) {
            ConflictKind::TreeWriteRead
        } else if sa.tree_writes.intersects(&sb.tree_writes) {
            ConflictKind::TreeWriteWrite
        } else if sa.tree_reads.intersects(&sb.tree_writes) {
            ConflictKind::TreeReadWrite
        } else if sa.global_writes.intersects(&sb.global_reads) {
            ConflictKind::GlobalWriteRead
        } else if sa.global_writes.intersects(&sb.global_writes) {
            ConflictKind::GlobalWriteWrite
        } else if sa.global_reads.intersects(&sb.global_writes) {
            ConflictKind::GlobalReadWrite
        } else if same_frame
            && (locals_hit(&sa.local_writes, &sb.local_reads)
                || locals_hit(&sa.local_writes, &sb.local_writes)
                || locals_hit(&sa.local_reads, &sb.local_writes))
        {
            ConflictKind::Local
        } else {
            ConflictKind::Control
        }
    }

    /// Emits the scheduled body, turning each call group into a stub
    /// dispatch (recursing into `stub_for` / `fused_for`). Also returns,
    /// per body item, the merged-vertex members of each `Call` item
    /// (`None` for `Stmt` items) — the input of the subtree-independence
    /// analysis.
    #[allow(clippy::type_complexity)]
    fn emit_body(
        &mut self,
        seq: &[MethodId],
        merged: &[MergedStmt],
        group_of: &[usize],
        order: &[usize],
    ) -> (Vec<ScheduledItem>, Vec<Option<Vec<usize>>>) {
        let mut emitted_groups: Vec<bool> = vec![false; merged.len() + 1];
        let mut body = Vec::new();
        let mut item_members = Vec::new();
        for &v in order {
            match &merged[v].stmt {
                Stmt::Traverse(_) => {
                    let g = group_of[v];
                    if emitted_groups[g] {
                        continue;
                    }
                    emitted_groups[g] = true;
                    // Collect members of the group in merged order.
                    let members: Vec<usize> =
                        (0..merged.len()).filter(|&w| group_of[w] == g).collect();
                    let mut parts = Vec::new();
                    let mut types = Vec::new();
                    let mut receiver = NodePath::this();
                    for &w in &members {
                        let Stmt::Traverse(call) = &merged[w].stmt else {
                            unreachable!("group members are traverses");
                        };
                        receiver = call.receiver.clone();
                        let owner = self.program.methods[seq[merged[w].traversal].index()].class;
                        if let Some(t) = self.program.path_target_type(owner, &call.receiver) {
                            types.push(t);
                        }
                        parts.push(CallPart {
                            traversal: merged[w].traversal,
                            slot: call.slot,
                            args: call.args.clone(),
                        });
                    }
                    let static_ty = self
                        .program
                        .least_common_ancestor(&types)
                        .expect("grouping guarantees a common supertype");
                    let slots: Vec<MethodId> = parts.iter().map(|p| p.slot).collect();
                    let stub = self.stub_for(static_ty, slots);
                    body.push(ScheduledItem::Call {
                        receiver,
                        stub,
                        parts,
                    });
                    item_members.push(Some(members));
                }
                stmt => {
                    body.push(ScheduledItem::Stmt {
                        traversal: merged[v].traversal,
                        stmt: stmt.clone(),
                    });
                    item_members.push(None);
                }
            }
        }
        (body, item_members)
    }
}

/// The explain record of one call site: the invoked slot's name plus the
/// source span of the `receiver->method(...)` statement.
fn call_site(program: &Program, merged: &[MergedStmt], v: usize) -> CallSite {
    let Stmt::Traverse(call) = &merged[v].stmt else {
        unreachable!("call sites are traverses");
    };
    CallSite {
        method: program.methods[call.slot.index()].name.clone(),
        span: call.span,
    }
}

/// Renders the receiver path of call vertex `v` as source-like text,
/// e.g. `this->left` or `(Inner*)this->kids`.
fn render_receiver(program: &Program, v: usize, merged: &[MergedStmt]) -> String {
    let Stmt::Traverse(call) = &merged[v].stmt else {
        unreachable!("call sites are traverses");
    };
    let mut out = match call.receiver.base_cast {
        Some(c) => format!("({}*)this", program.classes[c.index()].name),
        None => "this".to_string(),
    };
    for f in call.receiver.fields() {
        out.push_str("->");
        out.push_str(&program.fields[f.index()].name);
    }
    out
}

/// Describes one endpoint of a named dependence edge.
fn edge_end(program: &Program, merged: &[MergedStmt], v: usize) -> EdgeEnd {
    let what = match &merged[v].stmt {
        Stmt::Traverse(call) => {
            format!("call `{}`", program.methods[call.slot.index()].name)
        }
        _ => format!(
            "statement {} of traversal {}",
            merged[v].index, merged[v].traversal
        ),
    };
    EdgeEnd {
        traversal: merged[v].traversal,
        index: merged[v].index,
        what,
    }
}

/// Whether condensing `group_of` over `graph` yields an acyclic graph.
fn condensation_acyclic(graph: &DepGraph, group_of: &[usize]) -> bool {
    let n = group_of.len();
    // Dense renumbering of group ids.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    for &g in group_of {
        let next = remap.len();
        remap.entry(g).or_insert(next);
    }
    let k = remap.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut indeg = vec![0usize; k];
    for u in 0..n {
        for &v in graph.succs(u) {
            let (gu, gv) = (remap[&group_of[u]], remap[&group_of[v]]);
            if gu != gv && !succs[gu].contains(&gv) {
                succs[gu].push(gv);
                indeg[gv] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..k).filter(|&g| indeg[g] == 0).collect();
    let mut seen = 0;
    while let Some(g) = ready.pop() {
        seen += 1;
        for &s in &succs[g] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    seen == k
}
