//! Integration tests for the fusion engine.

use grafter::{cpp, fuse, FuseOptions, ScheduledItem};
use grafter_frontend::compile;

const FIG2: &str = r#"
    global int CHAR_WIDTH = 8;
    struct String { int Length; }
    struct BorderInfo { int Size; }
    tree class Element {
        child Element* Next;
        int Height = 0; int Width = 0;
        int MaxHeight = 0; int TotalWidth = 0;
        virtual traversal computeWidth() {}
        virtual traversal computeHeight() {}
    }
    tree class TextBox : public Element {
        String Text;
        traversal computeWidth() {
            Next->computeWidth();
            Width = Text.Length;
            TotalWidth = Next.Width + Width;
        }
        traversal computeHeight() {
            Next->computeHeight();
            Height = Text.Length * (Width / CHAR_WIDTH) + 1;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class Group : public Element {
        child Element* Content;
        BorderInfo Border;
        traversal computeWidth() {
            Content->computeWidth();
            Next->computeWidth();
            Width = Content.Width + Border.Size * 2;
            TotalWidth = Width + Next.Width;
        }
        traversal computeHeight() {
            Content->computeHeight();
            Next->computeHeight();
            Height = Content.MaxHeight + Border.Size * 2;
            MaxHeight = Height;
            if (Next.Height > Height) { MaxHeight = Next.Height; }
        }
    }
    tree class End : public Element { }
"#;

#[test]
fn fuses_figure2_completely() {
    let p = compile(FIG2).unwrap();
    let fp = fuse(
        &p,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    // computeHeight depends on computeWidth at each node (Height reads
    // Width), but the traversals still fuse into single passes: statements
    // reorder so both traversals' calls group per child.
    assert!(fp.fully_fused(), "{}", cpp::emit(&fp));
    // The entry stub covers all four concrete types.
    assert_eq!(fp.stub(fp.entries[0]).targets.len(), 4);
}

#[test]
fn unfused_baseline_keeps_separate_visits() {
    let p = compile(FIG2).unwrap();
    let fp = fuse(
        &p,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::unfused(),
    )
    .unwrap();
    assert!(!fp.fully_fused());
    // Every fused function is a singleton original traversal.
    for f in &fp.functions {
        assert_eq!(f.seq.len(), 1);
    }
}

#[test]
fn fusion_is_blocked_by_true_dependences() {
    // f pulls `x` up post-order (reads kid.x after its call); g pushes `x`
    // down pre-order (writes kid.x before its call, which reads kid.x at
    // the next level). The chain f.call -> f.store -> g.store -> g.call
    // passes through statements outside any group, so the two calls can
    // never be adjacent: grouping is illegal and fusion must keep two
    // visits of `kid`.
    let src = r#"
        tree class N {
            child N* kid;
            int x = 0;
            virtual traversal f() {}
            virtual traversal g() {}
        }
        tree class C : N {
            traversal f() {
                this->kid->f();
                x = this->kid.x;
            }
            traversal g() {
                this->kid.x = x + 1;
                this->kid->g();
            }
        }
        tree class E : N { }
    "#;
    let p = compile(src).unwrap();
    let fp = fuse(&p, "N", &["f", "g"], &FuseOptions::default()).unwrap();
    let c = p.class_by_name("C").unwrap();
    let cf = p.method_on_class(c, "f").unwrap();
    let cg = p.method_on_class(c, "g").unwrap();
    let pair = fp
        .functions
        .iter()
        .find(|f| f.seq == vec![cf, cg])
        .expect("pair function exists");
    let n_calls = pair
        .body
        .iter()
        .filter(|i| matches!(i, ScheduledItem::Call { .. }))
        .count();
    assert_eq!(n_calls, 2, "{}", cpp::emit(&fp));
    assert!(!fp.fully_fused());
}

#[test]
fn type_specific_partial_fusion() {
    // On type A the two traversals conflict (fusion blocked at the call
    // level); on type B they are independent and fuse. Type-specific
    // fusion handles each concrete type separately.
    let src = r#"
        tree class N {
            child N* kid;
            int x = 0;
            int y = 0;
            virtual traversal f() {}
            virtual traversal g() {}
        }
        tree class A : N {
            traversal f() {
                this->kid->f();
                x = this->kid.x;
            }
            traversal g() {
                this->kid.x = x + 1;
                this->kid->g();
            }
        }
        tree class B : N {
            traversal f() { x = x + 1; this->kid->f(); }
            traversal g() { y = y + 1; this->kid->g(); }
        }
        tree class E : N { }
    "#;
    let p = compile(src).unwrap();
    let fp = fuse(&p, "N", &["f", "g"], &FuseOptions::default()).unwrap();
    let a = p.class_by_name("A").unwrap();
    let b = p.class_by_name("B").unwrap();
    let af = p.method_on_class(a, "f").unwrap();
    let ag = p.method_on_class(a, "g").unwrap();
    let bf = p.method_on_class(b, "f").unwrap();
    let bg = p.method_on_class(b, "g").unwrap();

    let a_pair = fp.functions.iter().find(|f| f.seq == vec![af, ag]).unwrap();
    let b_pair = fp.functions.iter().find(|f| f.seq == vec![bf, bg]).unwrap();
    let calls = |f: &grafter::FusedFn| {
        f.body
            .iter()
            .filter(|i| matches!(i, ScheduledItem::Call { .. }))
            .count()
    };
    assert_eq!(calls(a_pair), 2, "A cannot fuse: {}", cpp::emit(&fp));
    assert_eq!(calls(b_pair), 1, "B fuses: {}", cpp::emit(&fp));
}

#[test]
fn recursive_sequences_reuse_existing_functions() {
    let p = compile(FIG2).unwrap();
    let fp = fuse(
        &p,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    // The TextBox pair calls Next->(width+height) which is the same slot
    // sequence as the entry: the same stub must be reused, not duplicated.
    let mut stub_keys: Vec<_> = fp
        .stubs
        .iter()
        .map(|s| (s.receiver_static, s.slots.clone()))
        .collect();
    let before = stub_keys.len();
    stub_keys.sort();
    stub_keys.dedup();
    assert_eq!(stub_keys.len(), before, "stubs are memoised");
    // Fusion terminated with a small number of functions (4 types x 1
    // pair + singletons at most).
    assert!(fp.n_functions() <= 12, "got {}", fp.n_functions());
}

#[test]
fn multiple_calls_on_same_child_respect_occurrence_cutoff() {
    // Each traversal calls `go` twice on the same child; fusing the pair
    // would want a group of 4 copies of `go` — the occurrence cutoff (3)
    // must split it.
    let src = r#"
        tree class N {
            child N* kid;
            int x = 0;
            virtual traversal go() {}
        }
        tree class C : N {
            traversal go() {
                this->kid->go();
                this->kid->go();
                x = x + 1;
            }
        }
        tree class E : N { }
    "#;
    let p = compile(src).unwrap();
    let opts = FuseOptions {
        max_occurrences: 3,
        ..FuseOptions::default()
    };
    let fp = fuse(&p, "N", &["go", "go"], &opts).unwrap();
    // Groups never contain more than 3 copies of C::go.
    for f in &fp.functions {
        for item in &f.body {
            if let ScheduledItem::Call { parts, .. } = item {
                assert!(parts.len() <= 3, "group of {} exceeds cutoff", parts.len());
            }
        }
    }
    // And fusion terminated.
    assert!(fp.n_functions() < 40);
}

#[test]
fn group_size_cutoff_bounds_sequences() {
    let src = r#"
        tree class N {
            child N* kid;
            int x = 0;
            virtual traversal go() {}
        }
        tree class C : N {
            traversal go() {
                this->kid->go();
                this->kid->go();
                x = x + 1;
            }
        }
        tree class E : N { }
    "#;
    let p = compile(src).unwrap();
    let opts = FuseOptions {
        max_group_size: 2,
        max_occurrences: 8,
        ..FuseOptions::default()
    };
    let fp = fuse(&p, "N", &["go", "go"], &opts).unwrap();
    for f in &fp.functions {
        assert!(f.seq.len() <= 2);
        for item in &f.body {
            if let ScheduledItem::Call { parts, .. } = item {
                assert!(parts.len() <= 2);
            }
        }
    }
}

#[test]
fn mutation_traversals_fuse_when_safe() {
    // A desugaring-style pass that rewrites subtrees, followed by a
    // counting pass. The counter reads fields the rewriter writes, so
    // order is preserved; both traverse the same child and can group.
    let src = r#"
        tree class Node {
            child Node* next;
            int kind = 0;
            int count = 0;
            virtual traversal desugar() {}
            virtual traversal tally() {}
        }
        tree class Cons : Node {
            child Leaf* payload;
            traversal desugar() {
                if (kind == 1) {
                    delete this->payload;
                    this->payload = new Leaf();
                    kind = 2;
                }
                this->next->desugar();
            }
            traversal tally() {
                count = kind;
                this->next->tally();
            }
        }
        tree class Leaf : Node { int v = 0; }
        tree class End : Node { }
    "#;
    let p = compile(src).unwrap();
    let fp = fuse(&p, "Node", &["desugar", "tally"], &FuseOptions::default()).unwrap();
    let cons = p.class_by_name("Cons").unwrap();
    let d = p.method_on_class(cons, "desugar").unwrap();
    let t = p.method_on_class(cons, "tally").unwrap();
    let pair = fp.functions.iter().find(|f| f.seq == vec![d, t]).unwrap();
    let n_calls = pair
        .body
        .iter()
        .filter(|i| matches!(i, ScheduledItem::Call { .. }))
        .count();
    assert_eq!(n_calls, 1, "next-calls group: {}", cpp::emit(&fp));
}

#[test]
fn cpp_emitter_produces_figure6_shape() {
    let p = compile(FIG2).unwrap();
    let fp = fuse(
        &p,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    let code = cpp::emit(&fp);
    assert!(code.contains("active_flags"), "{code}");
    assert!(code.contains("call_flags"), "{code}");
    assert!(code.contains("__stub"), "{code}");
    assert!(code.contains("_fuse_"), "{code}");
    // Per-traversal receiver aliases.
    assert!(code.contains("_r_f0"), "{code}");
    assert!(code.contains("_r_f1"), "{code}");
    // Stub bodies appear for every concrete class.
    for class in ["Element", "TextBox", "Group", "End"] {
        assert!(code.contains(&format!("void {class}::__stub")), "{code}");
    }
}

#[test]
fn schedule_never_violates_dependences() {
    // Differential check on many small programs: build the fused program
    // and validate every function's schedule against a freshly built
    // dependence graph.
    use grafter::{DepGraph, ProgramAccesses};
    let p = compile(FIG2).unwrap();
    let fp = fuse(
        &p,
        "Element",
        &["computeWidth", "computeHeight"],
        &FuseOptions::default(),
    )
    .unwrap();
    for f in &fp.functions {
        let merged = DepGraph::merge_bodies(&p, &f.seq);
        let mut acc = ProgramAccesses::new(&p);
        let graph = DepGraph::build(&mut acc, &f.seq, &merged);
        // Recover the emitted order of merged statements from the body.
        let mut order = Vec::new();
        for item in &f.body {
            match item {
                ScheduledItem::Stmt { traversal, stmt } => {
                    let pos = merged
                        .iter()
                        .position(|ms| {
                            ms.traversal == *traversal
                                && !order.contains(
                                    &merged.iter().position(|x| std::ptr::eq(x, ms)).unwrap(),
                                )
                                && &ms.stmt == stmt
                        })
                        .unwrap();
                    order.push(pos);
                }
                ScheduledItem::Call {
                    parts, receiver, ..
                } => {
                    for part in parts {
                        let pos = (0..merged.len())
                            .find(|&i| {
                                if order.contains(&i) || merged[i].traversal != part.traversal {
                                    return false;
                                }
                                match &merged[i].stmt {
                                    grafter_frontend::Stmt::Traverse(c) => {
                                        c.slot == part.slot && &c.receiver == receiver
                                    }
                                    _ => false,
                                }
                            })
                            .unwrap();
                        order.push(pos);
                    }
                }
            }
        }
        assert_eq!(order.len(), merged.len());
        assert!(graph.order_is_valid(&order), "function {}", f.name);
    }
}

#[test]
fn fuse_reports_unknown_names() {
    let p = compile(FIG2).unwrap();
    assert!(fuse(&p, "Nope", &["computeWidth"], &FuseOptions::default()).is_err());
    assert!(fuse(&p, "Element", &["nope"], &FuseOptions::default()).is_err());
}
