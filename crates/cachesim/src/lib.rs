//! Set-associative multi-level cache simulator.
//!
//! The Grafter paper measures fusion's locality benefit as L2/L3 cache-miss
//! reductions on a dual 12-core Xeon (32 KB 8-way L1, 256 KB 8-way L2,
//! 20 MB 20-way L3, 64 B lines). This crate simulates that hierarchy so the
//! reproduction can report the same metrics from the interpreter's exact
//! field-access stream.
//!
//! The model is deliberately simple and deterministic: every level is a
//! set-associative LRU cache, levels fill on miss (non-inclusive,
//! non-exclusive), and a flat cycle cost is charged per hit level. That is
//! enough to reproduce the paper's *relative* numbers — fused vs unfused on
//! identical work.
//!
//! # Example
//!
//! ```
//! use grafter_cachesim::CacheHierarchy;
//!
//! let mut cache = CacheHierarchy::xeon();
//! cache.access(0x1000);         // cold miss
//! cache.access(0x1008);         // same line: L1 hit
//! let s = cache.stats();
//! assert_eq!(s.levels[0].misses, 1);
//! assert_eq!(s.levels[0].hits, 1);
//! ```

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_size: usize,
    /// Cycles charged when an access hits at this level.
    pub hit_latency: u64,
}

impl CacheConfig {
    fn sets(&self) -> usize {
        (self.capacity / self.line_size / self.ways).max(1)
    }
}

/// Hit/miss counters of one level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    pub hits: u64,
    pub misses: u64,
}

impl LevelStats {
    /// Total accesses that reached this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Aggregate statistics of a hierarchy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Per-level counters, outermost first (L1 at index 0).
    pub levels: Vec<LevelStats>,
    /// Total memory accesses issued.
    pub accesses: u64,
    /// Cycles accumulated by the latency model.
    pub cycles: u64,
}

impl HierarchyStats {
    /// Misses of level `i` (0-based; `1` = L2).
    pub fn misses(&self, level: usize) -> u64 {
        self.levels.get(level).map_or(0, |l| l.misses)
    }
}

/// One set-associative LRU cache level.
#[derive(Clone, Debug)]
struct Level {
    config: CacheConfig,
    /// `tags[set]` holds the resident line tags, most recently used last.
    tags: Vec<Vec<u64>>,
    stats: LevelStats,
    line_shift: u32,
}

impl Level {
    fn new(config: CacheConfig) -> Self {
        assert!(config.line_size.is_power_of_two(), "line size power of two");
        assert!(config.ways > 0, "at least one way");
        Level {
            line_shift: config.line_size.trailing_zeros(),
            tags: vec![Vec::new(); config.sets()],
            stats: LevelStats::default(),
            config,
        }
    }

    /// Returns `true` on hit. Fills the line on miss (evicting LRU).
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.tags.len() as u64) as usize;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.push(tag);
            self.stats.hits += 1;
            true
        } else {
            if ways.len() == self.config.ways {
                ways.remove(0);
            }
            ways.push(line);
            self.stats.misses += 1;
            false
        }
    }
}

/// A multi-level cache hierarchy with an LRU policy per level.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    levels: Vec<Level>,
    /// Cycles charged when all levels miss.
    memory_latency: u64,
    accesses: u64,
    cycles: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from level configs (outermost first) and the
    /// main-memory latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or a line size is not a power of two.
    pub fn new(configs: &[CacheConfig], memory_latency: u64) -> Self {
        assert!(!configs.is_empty(), "at least one cache level");
        CacheHierarchy {
            levels: configs.iter().map(|&c| Level::new(c)).collect(),
            memory_latency,
            accesses: 0,
            cycles: 0,
        }
    }

    /// The paper's main platform: 32 KB 8-way L1, 256 KB 8-way L2, 20 MB
    /// 20-way L3, 64 B lines; latencies 4 / 12 / 40 cycles and 200 cycles
    /// to memory.
    pub fn xeon() -> Self {
        CacheHierarchy::new(
            &[
                CacheConfig {
                    capacity: 32 * 1024,
                    ways: 8,
                    line_size: 64,
                    hit_latency: 4,
                },
                CacheConfig {
                    capacity: 256 * 1024,
                    ways: 8,
                    line_size: 64,
                    hit_latency: 12,
                },
                CacheConfig {
                    capacity: 20 * 1024 * 1024,
                    ways: 20,
                    line_size: 64,
                    hit_latency: 40,
                },
            ],
            200,
        )
    }

    /// A tiny hierarchy for unit tests (256 B direct-mapped L1 with 4
    /// lines, 512 B 2-way L2).
    pub fn tiny() -> Self {
        CacheHierarchy::new(
            &[
                CacheConfig {
                    capacity: 256,
                    ways: 1,
                    line_size: 64,
                    hit_latency: 1,
                },
                CacheConfig {
                    capacity: 512,
                    ways: 2,
                    line_size: 64,
                    hit_latency: 10,
                },
            ],
            100,
        )
    }

    /// Issues one access; returns the level index that hit
    /// (`levels.len()` means main memory).
    pub fn access(&mut self, addr: u64) -> usize {
        self.accesses += 1;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                self.cycles += level.config.hit_latency;
                // Lower levels were already filled by their misses above.
                return i;
            }
        }
        self.cycles += self.memory_latency;
        self.levels.len()
    }

    /// Issues an access spanning `size` bytes (touching every line).
    pub fn access_range(&mut self, addr: u64, size: u64) {
        let line = self.levels[0].config.line_size as u64;
        let mut a = addr;
        while a < addr + size {
            self.access(a);
            a = (a / line + 1) * line;
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            levels: self.levels.iter().map(|l| l.stats).collect(),
            accesses: self.accesses,
            cycles: self.cycles,
        }
    }

    /// Resets all counters and contents.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            for set in &mut level.tags {
                set.clear();
            }
            level.stats = LevelStats::default();
        }
        self.accesses = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_hits_after_cold_miss() {
        let mut c = CacheHierarchy::tiny();
        assert_eq!(c.access(0), 2, "cold miss goes to memory");
        assert_eq!(c.access(8), 0, "same line hits L1");
        assert_eq!(c.access(63), 0);
        assert_eq!(c.access(64), 2, "next line is cold");
    }

    #[test]
    fn lru_evicts_oldest() {
        // tiny L1: 4 sets, direct mapped; lines mapping to set 0 are
        // 0, 256, 512...
        let mut c = CacheHierarchy::tiny();
        c.access(0); // set 0 <- line 0
        c.access(256); // set 0 <- line 4 (evicts 0 from L1)
        let lvl = c.access(0);
        assert!(lvl >= 1, "line 0 was evicted from L1, got {lvl}");
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut c = CacheHierarchy::tiny();
        c.access(0);
        c.access(256); // L1 set 0 conflict; L2 set keeps both (2-way)
        assert_eq!(c.access(0), 1, "hit in L2");
    }

    #[test]
    fn stats_count_hits_misses_cycles() {
        let mut c = CacheHierarchy::tiny();
        c.access(0);
        c.access(8);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.levels[0].hits, 1);
        assert_eq!(s.levels[0].misses, 1);
        assert_eq!(s.levels[1].misses, 1);
        assert_eq!(s.cycles, 100 + 1);
        assert_eq!(s.misses(1), 1);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheHierarchy::tiny();
        c.access_range(0, 130); // lines 0, 64, 128
        assert_eq!(c.stats().accesses, 3);
        // Unaligned start.
        c.reset();
        c.access_range(60, 8); // lines 0 and 64
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = CacheHierarchy::tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.access(0), 2, "cold again after reset");
    }

    #[test]
    fn xeon_configuration_shape() {
        let c = CacheHierarchy::xeon();
        let s = c.stats();
        assert_eq!(s.levels.len(), 3);
    }

    #[test]
    fn working_set_larger_than_l1_misses_in_l1() {
        let mut c = CacheHierarchy::xeon();
        // Stream 1 MB twice: second pass should hit mostly in L3/L2, not L1.
        for round in 0..2 {
            for addr in (0..1_000_000u64).step_by(64) {
                c.access(addr);
            }
            if round == 0 {
                assert!(c.stats().levels[0].misses > 10_000);
            }
        }
        let s = c.stats();
        assert!(
            s.levels[2].hits > 10_000,
            "second pass hits L3: {:?}",
            s.levels[2]
        );
    }

    /// Randomised invariants, drawn from the vendored deterministic `rand`
    /// shim (the offline build environment has no proptest).
    mod proptests {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        #[test]
        fn hits_plus_misses_equals_accesses() {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..64 {
                let n = rng.gen_range(1..200usize);
                let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..10_000)).collect();
                let mut c = CacheHierarchy::tiny();
                for a in &addrs {
                    c.access(*a);
                }
                let s = c.stats();
                assert_eq!(s.levels[0].accesses(), addrs.len() as u64);
                // Level i+1 sees exactly level i's misses.
                assert_eq!(s.levels[1].accesses(), s.levels[0].misses);
            }
        }

        #[test]
        fn repeating_one_line_always_hits_after_first() {
            for n in 1usize..100 {
                let mut c = CacheHierarchy::tiny();
                for _ in 0..n {
                    c.access(128);
                }
                let s = c.stats();
                assert_eq!(s.levels[0].misses, 1);
                assert_eq!(s.levels[0].hits, n as u64 - 1);
            }
        }
    }
}
