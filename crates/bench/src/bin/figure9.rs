//! Figure 9: render-tree passes, fused vs unfused, across document sizes.
//!
//! `--mode grafter` (default) reproduces Fig. 9a using the heterogeneous
//! render tree; `--mode treefuser` reproduces Fig. 9b using the collapsed
//! single-type implementation, normalised to its own (slower) baseline.
//! `--large` extends the sweep (slow). The paper sweeps 1..10^6 pages; the
//! interpreter substrate is slower than native code, so the default sweep
//! stops at 10^4 pages.

use grafter_bench::{arg_value, has_flag, print_table, Row};
use grafter_runtime::Heap;
use grafter_workloads::harness::Experiment;
use grafter_workloads::render;

fn main() {
    let mode = arg_value("--mode").unwrap_or_else(|| "grafter".into());
    let mut sizes = vec![1usize, 10, 100, 1_000, 10_000];
    if has_flag("--large") {
        sizes.push(100_000);
    }

    let mut rows = Vec::new();
    for &pages in &sizes {
        let cmp = match mode.as_str() {
            "grafter" => {
                let exp = Experiment::new(
                    render::compiled(),
                    render::ROOT_CLASS,
                    &render::PASSES,
                    move |heap| render::build_document(heap, pages, 42),
                );
                exp.compare()
            }
            "treefuser" => {
                let exp = Experiment::new(
                    grafter_treefuser::compiled(),
                    grafter_treefuser::ROOT_CLASS,
                    &grafter_treefuser::PASSES,
                    move |heap| {
                        // Build the heterogeneous document, then mirror it
                        // into the homogenised representation so both modes
                        // measure identical documents.
                        let het = render::program();
                        let mut src = Heap::new(&het);
                        let root = render::build_document(&mut src, pages, 42);
                        grafter_treefuser::convert_document(&src, root, heap)
                    },
                );
                exp.compare()
            }
            other => {
                eprintln!("unknown --mode `{other}` (use grafter|treefuser)");
                std::process::exit(2);
            }
        };
        rows.push(Row::from_comparison(format!("{pages} pages"), &cmp));
    }
    let title = match mode.as_str() {
        "grafter" => "Figure 9a: render tree, Grafter fused vs unfused",
        _ => "Figure 9b: render tree, TreeFuser fused vs unfused",
    };
    print_table(title, "pages", &rows);
}
