//! Table 6: fused/unfused performance of the three piecewise-function
//! equations on a balanced kd-tree (paper: depth 20; default here: 14).

use grafter_bench::{arg_value, print_table, Row};
use grafter_workloads::kdtree;

fn main() {
    let depth: usize = arg_value("--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);
    let mut rows = Vec::new();
    for (name, schedule) in kdtree::equation_schedules() {
        let exp = kdtree::experiment(&schedule, depth, 42);
        let cmp = exp.compare();
        rows.push(Row::from_comparison(name, &cmp));
    }
    print_table(
        &format!("Table 6: piecewise-function equations (depth {depth})"),
        "equation",
        &rows,
    );
}
