//! Figure 11: AST passes, fused vs unfused, across program sizes
//! (#functions). `--large` extends the sweep.

use grafter_bench::{has_flag, print_table, Row};
use grafter_workloads::ast;
use grafter_workloads::harness::Experiment;

fn main() {
    let mut sizes = vec![10usize, 100, 1_000];
    if has_flag("--large") {
        sizes.push(10_000);
    }
    let mut rows = Vec::new();
    for &funcs in &sizes {
        let exp = Experiment::new(
            ast::compiled(),
            ast::ROOT_CLASS,
            &ast::PASSES,
            move |heap| ast::build_program(heap, funcs, 42),
        );
        let cmp = exp.compare();
        rows.push(Row::from_comparison(format!("{funcs} functions"), &cmp));
    }
    print_table("Figure 11: AST optimisation passes", "functions", &rows);
}
