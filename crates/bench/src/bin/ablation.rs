//! Ablation of the §4 fusion cutoffs: how the maximum fused-sequence
//! length and the per-function occurrence bound trade compile-time
//! artefact size against fusion quality (node visits).
//!
//! The paper motivates the cutoffs as the termination mechanism when
//! traversals multiply on a child (each level of the tree exposes more
//! active traversals); this sweep quantifies the choice on the AST
//! workload, whose `propagateConstants` spawns an extra `replaceVarRefs`
//! per statement-list level.

use grafter::FuseOptions;
use grafter_workloads::ast;
use grafter_workloads::harness::Experiment;

fn main() {
    println!("== Ablation: fusion cutoffs (AST workload, 100 functions) ==");
    println!(
        "{:<28} {:>10} {:>8} {:>12} {:>9}",
        "cutoffs", "functions", "visits", "instructions", "runtime"
    );
    for (group, occ) in [(2, 1), (4, 2), (8, 3), (8, 5), (12, 8), (16, 12)] {
        let opts = FuseOptions {
            max_group_size: group,
            max_occurrences: occ,
            grouping: true,
        };
        let exp = Experiment::new(ast::compiled(), ast::ROOT_CLASS, &ast::PASSES, |heap| {
            ast::build_program(heap, 100, 42)
        });
        let generated = exp.engine_with(&opts).fusion_metrics().functions;
        let cmp = exp.compare_with(opts);
        let n = cmp.normalized();
        println!(
            "{:<28} {:>10} {:>8.3} {:>12.3} {:>9.3}",
            format!("len<={group} occ<={occ}"),
            generated,
            n.visits,
            n.instructions,
            n.runtime
        );
    }
    println!("(functions = generated fused functions; metric columns fused/unfused)");
}
