//! Figure 13: FMM passes, fused vs unfused, across point counts. The paper
//! sweeps 10^5..10^8 points on native hardware; the interpreter sweep runs
//! 10^3..10^6 (`--large` adds 10^6; shapes are size-stable).

use grafter_bench::{has_flag, print_table, Row};
use grafter_workloads::fmm;

fn main() {
    let mut sizes = vec![1_000usize, 10_000, 100_000];
    if has_flag("--large") {
        sizes.push(1_000_000);
    }
    let mut rows = Vec::new();
    for &points in &sizes {
        let exp = fmm::experiment(points, 42);
        let cmp = exp.compare();
        rows.push(Row::from_comparison(format!("{points} points"), &cmp));
    }
    print_table("Figure 13: fast multipole method", "points", &rows);
}
