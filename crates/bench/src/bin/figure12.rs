//! Figure 12: kd-tree piecewise-function traversals (equation 1 of Table
//! 6), fused vs unfused, across tree depths. The paper sweeps depths 4..28;
//! a depth-d tree has 2^(d+1) nodes, so the default sweep stops at 18
//! (~0.5M nodes). `--large` extends to 20.

use grafter_bench::{has_flag, print_table, Row};
use grafter_workloads::kdtree;

fn main() {
    let mut depths = vec![4usize, 8, 12, 16, 18];
    if has_flag("--large") {
        depths.push(20);
    }
    let schedules = kdtree::equation_schedules();
    let (_, schedule) = &schedules[0];
    let mut rows = Vec::new();
    for &depth in &depths {
        let exp = kdtree::experiment(schedule, depth, 42);
        let cmp = exp.compare();
        rows.push(Row::from_comparison(format!("depth {depth}"), &cmp));
    }
    print_table(
        "Figure 12: kd-tree traversals for x^4 (f''(x))^2 + sum x^i",
        "depth",
        &rows,
    );
}
