//! Interp-vs-VM-vs-JIT wall-clock comparison over the four case-study
//! workloads, fused and unfused, plus per-opt-level fused VM medians
//! (`O0` vs `O2`), fused JIT medians in both counted and release mode,
//! batch throughput of the fused VM engine at 1, 4 and 8 worker
//! threads, and intra-tree parallel single-tree medians of the fused VM
//! engine at 1, 2 and 4 workers — recorded to `BENCH_vm.json` together
//! with per-stage compile wall times (parse/sema/fusion/lower/opt
//! passes/jit) from each workload's engine build.
//!
//! Every configuration (backend × fusion × opt level) is one immutable
//! `grafter_engine::Engine`, built once — compile, fusion, bytecode
//! lowering and optimization are outside every measured region. For the
//! latency table the input tree is built once; every configuration runs
//! `--samples` times (default 5, plus one warmup) on cloned heaps and
//! reports the median wall time. All configurations' `visits` are
//! cross-checked — a mismatch is a hard error, so the JSON can only ever
//! record a like-for-like comparison. The throughput section fans
//! `--batch-trees` identical trees (default 16) through
//! `Engine::run_batch` per worker count.
//!
//! ```text
//! cargo run --release --bin vm_compare [--samples N] [--batch-trees N] [--out PATH]
//! cargo run --release --bin vm_compare -- --samples 3 --check [--baseline PATH]
//! ```
//!
//! `--check` is the CI perf-regression gate: instead of writing a new
//! JSON it measures the fused medians — VM (default `O2`) plus the JIT
//! tier in counted and release mode — and the fused-VM batch throughput
//! at every recorded worker count, and fails with exit code 1 when any
//! workload/tier (or batch trees/sec figure) regresses more than 25%
//! against the committed baseline (`--baseline`, default
//! `BENCH_vm.json`). Before measuring anything, the baseline itself is
//! strictly validated against the current case studies: a workload
//! missing from the baseline, a stale baseline workload the code no
//! longer has, an absent median key, or a missing/degenerate `batch`
//! array (wrong worker sweep, zero trees, non-finite trees/sec) is a
//! hard error rather than a silently skipped comparison (the
//! `grafter_bench::baseline` unit tests pin that contract). The
//! tolerance absorbs shared-runner noise at `--samples 3` while still
//! catching real regressions; `--inject-slowdown F` multiplies the
//! measured medians by `F` to prove the gate trips (used to validate the
//! CI job — an injected 2× slowdown must fail).

use std::fmt::Write as _;
use std::time::Instant;

use grafter::FusionOptions;
use grafter_bench::{arg_value, baseline};
use grafter_engine::{Backend, Engine, JitMode, OptLevel, ParallelOptions};
use grafter_runtime::{with_stack, Heap};
use grafter_workloads::harness::{batch_throughput, Throughput, RUN_STACK};
use grafter_workloads::{case_studies, CaseStudy};

/// Worker-thread counts swept by the throughput experiment.
const BATCH_WORKERS: [usize; 3] = [1, 4, 8];

/// Intra-tree worker counts swept by the parallel single-tree
/// experiment (fused VM engine, one bench-sized tree per run).
const PARALLEL_WORKERS: [usize; 3] = [1, 2, 4];

/// Allowed fused-median regression per tier before `--check` fails (25%).
const CHECK_TOLERANCE: f64 = 1.25;

/// Fused median keys every baseline workload must record for `--check`
/// to have anything to gate against.
const REQUIRED_BASELINE_KEYS: &[&[&str]] = &[&["vm_ns"], &["jit", "counted"], &["jit", "release"]];

struct Config {
    interp_ns: u128,
    vm_ns: u128,
    /// Fused-only: per-opt-level VM medians (`O0`, `O2`).
    opt_ns: Option<(u128, u128)>,
    /// Fused-only: JIT medians (counted, release).
    jit_ns: Option<(u128, u128)>,
    visits: u64,
}

impl Config {
    fn speedup(&self) -> f64 {
        if self.vm_ns == 0 {
            1.0
        } else {
            self.interp_ns as f64 / self.vm_ns as f64
        }
    }
}

struct WorkloadRow {
    name: &'static str,
    fused: Config,
    unfused: Config,
    batch: Vec<Throughput>,
    /// Fused VM single-tree medians per intra-tree worker count
    /// (`(workers, median_ns)`, [`PARALLEL_WORKERS`] order).
    parallel: Vec<(usize, u128)>,
    /// Per-stage compile wall times (`(stage, ns)`, build order) of one
    /// fused jit-tier build from source, plus the build's total — every
    /// stage from parse to jit chain construction appears.
    compile: (Vec<(String, u128)>, u128),
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Median wall time of `samples` runs of `engine` on cloned heaps; also
/// returns the visit count (identical across runs).
fn time_runs(
    samples: usize,
    engine: &Engine,
    heap: &Heap,
    root: grafter_runtime::NodeId,
) -> (u128, u64) {
    time_runs_parallel(samples, engine, heap, root, None)
}

/// [`time_runs`] with optional intra-tree parallelism on each session.
fn time_runs_parallel(
    samples: usize,
    engine: &Engine,
    heap: &Heap,
    root: grafter_runtime::NodeId,
    parallel: Option<&ParallelOptions>,
) -> (u128, u64) {
    let mut visits = 0;
    let mut times = Vec::with_capacity(samples);
    for i in 0..=samples {
        let mut session = engine.session_on(heap.clone());
        if let Some(par) = parallel {
            session = session.with_parallel(par.clone());
        }
        let start = Instant::now();
        let report = session.run(root).expect("run succeeds");
        let elapsed = start.elapsed().as_nanos();
        visits = report.metrics.visits;
        if i > 0 {
            // Sample 0 is warmup.
            times.push(elapsed);
        }
    }
    (median(times), visits)
}

fn compare(
    samples: usize,
    case: &CaseStudy,
    opts: &FusionOptions,
    heap: &Heap,
    root: grafter_runtime::NodeId,
    sweep_opt_levels: bool,
) -> Config {
    let interp = case.engine_with(opts.clone(), Backend::Interp);
    let vm = case.engine_with(opts.clone(), Backend::Vm);
    let (interp_ns, v_interp) = time_runs(samples, &interp, heap, root);
    let (vm_ns, v_vm) = time_runs(samples, &vm, heap, root);
    assert_eq!(v_interp, v_vm, "backends disagree on visit counts");
    let opt_ns = sweep_opt_levels.then(|| {
        let o0 = case.engine_opt(opts.clone(), OptLevel::O0);
        let (o0_ns, v_o0) = time_runs(samples, &o0, heap, root);
        assert_eq!(v_o0, v_vm, "opt levels disagree on visit counts");
        // The default engine above already is O2; reuse its median.
        (o0_ns, vm_ns)
    });
    let jit_ns = sweep_opt_levels.then(|| {
        // Both jit modes count visits (release drops every *other*
        // counter), so the like-for-like cross-check holds for them too.
        let counted = case.engine_with(opts.clone(), Backend::Jit(JitMode::Counted));
        let release = case.engine_with(opts.clone(), Backend::Jit(JitMode::Release));
        let (counted_ns, v_counted) = time_runs(samples, &counted, heap, root);
        let (release_ns, v_release) = time_runs(samples, &release, heap, root);
        assert_eq!(v_counted, v_vm, "jit-counted disagrees on visit counts");
        assert_eq!(v_release, v_vm, "jit-release disagrees on visit counts");
        (counted_ns, release_ns)
    });
    Config {
        interp_ns,
        vm_ns,
        opt_ns,
        jit_ns,
        visits: v_vm,
    }
}

fn workload(samples: usize, batch_trees: usize, case: &CaseStudy) -> WorkloadRow {
    let fused_opts = FusionOptions::default();
    let mut heap = Heap::new(case.compiled.program());
    let root = case.build_bench(&mut heap);
    let fused = compare(samples, case, &fused_opts, &heap, root, true);
    let unfused = compare(samples, case, &FusionOptions::unfused(), &heap, root, false);

    // Throughput: one shared fused VM engine, a batch of identical trees,
    // swept over worker counts.
    let engine = case.engine_with(fused_opts, Backend::Vm);
    let batch = BATCH_WORKERS
        .iter()
        .map(|&workers| {
            batch_throughput(
                &engine,
                &|heap| case.build_bench(heap),
                batch_trees,
                workers,
            )
        })
        .collect();
    // Intra-tree parallelism: the same fused VM engine on ONE tree,
    // swept over worker counts. Results are bit-identical across the
    // sweep (the differential suite pins that); only wall time moves.
    let parallel = PARALLEL_WORKERS
        .iter()
        .map(|&workers| {
            let opts = ParallelOptions::with_workers(workers);
            let (ns, v) = time_runs_parallel(samples, &engine, &heap, root, Some(&opts));
            assert_eq!(v, fused.visits, "parallel run disagrees on visit counts");
            (workers, ns)
        })
        .collect();
    // Compile-side stage timings: rebuild the fused jit engine from
    // *source* (the case studies' engines reuse a pre-compiled frontend
    // artifact, which would hide the parse/sema stages).
    let traced = Engine::builder()
        .source(case.source)
        .entry(case.root_class, &case.passes)
        .backend(Backend::Jit(JitMode::Counted))
        .build()
        .expect("case-study entry sequence resolves");
    let trace = traced.compile_trace();
    let compile = (
        trace
            .spans
            .iter()
            .map(|s| (s.name.clone(), s.dur.as_nanos()))
            .collect(),
        trace.total.as_nanos(),
    );
    WorkloadRow {
        name: case.name,
        fused,
        unfused,
        batch,
        parallel,
        compile,
    }
}

fn json_config(c: &Config) -> String {
    let opt = match c.opt_ns {
        Some((o0, o2)) => format!(r#", "opt": {{"O0": {o0}, "O2": {o2}}}"#),
        None => String::new(),
    };
    let jit = match c.jit_ns {
        Some((counted, release)) => {
            format!(r#", "jit": {{"counted": {counted}, "release": {release}}}"#)
        }
        None => String::new(),
    };
    format!(
        r#"{{"interp_ns": {}, "vm_ns": {}, "speedup": {:.3}, "visits": {}{}{}}}"#,
        c.interp_ns,
        c.vm_ns,
        c.speedup(),
        c.visits,
        opt,
        jit
    )
}

fn json_parallel(parallel: &[(usize, u128)]) -> String {
    let items = parallel
        .iter()
        .map(|(workers, ns)| format!(r#"{{"workers": {workers}, "wall_ns": {ns}}}"#))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{items}]")
}

fn json_compile((stages, total): &(Vec<(String, u128)>, u128)) -> String {
    let items = stages
        .iter()
        .map(|(name, ns)| format!(r#""{name}": {ns}"#))
        .collect::<Vec<_>>()
        .join(", ");
    format!(r#"{{"total_ns": {total}, "stages": {{{items}}}}}"#)
}

fn json_batch(batch: &[Throughput]) -> String {
    let items = batch
        .iter()
        .map(|t| {
            format!(
                r#"{{"workers": {}, "trees": {}, "wall_ns": {}, "trees_per_sec": {:.3}}}"#,
                t.workers,
                t.trees,
                t.wall.as_nanos(),
                t.trees_per_sec()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{items}]")
}

/// The `--check` gate: strictly validate the committed baseline, then
/// measure the fused medians of every gated tier (VM `O2`, JIT counted,
/// JIT release) and compare each against it. Returns the number of
/// regressed workload/tier pairs.
///
/// Validation runs first and panics on any mismatch — a renamed
/// workload, a stale baseline row or a missing median key must fail the
/// gate, not silently shrink what it compares.
fn check(samples: usize, baseline_path: &str, slowdown: f64) -> usize {
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline `{baseline_path}`: {e}"));
    let cases = case_studies();
    let expected: Vec<&str> = cases.iter().map(|c| c.name).collect();
    if let Err(problems) = baseline::validate(&json, &expected, REQUIRED_BASELINE_KEYS) {
        panic!(
            "baseline `{baseline_path}` fails validation (regenerate it with `vm_compare`):\n  {}",
            problems.join("\n  ")
        );
    }
    if let Err(problems) = baseline::validate_batch(&json, &expected, &BATCH_WORKERS) {
        panic!(
            "baseline `{baseline_path}` has invalid batch arrays (regenerate it with `vm_compare`):\n  {}",
            problems.join("\n  ")
        );
    }
    // Parallel medians are shape-validated only: intra-tree speedup is
    // too runner-dependent to regression-gate, but a baseline that
    // silently dropped the sweep must fail.
    if let Err(problems) = baseline::validate_parallel(&json, &expected, &PARALLEL_WORKERS) {
        panic!(
            "baseline `{baseline_path}` has invalid parallel arrays (regenerate it with `vm_compare`):\n  {}",
            problems.join("\n  ")
        );
    }
    let tiers: [(&str, Backend, &[&str]); 3] = [
        ("vm", Backend::Vm, &["vm_ns"]),
        ("jit", Backend::Jit(JitMode::Counted), &["jit", "counted"]),
        (
            "jit-release",
            Backend::Jit(JitMode::Release),
            &["jit", "release"],
        ),
    ];
    let mut regressed = 0;
    println!(
        "{:<10} {:<12} {:>14} {:>14} {:>9}   (tolerance: +{:.0}%)",
        "workload",
        "tier",
        "baseline",
        "measured",
        "ratio",
        (CHECK_TOLERANCE - 1.0) * 100.0
    );
    for case in &cases {
        let mut heap = Heap::new(case.compiled.program());
        let root = case.build_bench(&mut heap);
        for (tier, backend, keys) in tiers {
            let base_ns = baseline::fused_u128(&json, case.name, keys)
                .expect("validate() guaranteed the key is present");
            let engine = case.engine_with(FusionOptions::default(), backend);
            let (measured, _) = time_runs(samples, &engine, &heap, root);
            let measured = (measured as f64 * slowdown) as u128;
            let ratio = measured as f64 / base_ns as f64;
            let verdict = if ratio > CHECK_TOLERANCE {
                regressed += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<10} {:<12} {:>12}ns {:>12}ns {:>8.2}x   {verdict}",
                case.name, tier, base_ns, measured, ratio
            );
        }
        // Batch-throughput gate: each recorded worker count must sustain
        // its baseline trees/sec within the same tolerance. Throughput
        // regresses *downward*, so the ratio is baseline over measured.
        let engine = case.engine_with(FusionOptions::default(), Backend::Vm);
        for entry in baseline::batch_entries(&json, case.name)
            .expect("validate_batch() guaranteed the array is present")
        {
            let t = batch_throughput(
                &engine,
                &|heap| case.build_bench(heap),
                entry.trees,
                entry.workers,
            );
            let measured = t.trees_per_sec() / slowdown;
            let ratio = entry.trees_per_sec / measured;
            let verdict = if ratio > CHECK_TOLERANCE {
                regressed += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<10} {:<12} {:>12.1}/s {:>12.1}/s {:>8.2}x   {verdict}",
                case.name,
                format!("batch x{}", entry.workers),
                entry.trees_per_sec,
                measured,
                ratio
            );
        }
    }
    regressed
}

fn main() {
    let samples: usize = arg_value("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    let batch_trees: usize = arg_value("--batch-trees")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
        .max(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".to_string());

    if std::env::args().any(|a| a == "--check") {
        let baseline = arg_value("--baseline").unwrap_or_else(|| "BENCH_vm.json".to_string());
        let slowdown: f64 = arg_value("--inject-slowdown")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let regressed = with_stack(RUN_STACK, move || check(samples, &baseline, slowdown));
        if regressed > 0 {
            eprintln!(
                "perf check FAILED: {regressed} workload/tier pair(s) regressed >25% vs baseline"
            );
            std::process::exit(1);
        }
        println!(
            "perf check ok: no fused vm/jit median or batch throughput regressed >25% vs baseline"
        );
        return;
    }

    let rows = with_stack(RUN_STACK, move || {
        case_studies()
            .iter()
            .map(|case| workload(samples, batch_trees, case))
            .collect::<Vec<_>>()
    });

    println!(
        "{:<10} {:>14} {:>14} {:>9}   {:>14} {:>14} {:>9}",
        "workload",
        "interp fused",
        "vm fused",
        "speedup",
        "interp unfused",
        "vm unfused",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12}ns {:>12}ns {:>8.2}x   {:>12}ns {:>12}ns {:>8.2}x",
            r.name,
            r.fused.interp_ns,
            r.fused.vm_ns,
            r.fused.speedup(),
            r.unfused.interp_ns,
            r.unfused.vm_ns,
            r.unfused.speedup(),
        );
    }
    println!(
        "\n{:<10} {:>14} {:>14} {:>9}",
        "workload", "vm -O0", "vm -O2", "speedup"
    );
    for r in &rows {
        if let Some((o0, o2)) = r.fused.opt_ns {
            println!(
                "{:<10} {:>12}ns {:>12}ns {:>8.2}x",
                r.name,
                o0,
                o2,
                if o2 == 0 { 1.0 } else { o0 as f64 / o2 as f64 }
            );
        }
    }
    println!(
        "\n{:<10} {:>14} {:>14} {:>14} {:>9}",
        "workload", "vm -O2", "jit counted", "jit release", "speedup"
    );
    for r in &rows {
        if let Some((counted, release)) = r.fused.jit_ns {
            // The headline column: release-mode jit over the fused O2 VM.
            println!(
                "{:<10} {:>12}ns {:>12}ns {:>12}ns {:>8.2}x",
                r.name,
                r.fused.vm_ns,
                counted,
                release,
                if release == 0 {
                    1.0
                } else {
                    r.fused.vm_ns as f64 / release as f64
                }
            );
        }
    }
    println!(
        "\n{:<10} {}",
        "workload",
        PARALLEL_WORKERS
            .iter()
            .map(|w| format!("{:>16}", format!("par x{w}")))
            .collect::<String>()
    );
    for r in &rows {
        println!(
            "{:<10} {}",
            r.name,
            r.parallel
                .iter()
                .map(|(_, ns)| format!("{ns:>14}ns"))
                .collect::<String>()
        );
    }
    println!(
        "\n{:<10} {:>6} {}",
        "workload",
        "trees",
        BATCH_WORKERS
            .iter()
            .map(|w| format!("{:>16}", format!("{w} worker(s)")))
            .collect::<String>()
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {}",
            r.name,
            batch_trees,
            r.batch
                .iter()
                .map(|t| format!("{:>12.1}/s", t.trees_per_sec()))
                .collect::<String>()
        );
    }

    let mut json = String::from("{\n  \"generated_by\": \"vm_compare\",\n");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"batch_trees\": {batch_trees},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        // "compile" stays behind "unfused"/"batch": `baseline::fused_u128`
        // scopes a row's "fused" object by the "unfused" key that follows.
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"fused\": {}, \"unfused\": {}, \"batch\": {}, \
             \"parallel\": {}, \"compile\": {}}}{}",
            r.name,
            json_config(&r.fused),
            json_config(&r.unfused),
            json_batch(&r.batch),
            json_parallel(&r.parallel),
            json_compile(&r.compile),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_vm.json");
    println!("\nwrote {out}");
}
