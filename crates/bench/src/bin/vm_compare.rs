//! Interp-vs-VM wall-clock comparison over the four case-study workloads,
//! fused and unfused, plus batch throughput of the fused VM engine at 1,
//! 4 and 8 worker threads — recorded to `BENCH_vm.json`.
//!
//! Every configuration (backend × fusion) is one immutable
//! `grafter_engine::Engine`, built once — compile, fusion and bytecode
//! lowering are outside every measured region. For the latency table the
//! input tree is built once; every configuration runs `--samples` times
//! (default 5, plus one warmup) on cloned heaps and reports the median
//! wall time. Both backends' `visits` are cross-checked — a mismatch is a
//! hard error, so the JSON can only ever record a like-for-like
//! comparison. The throughput section fans `--batch-trees` identical
//! trees (default 16) through `Engine::run_batch` per worker count.
//!
//! ```text
//! cargo run --release --bin vm_compare [--samples N] [--batch-trees N] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use grafter::FusionOptions;
use grafter_bench::arg_value;
use grafter_engine::{Backend, Engine};
use grafter_runtime::{with_stack, Heap};
use grafter_workloads::harness::{batch_throughput, Throughput, RUN_STACK};
use grafter_workloads::{case_studies, CaseStudy};

/// Worker-thread counts swept by the throughput experiment.
const BATCH_WORKERS: [usize; 3] = [1, 4, 8];

struct Config {
    interp_ns: u128,
    vm_ns: u128,
    visits: u64,
}

impl Config {
    fn speedup(&self) -> f64 {
        if self.vm_ns == 0 {
            1.0
        } else {
            self.interp_ns as f64 / self.vm_ns as f64
        }
    }
}

struct WorkloadRow {
    name: &'static str,
    fused: Config,
    unfused: Config,
    batch: Vec<Throughput>,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Median wall time of `samples` runs of `engine` on cloned heaps; also
/// returns the visit count (identical across runs).
fn time_runs(
    samples: usize,
    engine: &Engine,
    heap: &Heap,
    root: grafter_runtime::NodeId,
) -> (u128, u64) {
    let mut visits = 0;
    let mut times = Vec::with_capacity(samples);
    for i in 0..=samples {
        let mut session = engine.session_on(heap.clone());
        let start = Instant::now();
        let report = session.run(root).expect("run succeeds");
        let elapsed = start.elapsed().as_nanos();
        visits = report.metrics.visits;
        if i > 0 {
            // Sample 0 is warmup.
            times.push(elapsed);
        }
    }
    (median(times), visits)
}

fn compare(
    samples: usize,
    case: &CaseStudy,
    opts: &FusionOptions,
    heap: &Heap,
    root: grafter_runtime::NodeId,
) -> Config {
    let interp = case.engine_with(opts.clone(), Backend::Interp);
    let vm = case.engine_with(opts.clone(), Backend::Vm);
    let (interp_ns, v_interp) = time_runs(samples, &interp, heap, root);
    let (vm_ns, v_vm) = time_runs(samples, &vm, heap, root);
    assert_eq!(v_interp, v_vm, "backends disagree on visit counts");
    Config {
        interp_ns,
        vm_ns,
        visits: v_vm,
    }
}

fn workload(samples: usize, batch_trees: usize, case: &CaseStudy) -> WorkloadRow {
    let fused_opts = FusionOptions::default();
    let mut heap = Heap::new(case.compiled.program());
    let root = case.build_bench(&mut heap);
    let fused = compare(samples, case, &fused_opts, &heap, root);
    let unfused = compare(samples, case, &FusionOptions::unfused(), &heap, root);

    // Throughput: one shared fused VM engine, a batch of identical trees,
    // swept over worker counts.
    let engine = case.engine_with(fused_opts, Backend::Vm);
    let batch = BATCH_WORKERS
        .iter()
        .map(|&workers| {
            batch_throughput(
                &engine,
                &|heap| case.build_bench(heap),
                batch_trees,
                workers,
            )
        })
        .collect();
    WorkloadRow {
        name: case.name,
        fused,
        unfused,
        batch,
    }
}

fn json_config(c: &Config) -> String {
    format!(
        r#"{{"interp_ns": {}, "vm_ns": {}, "speedup": {:.3}, "visits": {}}}"#,
        c.interp_ns,
        c.vm_ns,
        c.speedup(),
        c.visits
    )
}

fn json_batch(batch: &[Throughput]) -> String {
    let items = batch
        .iter()
        .map(|t| {
            format!(
                r#"{{"workers": {}, "trees": {}, "wall_ns": {}, "trees_per_sec": {:.3}}}"#,
                t.workers,
                t.trees,
                t.wall.as_nanos(),
                t.trees_per_sec()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{items}]")
}

fn main() {
    let samples: usize = arg_value("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    let batch_trees: usize = arg_value("--batch-trees")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
        .max(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".to_string());

    let rows = with_stack(RUN_STACK, move || {
        case_studies()
            .iter()
            .map(|case| workload(samples, batch_trees, case))
            .collect::<Vec<_>>()
    });

    println!(
        "{:<10} {:>14} {:>14} {:>9}   {:>14} {:>14} {:>9}",
        "workload",
        "interp fused",
        "vm fused",
        "speedup",
        "interp unfused",
        "vm unfused",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12}ns {:>12}ns {:>8.2}x   {:>12}ns {:>12}ns {:>8.2}x",
            r.name,
            r.fused.interp_ns,
            r.fused.vm_ns,
            r.fused.speedup(),
            r.unfused.interp_ns,
            r.unfused.vm_ns,
            r.unfused.speedup(),
        );
    }
    println!(
        "\n{:<10} {:>6} {}",
        "workload",
        "trees",
        BATCH_WORKERS
            .iter()
            .map(|w| format!("{:>16}", format!("{w} worker(s)")))
            .collect::<String>()
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {}",
            r.name,
            batch_trees,
            r.batch
                .iter()
                .map(|t| format!("{:>12.1}/s", t.trees_per_sec()))
                .collect::<String>()
        );
    }

    let mut json = String::from("{\n  \"generated_by\": \"vm_compare\",\n");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"batch_trees\": {batch_trees},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"fused\": {}, \"unfused\": {}, \"batch\": {}}}{}",
            r.name,
            json_config(&r.fused),
            json_config(&r.unfused),
            json_batch(&r.batch),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_vm.json");
    println!("\nwrote {out}");
}
