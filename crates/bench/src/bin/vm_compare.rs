//! Interp-vs-VM wall-clock comparison over the four case-study workloads,
//! fused and unfused, recorded to `BENCH_vm.json`.
//!
//! For each workload the input tree is built once; every configuration
//! (backend × fusion) runs `--samples` times (default 5, plus one warmup)
//! on cloned heaps and reports the median wall time. Both backends'
//! `visits` are cross-checked — a mismatch is a hard error, so the JSON
//! can only ever record a like-for-like comparison.
//!
//! ```text
//! cargo run --release --bin vm_compare [--samples N] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use grafter::pipeline::Fused;
use grafter_bench::arg_value;
use grafter_runtime::{with_stack, Execute, Heap, NodeId, Value};
use grafter_vm::{lower, Vm};
use grafter_workloads::harness::RUN_STACK;
use grafter_workloads::{case_studies, CaseStudy};

struct Config {
    interp_ns: u128,
    vm_ns: u128,
    visits: u64,
}

impl Config {
    fn speedup(&self) -> f64 {
        if self.vm_ns == 0 {
            1.0
        } else {
            self.interp_ns as f64 / self.vm_ns as f64
        }
    }
}

struct WorkloadRow {
    name: &'static str,
    fused: Config,
    unfused: Config,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Median wall time of `samples` runs of `run` on cloned heaps; also
/// returns the visit count (identical across runs).
fn time_runs(samples: usize, heap: &Heap, run: &dyn Fn(&mut Heap) -> u64) -> (u128, u64) {
    let mut visits = 0;
    let mut times = Vec::with_capacity(samples);
    for i in 0..=samples {
        let mut h = heap.clone();
        let start = Instant::now();
        visits = run(&mut h);
        let elapsed = start.elapsed().as_nanos();
        if i > 0 {
            // Sample 0 is warmup.
            times.push(elapsed);
        }
    }
    (median(times), visits)
}

fn compare(
    samples: usize,
    artifact: &Fused,
    heap: &Heap,
    root: NodeId,
    args: &[Vec<Value>],
) -> Config {
    let module = lower(artifact.fused_program());
    let (interp_ns, v_interp) = time_runs(samples, heap, &|h| {
        artifact
            .interpret_with_args(h, root, args.to_vec())
            .expect("interp run succeeds")
            .visits
    });
    let (vm_ns, v_vm) = time_runs(samples, heap, &|h| {
        let mut vm = Vm::new(&module);
        vm.run(h, root, args).expect("vm run succeeds");
        vm.metrics.visits
    });
    assert_eq!(v_interp, v_vm, "backends disagree on visit counts");
    Config {
        interp_ns,
        vm_ns,
        visits: v_vm,
    }
}

fn workload(samples: usize, case: &CaseStudy) -> WorkloadRow {
    let fused = case
        .compiled
        .fuse_default(case.root_class, &case.passes)
        .unwrap();
    let unfused = case
        .compiled
        .fuse_unfused(case.root_class, &case.passes)
        .unwrap();
    let mut heap = fused.new_heap();
    let root = case.build_bench(&mut heap);
    WorkloadRow {
        name: case.name,
        fused: compare(samples, &fused, &heap, root, &case.args),
        unfused: compare(samples, &unfused, &heap, root, &case.args),
    }
}

fn json_config(c: &Config) -> String {
    format!(
        r#"{{"interp_ns": {}, "vm_ns": {}, "speedup": {:.3}, "visits": {}}}"#,
        c.interp_ns,
        c.vm_ns,
        c.speedup(),
        c.visits
    )
}

fn main() {
    let samples: usize = arg_value("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".to_string());

    let rows = with_stack(RUN_STACK, move || {
        case_studies()
            .iter()
            .map(|case| workload(samples, case))
            .collect::<Vec<_>>()
    });

    println!(
        "{:<10} {:>14} {:>14} {:>9}   {:>14} {:>14} {:>9}",
        "workload",
        "interp fused",
        "vm fused",
        "speedup",
        "interp unfused",
        "vm unfused",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:>12}ns {:>12}ns {:>8.2}x   {:>12}ns {:>12}ns {:>8.2}x",
            r.name,
            r.fused.interp_ns,
            r.fused.vm_ns,
            r.fused.speedup(),
            r.unfused.interp_ns,
            r.unfused.vm_ns,
            r.unfused.speedup(),
        );
    }

    let mut json = String::from("{\n  \"generated_by\": \"vm_compare\",\n");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"fused\": {}, \"unfused\": {}}}{}",
            r.name,
            json_config(&r.fused),
            json_config(&r.unfused),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write BENCH_vm.json");
    println!("\nwrote {out}");
}
