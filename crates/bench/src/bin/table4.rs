//! Table 4: fused/unfused AST performance for three program shapes
//! (Prog1: many small functions; Prog2: one large function; Prog3: long
//! live ranges).

use grafter_bench::{has_flag, print_table, Row};
use grafter_workloads::ast;
use grafter_workloads::harness::Experiment;

fn main() {
    let scale = if has_flag("--large") { 8 } else { 1 };
    type Builder = Box<dyn Fn(&mut grafter_runtime::Heap) -> grafter_runtime::NodeId + Send + Sync>;
    let configs: Vec<(&str, Builder)> = vec![
        (
            "Prog1 (small fns)",
            Box::new(move |h: &mut grafter_runtime::Heap| ast::build_prog1(h, 800 * scale, 1)),
        ),
        (
            "Prog2 (one large fn)",
            Box::new(move |h: &mut grafter_runtime::Heap| ast::build_prog2(h, 9_000 * scale, 2)),
        ),
        (
            "Prog3 (long ranges)",
            Box::new(move |h: &mut grafter_runtime::Heap| ast::build_prog3(h, 60 * scale, 150, 3)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, build) in configs {
        let mut exp = Experiment::new(ast::compiled(), ast::ROOT_CLASS, &ast::PASSES, |h| {
            let _ = h;
            unreachable!()
        });
        exp.build = build;
        let cmp = exp.compare();
        rows.push(Row::from_comparison(name, &cmp));
    }
    print_table("Table 4: AST program configurations", "config", &rows);
}
