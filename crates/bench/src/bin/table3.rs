//! Table 3: fused/unfused render-tree performance for three document
//! configurations (Doc1: many simple pages; Doc2: one dense page;
//! Doc3: mixed-size pages). `--large` uses paper-scale node counts.

use grafter_bench::{has_flag, print_table, Row};
use grafter_workloads::harness::Experiment;
use grafter_workloads::render;

fn main() {
    let scale = if has_flag("--large") { 10 } else { 1 };
    type Builder = Box<dyn Fn(&mut grafter_runtime::Heap) -> grafter_runtime::NodeId + Send + Sync>;
    let configs: Vec<(&str, Builder)> = vec![
        (
            "Doc1 (simple pages)",
            Box::new(move |heap: &mut grafter_runtime::Heap| {
                render::build_document(heap, 10_000 * scale, 1)
            }),
        ),
        (
            "Doc2 (1 dense page)",
            Box::new(move |heap: &mut grafter_runtime::Heap| {
                render::build_dense_page(heap, 6 + scale.min(3), 4, 2)
            }),
        ),
        (
            "Doc3 (mixed pages)",
            Box::new(move |heap: &mut grafter_runtime::Heap| {
                render::build_mixed_document(heap, 150 * scale, 3)
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (name, build) in configs {
        let mut exp = Experiment::new(
            render::compiled(),
            render::ROOT_CLASS,
            &render::PASSES,
            |h| {
                let _ = h;
                unreachable!()
            },
        );
        exp.build = build;
        let cmp = exp.compare();
        rows.push(Row::from_comparison(name, &cmp));
    }
    print_table(
        "Table 3: render-tree document configurations",
        "config",
        &rows,
    );
}
