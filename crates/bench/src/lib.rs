//! Shared driver code for the benchmark binaries that regenerate every
//! table and figure of the Grafter paper's evaluation (§5).
//!
//! Each binary prints the same *rows/series* the paper reports: metrics of
//! the fused implementation normalised to the unfused baseline (y-axis of
//! Figs. 9, 11, 12, 13; the ratio columns of Tables 3, 4 and 6), plus the
//! baseline runtime the figures print in parentheses.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `figure9`  | Fig. 9a (Grafter) / Fig. 9b (TreeFuser) — render tree sweep |
//! | `table3`   | Table 3 — Doc1/Doc2/Doc3 render configurations |
//! | `figure11` | Fig. 11 — AST pass sweep over #functions |
//! | `table4`   | Table 4 — Prog1/Prog2/Prog3 AST configurations |
//! | `figure12` | Fig. 12 — kd-tree equation-1 sweep over tree depth |
//! | `table6`   | Table 6 — the three piecewise-function equations |
//! | `figure13` | Fig. 13 — FMM sweep over #points |

use grafter_workloads::harness::{Comparison, Normalized};

/// One printed row of an experiment table.
pub struct Row {
    /// x-axis value or configuration name.
    pub label: String,
    /// Fused / unfused ratios.
    pub norm: Normalized,
    /// Unfused (baseline) modelled runtime in cycles.
    pub base_cycles: u64,
    /// Live tree size in bytes.
    pub tree_bytes: u64,
}

impl Row {
    /// Builds a row from a comparison.
    pub fn from_comparison(label: impl Into<String>, cmp: &Comparison) -> Row {
        Row {
            label: label.into(),
            norm: cmp.normalized(),
            base_cycles: cmp.unfused.cycles,
            tree_bytes: cmp.unfused.tree_bytes,
        }
    }
}

/// Prints a table in the paper's normalised-metric format.
pub fn print_table(title: &str, x_axis: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>8} {:>12} {:>9} {:>9} {:>9} {:>14} {:>10}",
        x_axis, "visits", "instructions", "L2 miss", "L3 miss", "runtime", "base (cycles)", "tree"
    );
    for row in rows {
        println!(
            "{:<22} {:>8.3} {:>12.3} {:>9.3} {:>9.3} {:>9.3} {:>14} {:>10}",
            row.label,
            row.norm.visits,
            row.norm.instructions,
            row.norm.l2_misses,
            row.norm.l3_misses,
            row.norm.runtime,
            row.base_cycles,
            human_bytes(row.tree_bytes),
        );
    }
    println!("(all metric columns are fused / unfused; < 1.0 means fusion wins)");
}

/// Formats a byte count in human units.
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Parses `--key value` style options from argv.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}
