//! Shared driver code for the benchmark binaries that regenerate every
//! table and figure of the Grafter paper's evaluation (§5).
//!
//! Each binary prints the same *rows/series* the paper reports: metrics of
//! the fused implementation normalised to the unfused baseline (y-axis of
//! Figs. 9, 11, 12, 13; the ratio columns of Tables 3, 4 and 6), plus the
//! baseline runtime the figures print in parentheses.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `figure9`  | Fig. 9a (Grafter) / Fig. 9b (TreeFuser) — render tree sweep |
//! | `table3`   | Table 3 — Doc1/Doc2/Doc3 render configurations |
//! | `figure11` | Fig. 11 — AST pass sweep over #functions |
//! | `table4`   | Table 4 — Prog1/Prog2/Prog3 AST configurations |
//! | `figure12` | Fig. 12 — kd-tree equation-1 sweep over tree depth |
//! | `table6`   | Table 6 — the three piecewise-function equations |
//! | `figure13` | Fig. 13 — FMM sweep over #points |

use grafter_workloads::harness::{Comparison, Normalized};

/// One printed row of an experiment table.
pub struct Row {
    /// x-axis value or configuration name.
    pub label: String,
    /// Fused / unfused ratios.
    pub norm: Normalized,
    /// Unfused (baseline) modelled runtime in cycles.
    pub base_cycles: u64,
    /// Live tree size in bytes.
    pub tree_bytes: u64,
}

impl Row {
    /// Builds a row from a comparison.
    pub fn from_comparison(label: impl Into<String>, cmp: &Comparison) -> Row {
        Row {
            label: label.into(),
            norm: cmp.normalized(),
            base_cycles: cmp.unfused.cycles,
            tree_bytes: cmp.unfused.tree_bytes,
        }
    }
}

/// Prints a table in the paper's normalised-metric format.
pub fn print_table(title: &str, x_axis: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>8} {:>12} {:>9} {:>9} {:>9} {:>14} {:>10}",
        x_axis, "visits", "instructions", "L2 miss", "L3 miss", "runtime", "base (cycles)", "tree"
    );
    for row in rows {
        println!(
            "{:<22} {:>8.3} {:>12.3} {:>9.3} {:>9.3} {:>9.3} {:>14} {:>10}",
            row.label,
            row.norm.visits,
            row.norm.instructions,
            row.norm.l2_misses,
            row.norm.l3_misses,
            row.norm.runtime,
            row.base_cycles,
            human_bytes(row.tree_bytes),
        );
    }
    println!("(all metric columns are fused / unfused; < 1.0 means fusion wins)");
}

/// Formats a byte count in human units.
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Parses `--key value` style options from argv.
pub fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Reading and strictly validating the committed `BENCH_vm.json` baseline
/// the `vm_compare --check` perf gate compares against.
///
/// The baseline is written by `vm_compare` itself, so the hand-rolled
/// scanner here matches the hand-rolled emitter there. The gate's
/// correctness depends on *strictness*: a workload renamed in either the
/// code or the committed file, or a median key that was never recorded,
/// must fail the gate loudly instead of silently skipping the comparison
/// ([`validate`](baseline::validate) is the single place that contract
/// is enforced, and the unit tests below pin it).
pub mod baseline {
    use grafter_obs::json::{parse, Json};

    /// One recorded batch-throughput entry of a baseline workload row.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct BatchEntry {
        /// Worker-thread count the entry was measured at.
        pub workers: usize,
        /// Trees per batch the entry was measured with.
        pub trees: usize,
        /// Recorded sustained throughput.
        pub trees_per_sec: f64,
    }

    /// The `"batch"` throughput entries of `workload`'s baseline row,
    /// parsed with the shared JSON parser (the arrays carry floats, which
    /// the string-scanning `fused_u128` lookups cannot read).
    pub fn batch_entries(json: &str, workload: &str) -> Option<Vec<BatchEntry>> {
        let doc = parse(json).ok()?;
        let rows = doc.get("workloads")?.as_arr()?;
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(workload))?;
        row.get("batch")?
            .as_arr()?
            .iter()
            .map(|e| {
                Some(BatchEntry {
                    workers: e.get("workers")?.as_num()? as usize,
                    trees: e.get("trees")?.as_num()? as usize,
                    trees_per_sec: e.get("trees_per_sec")?.as_num()?,
                })
            })
            .collect()
    }

    /// Strictly validates every expected workload's `"batch"` array: it
    /// must exist, sweep exactly `expected_workers` (in order), and
    /// record positive finite throughput at a positive tree count.
    ///
    /// # Errors
    ///
    /// Returns the full list of violation messages (never a silent skip).
    pub fn validate_batch(
        json: &str,
        expected: &[&str],
        expected_workers: &[usize],
    ) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for want in expected {
            let Some(entries) = batch_entries(json, want) else {
                problems.push(format!(
                    "baseline workload `{want}` has no parseable `batch` array"
                ));
                continue;
            };
            let workers: Vec<usize> = entries.iter().map(|e| e.workers).collect();
            if workers != expected_workers {
                problems.push(format!(
                    "baseline workload `{want}` sweeps workers {workers:?}, expected {expected_workers:?}"
                ));
            }
            for e in &entries {
                if e.trees == 0 {
                    problems.push(format!(
                        "baseline workload `{want}` batch entry at {} worker(s) has zero trees",
                        e.workers
                    ));
                }
                if !(e.trees_per_sec.is_finite() && e.trees_per_sec > 0.0) {
                    problems.push(format!(
                        "baseline workload `{want}` batch entry at {} worker(s) has invalid trees_per_sec {}",
                        e.workers, e.trees_per_sec
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// One recorded intra-tree-parallel entry of a baseline workload row.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct ParallelEntry {
        /// Intra-tree worker count the entry was measured at.
        pub workers: usize,
        /// Recorded median single-tree wall time.
        pub wall_ns: u128,
    }

    /// The `"parallel"` entries of `workload`'s baseline row: median
    /// single-tree wall times of the fused VM engine per intra-tree
    /// worker count.
    pub fn parallel_entries(json: &str, workload: &str) -> Option<Vec<ParallelEntry>> {
        let doc = parse(json).ok()?;
        let rows = doc.get("workloads")?.as_arr()?;
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(workload))?;
        row.get("parallel")?
            .as_arr()?
            .iter()
            .map(|e| {
                Some(ParallelEntry {
                    workers: e.get("workers")?.as_num()? as usize,
                    wall_ns: e.get("wall_ns")?.as_num()? as u128,
                })
            })
            .collect()
    }

    /// Strictly validates every expected workload's `"parallel"` array
    /// **shape**: it must exist, sweep exactly `expected_workers` (in
    /// order), and record positive wall times. Parallel medians are
    /// *not* regression-gated — intra-tree speedup is runner-dependent —
    /// but a baseline that silently stopped recording them must fail.
    ///
    /// # Errors
    ///
    /// Returns the full list of violation messages (never a silent skip).
    pub fn validate_parallel(
        json: &str,
        expected: &[&str],
        expected_workers: &[usize],
    ) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for want in expected {
            let Some(entries) = parallel_entries(json, want) else {
                problems.push(format!(
                    "baseline workload `{want}` has no parseable `parallel` array"
                ));
                continue;
            };
            let workers: Vec<usize> = entries.iter().map(|e| e.workers).collect();
            if workers != expected_workers {
                problems.push(format!(
                    "baseline workload `{want}` parallel array sweeps workers {workers:?}, expected {expected_workers:?}"
                ));
            }
            for e in &entries {
                if e.wall_ns == 0 {
                    problems.push(format!(
                        "baseline workload `{want}` parallel entry at {} worker(s) has zero wall_ns",
                        e.workers
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// All workload names recorded in the baseline JSON, in file order.
    pub fn workload_names(json: &str) -> Vec<String> {
        let mut names = Vec::new();
        let mut rest = json;
        const KEY: &str = "\"name\": \"";
        while let Some(at) = rest.find(KEY) {
            rest = &rest[at + KEY.len()..];
            if let Some(end) = rest.find('"') {
                names.push(rest[..end].to_string());
                rest = &rest[end..];
            }
        }
        names
    }

    /// The byte range of `workload`'s row object within the baseline (from
    /// its `"name"` key to the next row's, or end of input) — scoping key
    /// lookups so a key absent from this row is never satisfied by the
    /// next one.
    fn row<'j>(json: &'j str, workload: &str) -> Option<&'j str> {
        let at = json.find(&format!("\"name\": \"{workload}\""))?;
        let body = &json[at..];
        let end = body[1..].find("\"name\": \"").map_or(body.len(), |e| e + 1);
        Some(&body[..end])
    }

    /// Extracts an integer median of `workload`'s `"fused"` object by key
    /// path, e.g. `["vm_ns"]` or `["jit", "release"]`.
    pub fn fused_u128(json: &str, workload: &str, keys: &[&str]) -> Option<u128> {
        let row = row(json, workload)?;
        let mut scope = &row[row.find("\"fused\":")?..];
        // Bound the fused object to keep nested lookups from drifting
        // into the sibling "unfused"/"batch" objects.
        if let Some(end) = scope.find("\"unfused\":") {
            scope = &scope[..end];
        }
        for key in keys {
            scope = &scope[scope.find(&format!("\"{key}\":"))? + key.len() + 3..];
        }
        let digits: String = scope
            .chars()
            .skip_while(|c| *c == ' ')
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }

    /// Strictly validates the baseline against the expected workload set
    /// and the required fused key paths, returning every violation:
    /// workloads missing from the baseline, stale baseline workloads the
    /// expected set no longer contains, and absent keys.
    ///
    /// # Errors
    ///
    /// Returns the full list of violation messages (never a silent skip).
    pub fn validate(
        json: &str,
        expected: &[&str],
        required_keys: &[&[&str]],
    ) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let found = workload_names(json);
        for want in expected {
            if !found.iter().any(|n| n == want) {
                problems.push(format!("baseline is missing workload `{want}`"));
            }
        }
        for have in &found {
            if !expected.contains(&have.as_str()) {
                problems.push(format!(
                    "baseline has stale workload `{have}` (not in the current case studies)"
                ));
            }
        }
        for want in expected {
            if !found.iter().any(|n| n == want) {
                continue; // already reported above
            }
            for keys in required_keys {
                if fused_u128(json, want, keys).is_none() {
                    problems.push(format!(
                        "baseline workload `{want}` is missing fused key `{}`",
                        keys.join(".")
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const GOOD: &str = r#"{
          "workloads": [
            {"name": "ast", "fused": {"interp_ns": 9, "vm_ns": 3, "jit": {"counted": 4, "release": 2}}, "unfused": {"vm_ns": 7}},
            {"name": "fmm", "fused": {"interp_ns": 90, "vm_ns": 30, "jit": {"counted": 40, "release": 20}}, "unfused": {"vm_ns": 70}}
          ]
        }"#;

        #[test]
        fn extracts_names_and_medians() {
            assert_eq!(workload_names(GOOD), vec!["ast", "fmm"]);
            assert_eq!(fused_u128(GOOD, "ast", &["vm_ns"]), Some(3));
            assert_eq!(fused_u128(GOOD, "fmm", &["jit", "release"]), Some(20));
            assert_eq!(fused_u128(GOOD, "fmm", &["jit", "counted"]), Some(40));
        }

        #[test]
        fn fused_lookup_stays_inside_the_row_and_fused_object() {
            // `ast` has no jit key here; the lookup must not drift into
            // `fmm`'s fused object or into ast's unfused object.
            let json = r#"{"workloads": [
                {"name": "ast", "fused": {"vm_ns": 3}, "unfused": {"vm_ns": 7, "jit": {"release": 9}}},
                {"name": "fmm", "fused": {"vm_ns": 30, "jit": {"counted": 40, "release": 20}}}
            ]}"#;
            assert_eq!(fused_u128(json, "ast", &["jit", "release"]), None);
            assert_eq!(fused_u128(json, "ast", &["vm_ns"]), Some(3));
        }

        #[test]
        fn validate_accepts_a_complete_baseline() {
            let required: &[&[&str]] = &[&["vm_ns"], &["jit", "counted"], &["jit", "release"]];
            assert!(validate(GOOD, &["ast", "fmm"], required).is_ok());
        }

        #[test]
        fn validate_fails_on_missing_workload() {
            // A workload renamed in the code ("render" here) must fail the
            // gate, not silently skip its regression comparison.
            let problems = validate(GOOD, &["ast", "render"], &[&["vm_ns"]]).unwrap_err();
            assert!(problems
                .iter()
                .any(|p| p.contains("missing workload `render`")));
            // The stale leftover under the old name is reported too.
            assert!(problems.iter().any(|p| p.contains("stale workload `fmm`")));
        }

        const WITH_BATCH: &str = r#"{
          "workloads": [
            {"name": "ast", "fused": {"vm_ns": 3}, "unfused": {"vm_ns": 7},
             "batch": [{"workers": 1, "trees": 16, "wall_ns": 100, "trees_per_sec": 1000.5},
                       {"workers": 4, "trees": 16, "wall_ns": 40, "trees_per_sec": 2500.25}]}
          ]
        }"#;

        #[test]
        fn batch_entries_parse_workers_trees_and_throughput() {
            let entries = batch_entries(WITH_BATCH, "ast").expect("parses");
            assert_eq!(entries.len(), 2);
            assert_eq!(entries[0].workers, 1);
            assert_eq!(entries[0].trees, 16);
            assert!((entries[0].trees_per_sec - 1000.5).abs() < 1e-9);
            assert_eq!(entries[1].workers, 4);
            assert!((entries[1].trees_per_sec - 2500.25).abs() < 1e-9);
            assert!(batch_entries(WITH_BATCH, "nope").is_none());
        }

        #[test]
        fn validate_batch_accepts_the_expected_sweep() {
            assert!(validate_batch(WITH_BATCH, &["ast"], &[1, 4]).is_ok());
        }

        #[test]
        fn validate_batch_fails_on_missing_array_or_wrong_sweep() {
            // GOOD has no batch arrays at all.
            let problems = validate_batch(GOOD, &["ast"], &[1, 4]).unwrap_err();
            assert!(problems[0].contains("no parseable `batch` array"));
            // A worker sweep that drifted from the code's is a violation.
            let problems = validate_batch(WITH_BATCH, &["ast"], &[1, 4, 8]).unwrap_err();
            assert!(problems[0].contains("sweeps workers"));
        }

        #[test]
        fn validate_batch_fails_on_degenerate_entries() {
            let bad = r#"{"workloads": [
                {"name": "ast", "batch": [{"workers": 1, "trees": 0, "wall_ns": 0, "trees_per_sec": 0.0}]}
            ]}"#;
            let problems = validate_batch(bad, &["ast"], &[1]).unwrap_err();
            assert!(problems.iter().any(|p| p.contains("zero trees")));
            assert!(problems.iter().any(|p| p.contains("invalid trees_per_sec")));
        }

        const WITH_PARALLEL: &str = r#"{
          "workloads": [
            {"name": "ast", "fused": {"vm_ns": 3}, "unfused": {"vm_ns": 7},
             "parallel": [{"workers": 1, "wall_ns": 100},
                          {"workers": 2, "wall_ns": 60},
                          {"workers": 4, "wall_ns": 40}]}
          ]
        }"#;

        #[test]
        fn parallel_entries_parse_workers_and_walls() {
            let entries = parallel_entries(WITH_PARALLEL, "ast").expect("parses");
            assert_eq!(entries.len(), 3);
            assert_eq!(
                entries[0],
                ParallelEntry {
                    workers: 1,
                    wall_ns: 100
                }
            );
            assert_eq!(entries[2].workers, 4);
            assert!(parallel_entries(WITH_PARALLEL, "nope").is_none());
        }

        #[test]
        fn validate_parallel_accepts_the_expected_sweep() {
            assert!(validate_parallel(WITH_PARALLEL, &["ast"], &[1, 2, 4]).is_ok());
        }

        #[test]
        fn validate_parallel_fails_on_missing_array_wrong_sweep_or_zero_wall() {
            // GOOD has no parallel arrays at all.
            let problems = validate_parallel(GOOD, &["ast"], &[1, 2, 4]).unwrap_err();
            assert!(problems[0].contains("no parseable `parallel` array"));
            let problems = validate_parallel(WITH_PARALLEL, &["ast"], &[1, 2]).unwrap_err();
            assert!(problems[0].contains("sweeps workers"));
            let bad = r#"{"workloads": [
                {"name": "ast", "parallel": [{"workers": 1, "wall_ns": 0}]}
            ]}"#;
            let problems = validate_parallel(bad, &["ast"], &[1]).unwrap_err();
            assert!(problems.iter().any(|p| p.contains("zero wall_ns")));
        }

        #[test]
        fn validate_fails_on_missing_key() {
            let no_jit = r#"{"workloads": [
                {"name": "ast", "fused": {"vm_ns": 3}, "unfused": {"vm_ns": 7}}
            ]}"#;
            let required: &[&[&str]] = &[&["vm_ns"], &["jit", "release"]];
            let problems = validate(no_jit, &["ast"], required).unwrap_err();
            assert_eq!(problems.len(), 1);
            assert!(problems[0].contains("missing fused key `jit.release`"));
        }
    }
}
