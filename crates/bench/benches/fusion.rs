//! Criterion wall-clock benchmarks: fused vs unfused interpreter runs for
//! all four case studies. These complement the deterministic cycle-model
//! numbers printed by the figure/table binaries with real elapsed time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafter::{fuse, FuseOptions, FusedProgram};
use grafter_frontend::Program;
use grafter_runtime::{Heap, Interp, NodeId, Value};
use grafter_workloads::{ast, fmm, kdtree, render};

struct Prepared {
    program: Program,
    fused: FusedProgram,
    unfused: FusedProgram,
    heap: Heap,
    root: NodeId,
    args: Vec<Vec<Value>>,
}

fn prepare(
    program: Program,
    root_class: &str,
    passes: &[&str],
    args: Vec<Vec<Value>>,
    build: impl Fn(&mut Heap) -> NodeId,
) -> Prepared {
    let fused = fuse(&program, root_class, passes, &FuseOptions::default()).unwrap();
    let unfused = fuse(&program, root_class, passes, &FuseOptions::unfused()).unwrap();
    let mut heap = Heap::new(&program);
    let root = build(&mut heap);
    Prepared {
        program,
        fused,
        unfused,
        heap,
        root,
        args,
    }
}

fn bench_pair(c: &mut Criterion, group: &str, p: &Prepared) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (name, fp) in [("fused", &p.fused), ("unfused", &p.unfused)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), fp, |b, fp| {
            b.iter_batched(
                || p.heap.clone(),
                |mut heap| {
                    let mut interp = Interp::new(fp);
                    interp.run(&mut heap, p.root, &p.args).unwrap();
                    interp.metrics.visits
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
    let _ = &p.program;
}

fn bench_render(c: &mut Criterion) {
    let p = prepare(
        render::program(),
        render::ROOT_CLASS,
        &render::PASSES,
        vec![],
        |heap| render::build_document(heap, 300, 42),
    );
    bench_pair(c, "render_300_pages", &p);
}

fn bench_ast(c: &mut Criterion) {
    let p = prepare(
        ast::program(),
        ast::ROOT_CLASS,
        &ast::PASSES,
        vec![],
        |heap| ast::build_program(heap, 100, 42),
    );
    bench_pair(c, "ast_100_functions", &p);
}

fn bench_kdtree(c: &mut Criterion) {
    let schedules = kdtree::equation_schedules();
    let (_, schedule) = &schedules[0];
    let args = schedule.iter().map(|op| op.args()).collect();
    let passes: Vec<&str> = schedule.iter().map(|op| op.pass()).collect();
    let p = prepare(kdtree::program(), kdtree::ROOT_CLASS, &passes, args, |heap| {
        kdtree::build_balanced(heap, 12, 42)
    });
    bench_pair(c, "kdtree_eq1_depth12", &p);
}

fn bench_fmm(c: &mut Criterion) {
    let p = prepare(
        fmm::program(),
        fmm::ROOT_CLASS,
        &fmm::PASSES,
        vec![],
        |heap| fmm::build_tree(heap, 20_000, 42),
    );
    bench_pair(c, "fmm_20k_points", &p);
}

fn bench_compile(c: &mut Criterion) {
    // Compiler-side cost: fusing the render tree's five passes.
    let program = render::program();
    c.bench_function("fuse_render_pipeline", |b| {
        b.iter(|| {
            fuse(
                &program,
                render::ROOT_CLASS,
                &render::PASSES,
                &FuseOptions::default(),
            )
            .unwrap()
            .n_functions()
        })
    });
}

criterion_group!(
    benches,
    bench_render,
    bench_ast,
    bench_kdtree,
    bench_fmm,
    bench_compile
);
criterion_main!(benches);
