//! Criterion wall-clock benchmarks: fused vs unfused interpreter runs for
//! all four case studies. These complement the deterministic cycle-model
//! numbers printed by the figure/table binaries with real elapsed time.
//!
//! Everything goes through the staged `grafter::pipeline` API: each case
//! study compiles once, fuses twice (default and unfused baseline), and the
//! timed region executes the artifacts through the runtime's `Execute`
//! stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafter::pipeline::{Compiled, Fused};
use grafter_runtime::{Execute, Heap, NodeId, Value};
use grafter_workloads::{ast, fmm, kdtree, render};

struct Prepared {
    fused: Fused,
    unfused: Fused,
    heap: Heap,
    root: NodeId,
    args: Vec<Vec<Value>>,
}

fn prepare(
    compiled: &Compiled,
    root_class: &str,
    passes: &[&str],
    args: Vec<Vec<Value>>,
    build: impl Fn(&mut Heap) -> NodeId,
) -> Prepared {
    let fused = compiled.fuse_default(root_class, passes).unwrap();
    let unfused = compiled.fuse_unfused(root_class, passes).unwrap();
    let mut heap = fused.new_heap();
    let root = build(&mut heap);
    Prepared {
        fused,
        unfused,
        heap,
        root,
        args,
    }
}

fn bench_pair(c: &mut Criterion, group: &str, p: &Prepared) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (name, artifact) in [("fused", &p.fused), ("unfused", &p.unfused)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            artifact,
            |b, artifact| {
                b.iter_batched(
                    // Clone heap and args in the untimed setup so the
                    // measured region is the interpreter run alone.
                    || (p.heap.clone(), p.args.clone()),
                    |(mut heap, args)| {
                        artifact
                            .interpret_with_args(&mut heap, p.root, args)
                            .unwrap()
                            .visits
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let p = prepare(
        &render::compiled(),
        render::ROOT_CLASS,
        &render::PASSES,
        vec![],
        |heap| render::build_document(heap, 300, 42),
    );
    bench_pair(c, "render_300_pages", &p);
}

fn bench_ast(c: &mut Criterion) {
    let p = prepare(
        &ast::compiled(),
        ast::ROOT_CLASS,
        &ast::PASSES,
        vec![],
        |heap| ast::build_program(heap, 100, 42),
    );
    bench_pair(c, "ast_100_functions", &p);
}

fn bench_kdtree(c: &mut Criterion) {
    let schedules = kdtree::equation_schedules();
    let (_, schedule) = &schedules[0];
    let args = schedule.iter().map(|op| op.args()).collect();
    let passes: Vec<&str> = schedule.iter().map(|op| op.pass()).collect();
    let p = prepare(
        &kdtree::compiled(),
        kdtree::ROOT_CLASS,
        &passes,
        args,
        |heap| kdtree::build_balanced(heap, 12, 42),
    );
    bench_pair(c, "kdtree_eq1_depth12", &p);
}

fn bench_fmm(c: &mut Criterion) {
    let p = prepare(
        &fmm::compiled(),
        fmm::ROOT_CLASS,
        &fmm::PASSES,
        vec![],
        |heap| fmm::build_tree(heap, 20_000, 42),
    );
    bench_pair(c, "fmm_20k_points", &p);
}

fn bench_compile(c: &mut Criterion) {
    // Compiler-side cost: fusing the render tree's five passes.
    let compiled = render::compiled();
    c.bench_function("fuse_render_pipeline", |b| {
        b.iter(|| {
            // `.n_functions()` (via Deref) rather than `.metrics()`: the
            // latter also runs the fully_fused analysis, which would taint
            // the compiler-side cost being measured here.
            compiled
                .fuse_default(render::ROOT_CLASS, &render::PASSES)
                .unwrap()
                .n_functions()
        })
    });
}

criterion_group!(
    benches,
    bench_render,
    bench_ast,
    bench_kdtree,
    bench_fmm,
    bench_compile
);
criterion_main!(benches);
