//! Criterion wall-clock benchmarks: fused vs unfused runs of all four
//! case studies, on both execution backends (interpreter and `grafter-vm`
//! bytecode VM). These complement the deterministic cycle-model numbers
//! printed by the figure/table binaries with real elapsed time; the
//! `vm/...` vs `interp/...` ids inside each group measure the compiled
//! tier's dispatch-overhead win on identical inputs (the two backends
//! produce identical metrics by construction).
//!
//! The workload matrix comes from `grafter_workloads::case_studies()` —
//! one descriptor shared with `vm_compare` and the differential tests.
//! Each case study compiles once, fuses twice (default and unfused
//! baseline), the VM artifacts lower once, and the timed region executes
//! alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafter::Fused;
use grafter_runtime::{Heap, Interp, NodeId, Value};
use grafter_vm::{lower, Module, Vm};
use grafter_workloads::{case_studies, render, CaseStudy};

struct Prepared {
    fused: Fused,
    unfused: Fused,
    vm_fused: Module,
    vm_unfused: Module,
    heap: Heap,
    root: NodeId,
    args: Vec<Vec<Value>>,
}

fn prepare(case: &CaseStudy) -> Prepared {
    let fused = case
        .compiled
        .fuse_default(case.root_class, &case.passes)
        .unwrap();
    let unfused = case
        .compiled
        .fuse_unfused(case.root_class, &case.passes)
        .unwrap();
    let vm_fused = lower(fused.fused_program());
    let vm_unfused = lower(unfused.fused_program());
    let mut heap = Heap::new(fused.program());
    let root = case.build_bench(&mut heap);
    Prepared {
        fused,
        unfused,
        vm_fused,
        vm_unfused,
        heap,
        root,
        args: case.args.clone(),
    }
}

fn bench_pair(c: &mut Criterion, group: &str, p: &Prepared) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (name, artifact) in [("interp/fused", &p.fused), ("interp/unfused", &p.unfused)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            artifact,
            |b, artifact| {
                b.iter_batched(
                    // Clone heap and args in the untimed setup so the
                    // measured region is the interpreter run alone.
                    || (p.heap.clone(), p.args.clone()),
                    |(mut heap, args)| {
                        let mut interp = Interp::new(artifact.fused_program());
                        interp.run(&mut heap, p.root, &args).unwrap();
                        interp.metrics.visits
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    for (name, module) in [("vm/fused", &p.vm_fused), ("vm/unfused", &p.vm_unfused)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), module, |b, module| {
            b.iter_batched(
                || (p.heap.clone(), p.args.clone()),
                |(mut heap, args)| {
                    let mut vm = Vm::new(module);
                    vm.run(&mut heap, p.root, &args).unwrap();
                    vm.metrics.visits
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    for case in case_studies() {
        let p = prepare(&case);
        let group = format!("{}_{}", case.name, case.bench_size);
        bench_pair(c, &group, &p);
    }
}

fn bench_compile(c: &mut Criterion) {
    // Compiler-side cost: fusing the render tree's five passes.
    let compiled = render::compiled();
    c.bench_function("fuse_render_pipeline", |b| {
        b.iter(|| {
            // `.n_functions()` (via Deref) rather than `.metrics()`: the
            // latter also runs the fully_fused analysis, which would taint
            // the compiler-side cost being measured here.
            compiled
                .fuse_default(render::ROOT_CLASS, &render::PASSES)
                .unwrap()
                .n_functions()
        })
    });
}

criterion_group!(benches, bench_workloads, bench_compile);
criterion_main!(benches);
