//! Case study 3 (§5.3): piecewise functions over kd-trees (MADNESS-style).
//!
//! A single-variable function over a domain is represented by a binary
//! space-partitioning tree: inner nodes split the domain, leaves hold the
//! coefficients of a cubic polynomial approximating the function on their
//! sub-domain. Mathematical operations are traversals (Table 5):
//!
//! | op | semantics |
//! |---|---|
//! | `scale(c)` | `f := c·f` |
//! | `addConst(c)` | `f := f + c` |
//! | `square()` | `f := f·f` (degree-truncated to cubic) |
//! | `differentiate()` | `f := f'` |
//! | `addRange(c,a,b)` | `f := f + c·(u(a)−u(b))` |
//! | `refine(a,b)` | *splits* leaves straddling `a` or `b` (adaptive refinement) |
//! | `multXRange(a,b)` | `f := x·f` within `[a,b]` (leaves must be refined) |
//! | `addXRange(a,b)` | `f := f + x` within `[a,b]` |
//! | `integrate(a,b)` | accumulates `∫f` into a global |
//! | `project(x0)` | accumulates `f(x0)` into a global |
//!
//! Like MADNESS's fixed-order multiwavelet representation, products are
//! truncated to the representation order (here: cubic). Range operators
//! follow MADNESS's refine-then-operate discipline: `refine` splits any
//! leaf straddling a range boundary (topology mutation, performed by the
//! *parent* inner node since Grafter nodes cannot replace themselves, with
//! `kind` tags for the dynamic type test); the arithmetic operators are
//! then purely local to each leaf, which is what lets whole Table 6
//! schedules fuse into one or two passes.

use grafter::pipeline::Compiled;
use grafter_frontend::Program;
use grafter_runtime::{Heap, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kd-tree program in the Grafter DSL.
pub const SOURCE: &str = r#"
global float INTEGRAL = 0.0;
global float PROJECTION = 0.0;

tree class KdNode {
    int kind = 0;      // 0 = inner, 1 = leaf
    float Lo = 0.0;
    float Hi = 0.0;
    virtual traversal scale(float c) {}
    virtual traversal addConst(float c) {}
    virtual traversal square() {}
    virtual traversal differentiate() {}
    virtual traversal addRange(float c, float a, float b) {}
    virtual traversal refine(float a, float b) {}
    virtual traversal multXRange(float a, float b) {}
    virtual traversal addXRange(float a, float b) {}
    virtual traversal integrate(float a, float b) {}
    virtual traversal project(float x0) {}
}

tree class KdInner : KdNode {
    child KdNode* Left;
    child KdNode* Right;
    float Split = 0.0;

    traversal scale(float c) { Left->scale(c); Right->scale(c); }
    traversal addConst(float c) { Left->addConst(c); Right->addConst(c); }
    traversal square() { Left->square(); Right->square(); }
    traversal differentiate() { Left->differentiate(); Right->differentiate(); }
    traversal addRange(float c, float a, float b) {
        Left->addRange(c, a, b);
        Right->addRange(c, a, b);
    }

    traversal refine(float a, float b) {
        // Split children that straddle a range boundary so that every leaf
        // is either inside or outside [a, b] (structural mutation).
        if (Left.kind == 1) {
            KdLeaf* const l = static_cast<KdLeaf*>(this->Left);
            float lo = l.Lo;
            float hi = l.Hi;
            float cut = a;
            if (a <= lo) { cut = b; }
            if (lo < cut && cut < hi) {
                float c0 = l.C0; float c1 = l.C1; float c2 = l.C2; float c3 = l.C3;
                delete this->Left;
                this->Left = new KdInner();
                KdInner* const n = static_cast<KdInner*>(this->Left);
                n.kind = 0;
                n.Lo = lo; n.Hi = hi; n.Split = cut;
                n->Left = new KdLeaf();
                KdLeaf* const nl = static_cast<KdLeaf*>(n->Left);
                nl.kind = 1; nl.Lo = lo; nl.Hi = cut;
                nl.C0 = c0; nl.C1 = c1; nl.C2 = c2; nl.C3 = c3;
                n->Right = new KdLeaf();
                KdLeaf* const nr = static_cast<KdLeaf*>(n->Right);
                nr.kind = 1; nr.Lo = cut; nr.Hi = hi;
                nr.C0 = c0; nr.C1 = c1; nr.C2 = c2; nr.C3 = c3;
            }
        }
        if (Right.kind == 1) {
            KdLeaf* const l = static_cast<KdLeaf*>(this->Right);
            float lo = l.Lo;
            float hi = l.Hi;
            float cut = a;
            if (a <= lo) { cut = b; }
            if (lo < cut && cut < hi) {
                float c0 = l.C0; float c1 = l.C1; float c2 = l.C2; float c3 = l.C3;
                delete this->Right;
                this->Right = new KdInner();
                KdInner* const n = static_cast<KdInner*>(this->Right);
                n.kind = 0;
                n.Lo = lo; n.Hi = hi; n.Split = cut;
                n->Left = new KdLeaf();
                KdLeaf* const nl = static_cast<KdLeaf*>(n->Left);
                nl.kind = 1; nl.Lo = lo; nl.Hi = cut;
                nl.C0 = c0; nl.C1 = c1; nl.C2 = c2; nl.C3 = c3;
                n->Right = new KdLeaf();
                KdLeaf* const nr = static_cast<KdLeaf*>(n->Right);
                nr.kind = 1; nr.Lo = cut; nr.Hi = hi;
                nr.C0 = c0; nr.C1 = c1; nr.C2 = c2; nr.C3 = c3;
            }
        }
        Left->refine(a, b);
        Right->refine(a, b);
    }

    traversal multXRange(float a, float b) {
        Left->multXRange(a, b);
        Right->multXRange(a, b);
    }

    traversal addXRange(float a, float b) {
        Left->addXRange(a, b);
        Right->addXRange(a, b);
    }
    traversal integrate(float a, float b) {
        Left->integrate(a, b);
        Right->integrate(a, b);
    }
    traversal project(float x0) {
        Left->project(x0);
        Right->project(x0);
    }
}

tree class KdLeaf : KdNode {
    float C0 = 0.0;
    float C1 = 0.0;
    float C2 = 0.0;
    float C3 = 0.0;

    traversal scale(float c) {
        C0 = C0 * c; C1 = C1 * c; C2 = C2 * c; C3 = C3 * c;
    }
    traversal addConst(float c) { C0 = C0 + c; }
    traversal square() {
        // (c0 + c1 x + c2 x^2 + c3 x^3)^2, truncated to cubic order.
        float a0 = C0; float a1 = C1; float a2 = C2; float a3 = C3;
        C0 = a0 * a0;
        C1 = 2.0 * a0 * a1;
        C2 = 2.0 * a0 * a2 + a1 * a1;
        C3 = 2.0 * a0 * a3 + 2.0 * a1 * a2;
    }
    traversal differentiate() {
        C0 = C1;
        C1 = 2.0 * C2;
        C2 = 3.0 * C3;
        C3 = 0.0;
    }
    traversal addRange(float c, float a, float b) {
        if (Lo >= a && Hi <= b) { C0 = C0 + c; }
    }
    traversal refine(float a, float b) { }
    traversal multXRange(float a, float b) {
        // Leaves fully inside [a, b] get f := x·f (degree-truncated);
        // straddling leaves were split by a preceding refine pass.
        if (Lo >= a && Hi <= b) {
            C3 = C2;
            C2 = C1;
            C1 = C0;
            C0 = 0.0;
        }
    }
    traversal addXRange(float a, float b) {
        if (Lo >= a && Hi <= b) { C1 = C1 + 1.0; }
    }
    traversal integrate(float a, float b) {
        float lo = Lo;
        float hi = Hi;
        if (a > lo) { lo = a; }
        if (b < hi) { hi = b; }
        if (lo < hi) {
            float upper = C0 * hi + C1 * hi * hi / 2.0 + C2 * hi * hi * hi / 3.0 + C3 * hi * hi * hi * hi / 4.0;
            float lower = C0 * lo + C1 * lo * lo / 2.0 + C2 * lo * lo * lo / 3.0 + C3 * lo * lo * lo * lo / 4.0;
            INTEGRAL = INTEGRAL + upper - lower;
        }
    }
    traversal project(float x0) {
        if (Lo <= x0 && x0 < Hi) {
            PROJECTION = PROJECTION + C0 + C1 * x0 + C2 * x0 * x0 + C3 * x0 * x0 * x0;
        }
    }
}
"#;

/// Root class operations are invoked on.
pub const ROOT_CLASS: &str = "KdNode";

/// An operation of Table 5, with its arguments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    Scale(f64),
    AddConst(f64),
    Square,
    Differentiate,
    AddRange(f64, f64, f64),
    Refine(f64, f64),
    MultXRange(f64, f64),
    AddXRange(f64, f64),
    Integrate(f64, f64),
    Project(f64),
}

impl Op {
    /// The traversal name the op dispatches to.
    pub fn pass(&self) -> &'static str {
        match self {
            Op::Scale(_) => "scale",
            Op::AddConst(_) => "addConst",
            Op::Square => "square",
            Op::Differentiate => "differentiate",
            Op::AddRange(..) => "addRange",
            Op::Refine(..) => "refine",
            Op::MultXRange(..) => "multXRange",
            Op::AddXRange(..) => "addXRange",
            Op::Integrate(..) => "integrate",
            Op::Project(_) => "project",
        }
    }

    /// Entry arguments for the traversal.
    pub fn args(&self) -> Vec<Value> {
        match *self {
            Op::Scale(c) | Op::AddConst(c) => vec![Value::Float(c)],
            Op::Square | Op::Differentiate => vec![],
            Op::AddRange(c, a, b) => vec![Value::Float(c), Value::Float(a), Value::Float(b)],
            Op::Refine(a, b) | Op::MultXRange(a, b) | Op::AddXRange(a, b) | Op::Integrate(a, b) => {
                vec![Value::Float(a), Value::Float(b)]
            }
            Op::Project(x0) => vec![Value::Float(x0)],
        }
    }
}

/// Domain bound used by the paper's evaluation: `[-1e5, 1e5]`.
pub const DOMAIN: (f64, f64) = (-1e5, 1e5);

/// The three equations of Table 6, as operation schedules.
///
/// 1. `x⁴·(f″(x))² + Σ_{i=0..3} xⁱ`
/// 2. `f⁽⁵⁾(x)|ₓ₌₀`
/// 3. `∫ x³·(f(x)+0.5)²·u(0)`
pub fn equation_schedules() -> Vec<(&'static str, Vec<Op>)> {
    let (lo, hi) = DOMAIN;
    vec![
        (
            "x^4 (f''(x))^2 + sum x^i",
            vec![
                Op::Differentiate,
                Op::Differentiate,
                Op::Square,
                Op::MultXRange(lo, hi),
                Op::MultXRange(lo, hi),
                Op::MultXRange(lo, hi),
                Op::MultXRange(lo, hi),
                Op::AddConst(1.0),
                Op::AddXRange(lo, hi),
                Op::AddRange(1.0, lo, hi),
            ],
        ),
        (
            "f^(5)(x) at x=0",
            vec![
                Op::Differentiate,
                Op::Differentiate,
                Op::Differentiate,
                Op::Differentiate,
                Op::Differentiate,
                Op::Project(0.0),
            ],
        ),
        (
            "int x^3 (f+0.5)^2 u(0)",
            vec![
                Op::Refine(0.0, hi),
                Op::AddConst(0.5),
                Op::Square,
                Op::MultXRange(0.0, hi),
                Op::MultXRange(0.0, hi),
                Op::MultXRange(0.0, hi),
                Op::Integrate(0.0, hi),
            ],
        ),
    ]
}

/// Compiles the kd-tree program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn program() -> Program {
    compiled().into_program()
}

/// Compiles the workload through the staged pipeline, keeping the source
/// and any frontend warnings attached for later stages.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn compiled() -> Compiled {
    match Compiled::compile(SOURCE) {
        Ok(c) => c,
        Err(err) => panic!("kdtree program: {err}"),
    }
}

/// Builds a balanced kd-tree of `depth` levels uniformly partitioning the
/// evaluation domain, with random cubic coefficients at the leaves.
pub fn build_balanced(heap: &mut Heap, depth: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    // A perfect tree's shape is known up front: pre-size the arena so
    // construction never regrows the slot pool.
    let leaves = 1usize << depth;
    let leaf = heap.program().class_by_name("KdLeaf").unwrap();
    let inner = heap.program().class_by_name("KdInner").unwrap();
    heap.reserve_classes(&[(leaf, leaves), (inner, leaves - 1)]);
    build_node(heap, &mut rng, DOMAIN.0, DOMAIN.1, depth)
}

fn build_node(heap: &mut Heap, rng: &mut StdRng, lo: f64, hi: f64, depth: usize) -> NodeId {
    if depth == 0 {
        let leaf = heap.alloc_by_name("KdLeaf").unwrap();
        heap.set_by_name(leaf, "kind", Value::Int(1)).unwrap();
        heap.set_by_name(leaf, "Lo", Value::Float(lo)).unwrap();
        heap.set_by_name(leaf, "Hi", Value::Float(hi)).unwrap();
        for c in ["C0", "C1", "C2", "C3"] {
            heap.set_by_name(leaf, c, Value::Float(rng.gen_range(-1.0..1.0)))
                .unwrap();
        }
        return leaf;
    }
    let mid = (lo + hi) / 2.0;
    let inner = heap.alloc_by_name("KdInner").unwrap();
    heap.set_by_name(inner, "kind", Value::Int(0)).unwrap();
    heap.set_by_name(inner, "Lo", Value::Float(lo)).unwrap();
    heap.set_by_name(inner, "Hi", Value::Float(hi)).unwrap();
    heap.set_by_name(inner, "Split", Value::Float(mid)).unwrap();
    let l = build_node(heap, rng, lo, mid, depth - 1);
    let r = build_node(heap, rng, mid, hi, depth - 1);
    heap.set_child_by_name(inner, "Left", Some(l)).unwrap();
    heap.set_child_by_name(inner, "Right", Some(r)).unwrap();
    inner
}

/// Builds the [`crate::harness::Experiment`] for an operation schedule.
pub fn experiment(schedule: &[Op], depth: usize, seed: u64) -> crate::harness::Experiment {
    let passes: Vec<&'static str> = schedule.iter().map(Op::pass).collect();
    let args: Vec<Vec<Value>> = schedule.iter().map(Op::args).collect();
    let mut exp = crate::harness::Experiment::new(compiled(), ROOT_CLASS, &passes, move |heap| {
        build_balanced(heap, depth, seed)
    });
    exp.args = args;
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter::{fuse, FuseOptions};
    use grafter_runtime::Interp;

    #[test]
    fn program_compiles() {
        let p = program();
        assert_eq!(p.classes.len(), 3);
    }

    #[test]
    fn differentiation_and_scaling_are_correct() {
        let p = program();
        let fp = fuse(
            &p,
            ROOT_CLASS,
            &["differentiate", "scale"],
            &FuseOptions::default(),
        )
        .unwrap();
        let mut heap = Heap::new(&p);
        let leaf = heap.alloc_by_name("KdLeaf").unwrap();
        heap.set_by_name(leaf, "kind", Value::Int(1)).unwrap();
        heap.set_by_name(leaf, "Hi", Value::Float(1.0)).unwrap();
        // f = 1 + 2x + 3x^2 + 4x^3
        for (c, v) in [("C0", 1.0), ("C1", 2.0), ("C2", 3.0), ("C3", 4.0)] {
            heap.set_by_name(leaf, c, Value::Float(v)).unwrap();
        }
        let mut interp = Interp::new(&fp);
        interp
            .run(&mut heap, leaf, &[vec![], vec![Value::Float(10.0)]])
            .unwrap();
        // f' = 2 + 6x + 12x^2, then scaled by 10.
        assert_eq!(heap.get_by_name(leaf, "C0").unwrap(), Value::Float(20.0));
        assert_eq!(heap.get_by_name(leaf, "C1").unwrap(), Value::Float(60.0));
        assert_eq!(heap.get_by_name(leaf, "C2").unwrap(), Value::Float(120.0));
        assert_eq!(heap.get_by_name(leaf, "C3").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn integrate_matches_analytic_value() {
        let p = program();
        let fp = fuse(&p, ROOT_CLASS, &["integrate"], &FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        // Single leaf over [0, 2] with f = x  =>  integral over [0,2] = 2.
        let leaf = heap.alloc_by_name("KdLeaf").unwrap();
        heap.set_by_name(leaf, "kind", Value::Int(1)).unwrap();
        heap.set_by_name(leaf, "Lo", Value::Float(0.0)).unwrap();
        heap.set_by_name(leaf, "Hi", Value::Float(2.0)).unwrap();
        heap.set_by_name(leaf, "C1", Value::Float(1.0)).unwrap();
        let mut interp = Interp::new(&fp);
        interp
            .run(
                &mut heap,
                leaf,
                &[vec![Value::Float(0.0), Value::Float(2.0)]],
            )
            .unwrap();
        assert_eq!(interp.global("INTEGRAL"), Some(Value::Float(2.0)));
    }

    #[test]
    fn refine_splits_partial_leaves() {
        let p = program();
        let fp = fuse(&p, ROOT_CLASS, &["refine"], &FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        let root = build_balanced(&mut heap, 1, 3);
        let live_before = heap.live_count();
        // Range covering only part of the left child's domain forces a
        // split.
        let (lo, hi) = DOMAIN;
        let quarter = lo + (hi - lo) / 4.0;
        let mut interp = Interp::new(&fp);
        interp
            .run(
                &mut heap,
                root,
                &[vec![Value::Float(lo), Value::Float(quarter)]],
            )
            .unwrap();
        assert!(
            heap.live_count() > live_before,
            "partial overlap must split a leaf ({} -> {})",
            live_before,
            heap.live_count()
        );
    }

    #[test]
    fn equations_run_fused_and_unfused_identically() {
        for (name, schedule) in equation_schedules() {
            let exp = experiment(&schedule, 6, 42);
            assert!(exp.check_equivalence(), "equation {name}");
        }
    }

    #[test]
    fn equation1_fusion_reduces_visits_sharply() {
        let (_, schedule) = &equation_schedules()[0];
        let exp = experiment(schedule, 8, 1);
        let n = exp.compare().normalized();
        // Paper: 83% fewer node visits (ratio 0.17) for equation 1.
        assert!(n.visits < 0.4, "visit ratio {}", n.visits);
    }

    #[test]
    fn every_table5_operator_matches_analytic_semantics() {
        // One leaf over [0, 2] holding f = 1 + x; apply each operator and
        // check coefficients against hand computation.
        let p = program();
        let mk_leaf = |heap: &mut Heap| {
            let leaf = heap.alloc_by_name("KdLeaf").unwrap();
            heap.set_by_name(leaf, "kind", Value::Int(1)).unwrap();
            heap.set_by_name(leaf, "Lo", Value::Float(0.0)).unwrap();
            heap.set_by_name(leaf, "Hi", Value::Float(2.0)).unwrap();
            heap.set_by_name(leaf, "C0", Value::Float(1.0)).unwrap();
            heap.set_by_name(leaf, "C1", Value::Float(1.0)).unwrap();
            leaf
        };
        let coeffs = |heap: &Heap, leaf| -> [f64; 4] {
            ["C0", "C1", "C2", "C3"].map(|c| heap.get_by_name(leaf, c).unwrap().as_f64())
        };
        let apply = |op: Op| {
            let fp = fuse(&p, ROOT_CLASS, &[op.pass()], &FuseOptions::default()).unwrap();
            let mut heap = Heap::new(&p);
            let leaf = mk_leaf(&mut heap);
            let mut interp = Interp::new(&fp);
            interp.run(&mut heap, leaf, &[op.args()]).unwrap();
            let c = coeffs(&heap, leaf);
            let (i, pr) = (
                interp.global("INTEGRAL").unwrap().as_f64(),
                interp.global("PROJECTION").unwrap().as_f64(),
            );
            (c, i, pr)
        };

        // scale(2): 2 + 2x
        assert_eq!(apply(Op::Scale(2.0)).0, [2.0, 2.0, 0.0, 0.0]);
        // addConst(3): 4 + x
        assert_eq!(apply(Op::AddConst(3.0)).0, [4.0, 1.0, 0.0, 0.0]);
        // square: (1+x)^2 = 1 + 2x + x^2
        assert_eq!(apply(Op::Square).0, [1.0, 2.0, 1.0, 0.0]);
        // differentiate: 1
        assert_eq!(apply(Op::Differentiate).0, [1.0, 0.0, 0.0, 0.0]);
        // addRange(5, 0, 2): leaf fully inside -> 6 + x
        assert_eq!(apply(Op::AddRange(5.0, 0.0, 2.0)).0, [6.0, 1.0, 0.0, 0.0]);
        // addRange outside the leaf: unchanged
        assert_eq!(apply(Op::AddRange(5.0, 3.0, 9.0)).0, [1.0, 1.0, 0.0, 0.0]);
        // multXRange over the whole leaf: x + x^2
        assert_eq!(apply(Op::MultXRange(0.0, 2.0)).0, [0.0, 1.0, 1.0, 0.0]);
        // addXRange: 1 + 2x
        assert_eq!(apply(Op::AddXRange(0.0, 2.0)).0, [1.0, 2.0, 0.0, 0.0]);
        // integrate over [0,2]: x + x^2/2 -> 2 + 2 = 4
        assert_eq!(apply(Op::Integrate(0.0, 2.0)).1, 4.0);
        // project at 1: f(1) = 2
        assert_eq!(apply(Op::Project(1.0)).2, 2.0);
        // refine leaves a fully-covered leaf untouched
        assert_eq!(apply(Op::Refine(0.0, 2.0)).0, [1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn global_accumulators_serialize_but_stay_correct() {
        // Two integrates cannot fuse with each other (both write the global
        // accumulator), but results must match the unfused run.
        let schedule = vec![Op::Integrate(0.0, DOMAIN.1), Op::Integrate(DOMAIN.0, 0.0)];
        let exp = experiment(&schedule, 5, 9);
        let fused = exp.engine_with(&FuseOptions::default());
        let unfused = exp.engine_with(&FuseOptions::unfused());
        let run = |engine: &grafter_engine::Engine| {
            let mut heap = engine.new_heap();
            let root = (exp.build)(&mut heap);
            let mut interp = Interp::new(engine.fused_program());
            interp.run(&mut heap, root, &exp.args).unwrap();
            interp.global("INTEGRAL").unwrap()
        };
        assert_eq!(run(&fused), run(&unfused));
    }
}
