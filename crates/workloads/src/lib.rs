//! The Grafter paper's four case studies (§5), expressed in the traversal
//! DSL, plus input generators and a measurement harness.
//!
//! | Module | Paper section | Content |
//! |---|---|---|
//! | [`render`] | §5.1 | 17-type render tree, 5 layout passes (Fig. 7/8, Table 2) |
//! | [`ast`] | §5.2 | 20-type AST, 6 compiler passes (Fig. 10, Table 2) |
//! | [`kdtree`] | §5.3 | MADNESS-style piecewise functions (Table 5/6) |
//! | [`fmm`] | §5.4 | fast-multipole-method two-pass kernel (Fig. 13) |
//! | [`harness`] | §5 prelude | fused/unfused comparison runner |
//!
//! Every workload exposes its DSL source (`SOURCE`), the pass list
//! (`PASSES`), the root class, and deterministic input builders used by the
//! paper's tables and figures.

pub mod ast;
pub mod cases;
pub mod fmm;
pub mod harness;
pub mod kdtree;
pub mod render;

pub use cases::{case_studies, CaseStudy};
