//! Case study 1 (§5.1): a render tree for paged documents.
//!
//! Seventeen node types (Fig. 7): a document holds a list of pages; each
//! page holds nested horizontal/vertical containers with leaf elements
//! (text boxes, links, images, bulleted lists, headers, footers). Five
//! layout passes (Table 2) with the paper's dependence structure:
//!
//! 1. `resolveFlexWidths` — bottom-up intrinsic widths;
//! 2. `resolveRelativeWidths` — top-down final widths (needs 1 below the
//!    current node, which *partially blocks fusion with it* — the source of
//!    the paper's partial-fusion behaviour on this workload);
//! 3. `setFont` — top-down font style;
//! 4. `computeHeights` — bottom-up heights (needs widths and fonts);
//! 5. `computePositions` — top-down positions (needs heights).

use grafter::pipeline::Compiled;
use grafter_frontend::Program;
use grafter_runtime::{Heap, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The render-tree program in the Grafter DSL.
pub const SOURCE: &str = r#"
global int CHAR_WIDTH = 8;
global int LINE_HEIGHT = 12;
global int PAGE_MARGIN = 16;

struct String { int Length; }

tree class Document {
    child PageList* Pages;
    int PageWidth = 800;
    int FontSize = 10;
    traversal resolveFlexWidths() { Pages->resolveFlexWidths(); }
    traversal resolveRelativeWidths() { Pages->resolveRelativeWidths(PageWidth); }
    traversal setFont() { Pages->setFont(FontSize); }
    traversal computeHeights() { Pages->computeHeights(); }
    traversal computePositions() { Pages->computePositions(0, 0); }
}

tree class PageList {
    int TotalHeight = 0;
    virtual traversal resolveFlexWidths() {}
    virtual traversal resolveRelativeWidths(int avail) {}
    virtual traversal setFont(int size) {}
    virtual traversal computeHeights() {}
    virtual traversal computePositions(int x, int y) {}
}

tree class PageListInner : PageList {
    child Page* P;
    child PageList* Next;
    traversal resolveFlexWidths() {
        P->resolveFlexWidths();
        Next->resolveFlexWidths();
    }
    traversal resolveRelativeWidths(int avail) {
        P->resolveRelativeWidths(avail);
        Next->resolveRelativeWidths(avail);
    }
    traversal setFont(int size) {
        P->setFont(size);
        Next->setFont(size);
    }
    traversal computeHeights() {
        P->computeHeights();
        Next->computeHeights();
        TotalHeight = P.Height + Next.TotalHeight;
    }
    traversal computePositions(int x, int y) {
        P->computePositions(x, y);
        Next->computePositions(x, y + P.Height);
    }
}

tree class PageListEnd : PageList { }

tree class Page {
    child Element* Content;
    int Width = 0; int Height = 0;
    int PosX = 0; int PosY = 0;
    traversal resolveFlexWidths() { Content->resolveFlexWidths(); }
    traversal resolveRelativeWidths(int avail) {
        Width = avail;
        Content->resolveRelativeWidths(avail - 2 * PAGE_MARGIN);
    }
    traversal setFont(int size) { Content->setFont(size); }
    traversal computeHeights() {
        Content->computeHeights();
        Height = Content.Height + 2 * PAGE_MARGIN;
    }
    traversal computePositions(int x, int y) {
        PosX = x;
        PosY = y;
        Content->computePositions(x + PAGE_MARGIN, y + PAGE_MARGIN);
    }
}

tree class Element {
    int Width = 0; int Height = 0;
    int PosX = 0; int PosY = 0;
    int FlexWidth = 0;
    int WMode = 0;        // 0 = intrinsic, 1 = percentage of available
    int RelWidth = 0;     // percentage when WMode == 1
    int FontSize = 0;
    int FontOverride = 0;
    virtual traversal resolveFlexWidths() {}
    virtual traversal resolveRelativeWidths(int avail) {}
    virtual traversal setFont(int size) {}
    virtual traversal computeHeights() {}
    virtual traversal computePositions(int x, int y) {}
}

tree class TextBox : Element {
    String Text;
    traversal resolveFlexWidths() { FlexWidth = Text.Length * CHAR_WIDTH; }
    traversal resolveRelativeWidths(int avail) {
        if (WMode == 1) { Width = avail * RelWidth / 100; }
        else {
            Width = FlexWidth;
            if (Width > avail) { Width = avail; }
        }
    }
    traversal setFont(int size) {
        FontSize = size;
        if (FontOverride > 0) { FontSize = FontOverride; }
    }
    traversal computeHeights() {
        int lines = (Text.Length * CHAR_WIDTH + Width - 1) / Width;
        Height = lines * LINE_HEIGHT * FontSize / 10;
    }
    traversal computePositions(int x, int y) { PosX = x; PosY = y; }
}

tree class Link : TextBox {
    int Underline = 1;
    traversal setFont(int size) {
        FontSize = size + 1;
        if (FontOverride > 0) { FontSize = FontOverride; }
    }
}

tree class Image : Element {
    int NativeWidth = 64;
    int NativeHeight = 64;
    traversal resolveFlexWidths() { FlexWidth = NativeWidth; }
    traversal resolveRelativeWidths(int avail) {
        if (WMode == 1) { Width = avail * RelWidth / 100; }
        else {
            Width = FlexWidth;
            if (Width > avail) { Width = avail; }
        }
    }
    traversal setFont(int size) { FontSize = size; }
    traversal computeHeights() { Height = NativeHeight * Width / NativeWidth; }
    traversal computePositions(int x, int y) { PosX = x; PosY = y; }
}

tree class List : Element {
    int Items = 1;
    int ItemLen = 10;
    traversal resolveFlexWidths() { FlexWidth = ItemLen * CHAR_WIDTH + 2 * CHAR_WIDTH; }
    traversal resolveRelativeWidths(int avail) {
        Width = FlexWidth;
        if (Width > avail) { Width = avail; }
    }
    traversal setFont(int size) {
        FontSize = size;
        if (FontOverride > 0) { FontSize = FontOverride; }
    }
    traversal computeHeights() { Height = Items * LINE_HEIGHT * FontSize / 10; }
    traversal computePositions(int x, int y) { PosX = x; PosY = y; }
}

tree class Header : Element {
    String Title;
    traversal resolveFlexWidths() { FlexWidth = Title.Length * CHAR_WIDTH * 2; }
    traversal resolveRelativeWidths(int avail) { Width = avail; }
    traversal setFont(int size) { FontSize = size * 2; }
    traversal computeHeights() { Height = 2 * LINE_HEIGHT * FontSize / 10; }
    traversal computePositions(int x, int y) { PosX = x; PosY = y; }
}

tree class Footer : Element {
    int PageNo = 0;
    traversal resolveFlexWidths() { FlexWidth = 6 * CHAR_WIDTH; }
    traversal resolveRelativeWidths(int avail) { Width = avail; }
    traversal setFont(int size) { FontSize = size - 2; }
    traversal computeHeights() { Height = LINE_HEIGHT * FontSize / 10; }
    traversal computePositions(int x, int y) { PosX = x; PosY = y; }
}

tree class HorizontalContainer : Element {
    child ElementList* Items;
    traversal resolveFlexWidths() {
        Items->resolveFlexWidths();
        FlexWidth = Items.TotalFlex;
    }
    traversal resolveRelativeWidths(int avail) {
        if (WMode == 1) { Width = avail * RelWidth / 100; }
        else {
            Width = FlexWidth;
            if (Width > avail) { Width = avail; }
        }
        Items->resolveRelativeWidths(Width);
    }
    traversal setFont(int size) {
        int s = size;
        if (FontOverride > 0) { s = FontOverride; }
        FontSize = s;
        Items->setFont(s);
    }
    traversal computeHeights() {
        Items->computeHeights();
        Height = Items.TotalHeight;
    }
    traversal computePositions(int x, int y) {
        PosX = x;
        PosY = y;
        Items->computePositions(x, y);
    }
}

tree class VerticalContainer : Element {
    child ElementList* Items;
    traversal resolveFlexWidths() {
        Items->resolveFlexWidths();
        FlexWidth = Items.TotalFlex;
    }
    traversal resolveRelativeWidths(int avail) {
        if (WMode == 1) { Width = avail * RelWidth / 100; }
        else { Width = avail; }
        Items->resolveRelativeWidths(Width);
    }
    traversal setFont(int size) {
        int s = size;
        if (FontOverride > 0) { s = FontOverride; }
        FontSize = s;
        Items->setFont(s);
    }
    traversal computeHeights() {
        Items->computeHeights();
        Height = Items.TotalHeight;
    }
    traversal computePositions(int x, int y) {
        PosX = x;
        PosY = y;
        Items->computePositions(x, y);
    }
}

tree class ElementList {
    int TotalFlex = 0;
    int TotalHeight = 0;
    virtual traversal resolveFlexWidths() {}
    virtual traversal resolveRelativeWidths(int avail) {}
    virtual traversal setFont(int size) {}
    virtual traversal computeHeights() {}
    virtual traversal computePositions(int x, int y) {}
}

tree class ElementListInner : ElementList {
    child Element* Item;
    child ElementList* Next;
    int Horiz = 0;
    traversal resolveFlexWidths() {
        Item->resolveFlexWidths();
        Next->resolveFlexWidths();
        if (Horiz == 1) { TotalFlex = Item.FlexWidth + Next.TotalFlex; }
        else {
            TotalFlex = Item.FlexWidth;
            if (Next.TotalFlex > TotalFlex) { TotalFlex = Next.TotalFlex; }
        }
    }
    traversal resolveRelativeWidths(int avail) {
        int share = avail;
        int rest = avail;
        if (Horiz == 1) {
            share = avail * Item.FlexWidth / TotalFlex;
            rest = avail - share;
        }
        Item->resolveRelativeWidths(share);
        Next->resolveRelativeWidths(rest);
    }
    traversal setFont(int size) {
        Item->setFont(size);
        Next->setFont(size);
    }
    traversal computeHeights() {
        Item->computeHeights();
        Next->computeHeights();
        if (Horiz == 1) {
            TotalHeight = Item.Height;
            if (Next.TotalHeight > TotalHeight) { TotalHeight = Next.TotalHeight; }
        } else {
            TotalHeight = Item.Height + Next.TotalHeight;
        }
    }
    traversal computePositions(int x, int y) {
        Item->computePositions(x, y);
        int nx = x;
        int ny = y;
        if (Horiz == 1) { nx = x + Item.Width; }
        else { ny = y + Item.Height; }
        Next->computePositions(nx, ny);
    }
}

tree class ElementListEnd : ElementList { }
"#;

/// The five layout passes, in invocation order (Table 2).
pub const PASSES: [&str; 5] = [
    "resolveFlexWidths",
    "resolveRelativeWidths",
    "setFont",
    "computeHeights",
    "computePositions",
];

/// Root class the passes are invoked on.
pub const ROOT_CLASS: &str = "Document";

/// Compiles the render-tree program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn program() -> Program {
    compiled().into_program()
}

/// Compiles the workload through the staged pipeline, keeping the source
/// and any frontend warnings attached for later stages.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn compiled() -> Compiled {
    match Compiled::compile(SOURCE) {
        Ok(c) => c,
        Err(err) => panic!("render program: {err}"),
    }
}

/// Helper: builds an element list (reverse order, cons-style).
fn element_list(heap: &mut Heap, items: Vec<NodeId>, horiz: bool) -> NodeId {
    let mut list = heap.alloc_by_name("ElementListEnd").unwrap();
    for item in items.into_iter().rev() {
        let cell = heap.alloc_by_name("ElementListInner").unwrap();
        heap.set_by_name(cell, "Horiz", Value::Int(i64::from(horiz)))
            .unwrap();
        heap.set_child_by_name(cell, "Item", Some(item)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    list
}

fn text_box(heap: &mut Heap, len: i64) -> NodeId {
    let t = heap.alloc_by_name("TextBox").unwrap();
    heap.set_by_name(t, "Text.Length", Value::Int(len)).unwrap();
    t
}

/// Builds one page in the shape of the paper's Fig. 8: a header, a
/// horizontal band of an image next to a column of text, a bulleted list, a
/// paragraph with an inline link, and a footer.
pub fn build_page(heap: &mut Heap, rng: &mut StdRng, page_no: i64) -> NodeId {
    let header = heap.alloc_by_name("Header").unwrap();
    heap.set_by_name(header, "Title.Length", Value::Int(rng.gen_range(8..30)))
        .unwrap();

    let image = heap.alloc_by_name("Image").unwrap();
    heap.set_by_name(image, "NativeWidth", Value::Int(rng.gen_range(32..256)))
        .unwrap();
    heap.set_by_name(image, "NativeHeight", Value::Int(rng.gen_range(32..256)))
        .unwrap();

    let mut column_items = Vec::new();
    for _ in 0..3 {
        column_items.push(text_box(heap, rng.gen_range(20..200)));
    }
    let column_list = element_list(heap, column_items, false);
    let column = heap.alloc_by_name("VerticalContainer").unwrap();
    heap.set_child_by_name(column, "Items", Some(column_list))
        .unwrap();
    heap.set_by_name(column, "WMode", Value::Int(1)).unwrap();
    heap.set_by_name(column, "RelWidth", Value::Int(60))
        .unwrap();

    let band_list = element_list(heap, vec![image, column], true);
    let band = heap.alloc_by_name("HorizontalContainer").unwrap();
    heap.set_child_by_name(band, "Items", Some(band_list))
        .unwrap();

    let list = heap.alloc_by_name("List").unwrap();
    heap.set_by_name(list, "Items", Value::Int(rng.gen_range(2..8)))
        .unwrap();
    heap.set_by_name(list, "ItemLen", Value::Int(rng.gen_range(5..40)))
        .unwrap();

    let link = heap.alloc_by_name("Link").unwrap();
    heap.set_by_name(link, "Text.Length", Value::Int(rng.gen_range(5..25)))
        .unwrap();
    let para = text_box(heap, rng.gen_range(100..600));

    let footer = heap.alloc_by_name("Footer").unwrap();
    heap.set_by_name(footer, "PageNo", Value::Int(page_no))
        .unwrap();

    let body_list = element_list(heap, vec![header, band, list, para, link, footer], false);
    let body = heap.alloc_by_name("VerticalContainer").unwrap();
    heap.set_child_by_name(body, "Items", Some(body_list))
        .unwrap();

    let page = heap.alloc_by_name("Page").unwrap();
    heap.set_child_by_name(page, "Content", Some(body)).unwrap();
    page
}

/// Builds a document of `pages` replicated Fig. 8 pages (the Fig. 9 input
/// generator). Deterministic for a given `seed`.
pub fn build_document(heap: &mut Heap, pages: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut page_ids = Vec::with_capacity(pages);
    for i in 0..pages {
        page_ids.push(build_page(heap, &mut rng, i as i64 + 1));
    }
    let mut list = heap.alloc_by_name("PageListEnd").unwrap();
    for p in page_ids.into_iter().rev() {
        let cell = heap.alloc_by_name("PageListInner").unwrap();
        heap.set_child_by_name(cell, "P", Some(p)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    let doc = heap.alloc_by_name("Document").unwrap();
    heap.set_child_by_name(doc, "Pages", Some(list)).unwrap();
    doc
}

/// Builds one *dense* page: deeply nested alternating containers with many
/// leaves (the paper's Doc2 configuration).
pub fn build_dense_page(heap: &mut Heap, depth: usize, fanout: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let content = build_dense_element(heap, &mut rng, depth, fanout, false);
    let page = heap.alloc_by_name("Page").unwrap();
    heap.set_child_by_name(page, "Content", Some(content))
        .unwrap();
    let cell = heap.alloc_by_name("PageListInner").unwrap();
    let end = heap.alloc_by_name("PageListEnd").unwrap();
    heap.set_child_by_name(cell, "P", Some(page)).unwrap();
    heap.set_child_by_name(cell, "Next", Some(end)).unwrap();
    let doc = heap.alloc_by_name("Document").unwrap();
    heap.set_child_by_name(doc, "Pages", Some(cell)).unwrap();
    doc
}

fn build_dense_element(
    heap: &mut Heap,
    rng: &mut StdRng,
    depth: usize,
    fanout: usize,
    horiz: bool,
) -> NodeId {
    if depth == 0 {
        return text_box(heap, rng.gen_range(10..120));
    }
    let mut items = Vec::with_capacity(fanout);
    for _ in 0..fanout {
        items.push(build_dense_element(heap, rng, depth - 1, fanout, !horiz));
    }
    let list = element_list(heap, items, horiz);
    let container = if horiz {
        heap.alloc_by_name("HorizontalContainer").unwrap()
    } else {
        heap.alloc_by_name("VerticalContainer").unwrap()
    };
    heap.set_child_by_name(container, "Items", Some(list))
        .unwrap();
    container
}

/// Builds a document of `pages` pages whose sizes vary randomly (the
/// paper's Doc3 configuration).
pub fn build_mixed_document(heap: &mut Heap, pages: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut page_ids = Vec::with_capacity(pages);
    for i in 0..pages {
        let depth = rng.gen_range(1..4);
        let fanout = rng.gen_range(2..5);
        let content = build_dense_element(heap, &mut rng, depth, fanout, false);
        let page = heap.alloc_by_name("Page").unwrap();
        heap.set_child_by_name(page, "Content", Some(content))
            .unwrap();
        page_ids.push(page);
        let _ = i;
    }
    let mut list = heap.alloc_by_name("PageListEnd").unwrap();
    for p in page_ids.into_iter().rev() {
        let cell = heap.alloc_by_name("PageListInner").unwrap();
        heap.set_child_by_name(cell, "P", Some(p)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    let doc = heap.alloc_by_name("Document").unwrap();
    heap.set_child_by_name(doc, "Pages", Some(list)).unwrap();
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Experiment;

    #[test]
    fn program_compiles_with_17_types() {
        let p = program();
        assert_eq!(p.classes.len(), 17);
    }

    #[test]
    fn passes_resolve_on_document() {
        let p = program();
        let doc = p.class_by_name(ROOT_CLASS).unwrap();
        for pass in PASSES {
            assert!(p.method_on_class(doc, pass).is_some(), "missing {pass}");
        }
    }

    #[test]
    fn fused_equals_unfused_on_documents() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_document(heap, 10, 42)
        });
        assert!(exp.check_equivalence());
    }

    #[test]
    fn fused_equals_unfused_on_dense_page() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_dense_page(heap, 4, 3, 7)
        });
        assert!(exp.check_equivalence());
    }

    #[test]
    fn fused_equals_unfused_on_mixed_documents() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_mixed_document(heap, 12, 3)
        });
        assert!(exp.check_equivalence());
    }

    #[test]
    fn fusion_reduces_visits_substantially() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_document(heap, 50, 1)
        });
        let cmp = exp.compare();
        let n = cmp.normalized();
        // The paper reports ~60% fewer node visits (ratio 0.4). The flex ->
        // relative-width dependence blocks one pass from fusing, so the
        // ratio must sit well below 1 but above the perfect 1/5.
        assert!(
            n.visits > 0.2 && n.visits < 0.6,
            "visit ratio {} out of expected band",
            n.visits
        );
    }

    #[test]
    fn layout_is_plausible() {
        let p = program();
        let fp = grafter::fuse(&p, ROOT_CLASS, &PASSES, &grafter::FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        let doc = build_document(&mut heap, 2, 11);
        let mut interp = grafter_runtime::Interp::new(&fp);
        interp.run(&mut heap, doc, &[]).unwrap();
        // Page 1 sits above page 2; both pages have the document width.
        let pages = heap.child_by_name(doc, "Pages").unwrap().unwrap();
        let p1 = heap.child_by_name(pages, "P").unwrap().unwrap();
        let next = heap.child_by_name(pages, "Next").unwrap().unwrap();
        let p2 = heap.child_by_name(next, "P").unwrap().unwrap();
        assert_eq!(heap.get_by_name(p1, "Width").unwrap(), Value::Int(800));
        assert_eq!(heap.get_by_name(p2, "Width").unwrap(), Value::Int(800));
        let h1 = heap.get_by_name(p1, "Height").unwrap().as_i64();
        assert!(h1 > 0);
        assert_eq!(
            heap.get_by_name(p2, "PosY").unwrap(),
            Value::Int(h1),
            "second page is stacked below the first"
        );
    }
}
