//! Measurement harness: runs a workload fused and unfused and reports the
//! paper's four metrics.
//!
//! Built on the staged `grafter::pipeline` API: an [`Experiment`] holds a
//! [`Compiled`] workload, fuses it with [`Compiled::fuse`], and executes
//! the resulting [`Fused`] artifacts through the backend-selecting
//! executor stage — [`Experiment::with_backend`] switches every run of
//! the experiment between the instrumented interpreter and the
//! `grafter-vm` bytecode VM with one argument (both produce identical
//! metrics; only wall-clock differs).

use std::time::{Duration, Instant};

use grafter::pipeline::{Compiled, Fused};
use grafter::FuseOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_runtime::{with_stack, Execute, Heap, NodeId, PureRegistry, Value};
use grafter_vm::{Backend, ExecuteBackend};

/// Stack size used for experiment runs (trees can be deep sibling chains).
pub const RUN_STACK: usize = 1 << 31;

/// The metrics of one run, mirroring the paper's measured quantities.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Traversal-function calls on nodes.
    pub visits: u64,
    /// Abstract instructions executed.
    pub instructions: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Modelled runtime in cycles (instructions + memory stalls).
    pub cycles: u64,
    /// Wall-clock time of the interpreter run.
    pub wall: Duration,
    /// Live tree size in bytes (before the run).
    pub tree_bytes: u64,
}

/// Fused-over-unfused normalisation of every metric (the y-axis of the
/// paper's figures; < 1.0 means fusion wins).
#[derive(Clone, Debug)]
pub struct Normalized {
    pub visits: f64,
    pub instructions: f64,
    pub l2_misses: f64,
    pub l3_misses: f64,
    pub runtime: f64,
}

/// A fused/unfused pair of runs on identical input.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub fused: RunStats,
    pub unfused: RunStats,
}

impl Comparison {
    /// Normalised metrics (fused / unfused).
    pub fn normalized(&self) -> Normalized {
        let ratio = |a: u64, b: u64| {
            if b == 0 {
                1.0
            } else {
                a as f64 / b as f64
            }
        };
        Normalized {
            visits: ratio(self.fused.visits, self.unfused.visits),
            instructions: ratio(self.fused.instructions, self.unfused.instructions),
            l2_misses: ratio(self.fused.l2_misses, self.unfused.l2_misses),
            l3_misses: ratio(self.fused.l3_misses, self.unfused.l3_misses),
            runtime: ratio(self.fused.cycles, self.unfused.cycles),
        }
    }
}

/// A self-contained experiment: a compiled workload, an entry sequence and
/// an input builder. `Send + 'static` so runs can move to a big-stack
/// worker thread.
pub struct Experiment {
    /// The workload, compiled through the pipeline's frontend stage.
    pub compiled: Compiled,
    /// Root class of the entry sequence.
    pub root_class: &'static str,
    /// Entry traversal names, in invocation order.
    pub passes: Vec<&'static str>,
    /// Per-traversal entry arguments.
    pub args: Vec<Vec<Value>>,
    /// Builds the input tree.
    pub build: Box<dyn Fn(&mut Heap) -> NodeId + Send + Sync>,
    /// Extra pure functions (besides the math defaults).
    pub pures: fn() -> PureRegistry,
    /// Which execution tier runs the experiment (default: interpreter).
    pub backend: Backend,
}

impl Experiment {
    /// Creates an experiment with default math pures and no arguments.
    pub fn new(
        compiled: Compiled,
        root_class: &'static str,
        passes: &[&'static str],
        build: impl Fn(&mut Heap) -> NodeId + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            compiled,
            root_class,
            passes: passes.to_vec(),
            args: Vec::new(),
            build: Box::new(build),
            pures: PureRegistry::with_math,
            backend: Backend::default(),
        }
    }

    /// Selects the execution backend for every run of this experiment.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Fuses the experiment's entry sequence.
    pub fn fuse_with(&self, opts: &FuseOptions) -> Fused {
        self.compiled
            .fuse(self.root_class, &self.passes, opts)
            .expect("experiment entry sequence resolves")
    }

    /// Runs one configuration with the cache simulator attached.
    pub fn run_stats(&self, fused: &Fused) -> RunStats {
        let mut heap = fused.new_heap();
        let root = (self.build)(&mut heap);
        let tree_bytes = heap.live_bytes();
        // Build the executor (pures, cache, args — and, on the VM tier,
        // the lowered bytecode module) outside the timed region so `wall`
        // measures only the execution run.
        let executor = fused
            .backend_executor(self.backend)
            .pures((self.pures)())
            .cache(CacheHierarchy::xeon())
            .args(self.args.clone());
        let start = Instant::now();
        let report = executor.run(&mut heap, root).expect("run succeeds");
        let wall = start.elapsed();
        let cache = report.cache.as_ref().expect("cache attached");
        RunStats {
            visits: report.metrics.visits,
            instructions: report.metrics.instructions,
            l1_misses: cache.misses(0),
            l2_misses: cache.misses(1),
            l3_misses: cache.misses(2),
            cycles: report.cycles(),
            wall,
            tree_bytes,
        }
    }

    /// Runs the experiment fused and unfused on identical inputs, on a
    /// dedicated large-stack thread.
    pub fn compare(self) -> Comparison {
        self.compare_with(FuseOptions::default())
    }

    /// Like [`Experiment::compare`] but with custom fused options (used for
    /// cutoff ablations).
    pub fn compare_with(self, opts: FuseOptions) -> Comparison {
        with_stack(RUN_STACK, move || {
            let fused = self.fuse_with(&opts);
            let unfused = self.fuse_with(&FuseOptions::unfused());
            Comparison {
                fused: self.run_stats(&fused),
                unfused: self.run_stats(&unfused),
            }
        })
    }

    /// Differential check: fused and unfused runs must leave identical
    /// trees. Returns the two snapshots' equality.
    pub fn check_equivalence(self) -> bool {
        with_stack(RUN_STACK, move || {
            let fused = self.fuse_with(&FuseOptions::default());
            let unfused = self.fuse_with(&FuseOptions::unfused());
            let snap = |artifact: &Fused| {
                let mut heap = artifact.new_heap();
                let root = (self.build)(&mut heap);
                artifact
                    .backend_executor(self.backend)
                    .pures((self.pures)())
                    .args(self.args.clone())
                    .run(&mut heap, root)
                    .expect("run succeeds");
                heap.snapshot(root)
            };
            snap(&fused) == snap(&unfused)
        })
    }
}
