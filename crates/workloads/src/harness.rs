//! Measurement harness: runs a workload fused and unfused and reports the
//! paper's four metrics.
//!
//! Built on the Engine API: an [`Experiment`] holds a [`Compiled`]
//! workload and builds one immutable [`Engine`] per configuration
//! (fused, unfused, ablation cutoffs) — compile, fusion and (on the VM
//! tier) bytecode lowering run once per engine, then every measured run
//! is just a [`Session`](grafter_engine::Session). [`Experiment::with_backend`]
//! switches every run between the instrumented interpreter and the
//! `grafter-vm` bytecode VM with one argument (both produce identical
//! metrics; only wall-clock differs). [`batch_throughput`] measures the
//! concurrent story: one shared engine fanning a batch of trees across
//! worker threads.

use std::time::{Duration, Instant};

use grafter::pipeline::Compiled;
use grafter::FuseOptions;
use grafter_cachesim::CacheHierarchy;
use grafter_engine::{BatchOptions, Engine};
use grafter_runtime::{with_stack, Heap, NodeId, PureRegistry, Value};
use grafter_vm::Backend;

/// Stack size used for experiment runs (trees can be deep sibling chains).
pub const RUN_STACK: usize = 1 << 31;

/// The metrics of one run, mirroring the paper's measured quantities.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Traversal-function calls on nodes.
    pub visits: u64,
    /// Abstract instructions executed.
    pub instructions: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Modelled runtime in cycles (instructions + memory stalls).
    pub cycles: u64,
    /// Wall-clock time of the interpreter run.
    pub wall: Duration,
    /// Live tree size in bytes (before the run).
    pub tree_bytes: u64,
}

/// Fused-over-unfused normalisation of every metric (the y-axis of the
/// paper's figures; < 1.0 means fusion wins).
#[derive(Clone, Debug)]
pub struct Normalized {
    pub visits: f64,
    pub instructions: f64,
    pub l2_misses: f64,
    pub l3_misses: f64,
    pub runtime: f64,
}

/// A fused/unfused pair of runs on identical input.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub fused: RunStats,
    pub unfused: RunStats,
}

impl Comparison {
    /// Normalised metrics (fused / unfused).
    pub fn normalized(&self) -> Normalized {
        let ratio = |a: u64, b: u64| {
            if b == 0 {
                1.0
            } else {
                a as f64 / b as f64
            }
        };
        Normalized {
            visits: ratio(self.fused.visits, self.unfused.visits),
            instructions: ratio(self.fused.instructions, self.unfused.instructions),
            l2_misses: ratio(self.fused.l2_misses, self.unfused.l2_misses),
            l3_misses: ratio(self.fused.l3_misses, self.unfused.l3_misses),
            runtime: ratio(self.fused.cycles, self.unfused.cycles),
        }
    }
}

/// A self-contained experiment: a compiled workload, an entry sequence and
/// an input builder. `Send + 'static` so runs can move to a big-stack
/// worker thread.
pub struct Experiment {
    /// The workload, compiled through the pipeline's frontend stage.
    pub compiled: Compiled,
    /// Root class of the entry sequence.
    pub root_class: &'static str,
    /// Entry traversal names, in invocation order.
    pub passes: Vec<&'static str>,
    /// Per-traversal entry arguments.
    pub args: Vec<Vec<Value>>,
    /// Builds the input tree.
    pub build: Box<dyn Fn(&mut Heap) -> NodeId + Send + Sync>,
    /// Extra pure functions (besides the math defaults).
    pub pures: fn() -> PureRegistry,
    /// Which execution tier runs the experiment (default: interpreter).
    pub backend: Backend,
}

impl Experiment {
    /// Creates an experiment with default math pures and no arguments.
    pub fn new(
        compiled: Compiled,
        root_class: &'static str,
        passes: &[&'static str],
        build: impl Fn(&mut Heap) -> NodeId + Send + Sync + 'static,
    ) -> Self {
        Experiment {
            compiled,
            root_class,
            passes: passes.to_vec(),
            args: Vec::new(),
            build: Box::new(build),
            pures: PureRegistry::with_math,
            backend: Backend::default(),
        }
    }

    /// Selects the execution backend for every run of this experiment.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Builds the immutable engine for this experiment's entry sequence:
    /// the compile-once step every subsequent session shares.
    pub fn engine_with(&self, opts: &FuseOptions) -> Engine {
        Engine::builder()
            .compiled(self.compiled.clone())
            .entry(self.root_class, &self.passes)
            .fusion(opts.clone())
            .backend(self.backend)
            .pures((self.pures)())
            .args(self.args.clone())
            .build()
            .expect("experiment entry sequence resolves")
    }

    /// [`Experiment::engine_with`] with default (fused) options.
    pub fn engine(&self) -> Engine {
        self.engine_with(&FuseOptions::default())
    }

    /// Runs one configuration with the cache simulator attached.
    pub fn run_stats(&self, engine: &Engine) -> RunStats {
        // Sessions own the heap; attaching the hierarchy here keeps the
        // engine reusable for uninstrumented (wall-clock) runs.
        let mut session = engine.session().with_cache(CacheHierarchy::xeon());
        let root = (self.build)(session.heap_mut());
        let tree_bytes = session.heap().live_bytes();
        let report = session.run(root).expect("run succeeds");
        let cache = report.cache.as_ref().expect("cache attached");
        RunStats {
            visits: report.metrics.visits,
            instructions: report.metrics.instructions,
            l1_misses: cache.misses(0),
            l2_misses: cache.misses(1),
            l3_misses: cache.misses(2),
            cycles: report.cycles(),
            wall: report.wall,
            tree_bytes,
        }
    }

    /// Runs the experiment fused and unfused on identical inputs, on a
    /// dedicated large-stack thread.
    pub fn compare(self) -> Comparison {
        self.compare_with(FuseOptions::default())
    }

    /// Like [`Experiment::compare`] but with custom fused options (used for
    /// cutoff ablations).
    pub fn compare_with(self, opts: FuseOptions) -> Comparison {
        with_stack(RUN_STACK, move || {
            let fused = self.engine_with(&opts);
            let unfused = self.engine_with(&FuseOptions::unfused());
            Comparison {
                fused: self.run_stats(&fused),
                unfused: self.run_stats(&unfused),
            }
        })
    }

    /// Differential check: fused and unfused runs must leave identical
    /// trees. Returns the two snapshots' equality.
    pub fn check_equivalence(self) -> bool {
        with_stack(RUN_STACK, move || {
            let snap = |engine: &Engine| {
                let mut session = engine.session();
                let root = (self.build)(session.heap_mut());
                session.run(root).expect("run succeeds");
                session.snapshot(root)
            };
            snap(&self.engine_with(&FuseOptions::default()))
                == snap(&self.engine_with(&FuseOptions::unfused()))
        })
    }
}

/// One batch-throughput measurement: `trees` identical inputs fanned out
/// over `workers` threads sharing one engine.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Worker threads used.
    pub workers: usize,
    /// Number of trees executed.
    pub trees: usize,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
}

impl Throughput {
    /// Executed trees per second of batch wall time.
    pub fn trees_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.trees as f64 / secs
        }
    }
}

/// Measures batch throughput of `engine`: builds `trees` inputs with
/// `build` and times one [`Engine::run_batch_with`] fan-out across
/// `workers` threads (each with an experiment-sized stack).
///
/// The reports themselves are cross-checked for determinism — every tree
/// is identical, so every report must be too.
pub fn batch_throughput(
    engine: &Engine,
    build: &(dyn Fn(&mut Heap) -> NodeId + Sync),
    trees: usize,
    workers: usize,
) -> Throughput {
    let inputs: Vec<_> = (0..trees).map(|_| |heap: &mut Heap| build(heap)).collect();
    let opts = BatchOptions {
        workers,
        stack_bytes: RUN_STACK,
        ..BatchOptions::default()
    };
    let start = Instant::now();
    let reports = engine
        .run_batch_with(inputs, &opts)
        .expect("batch succeeds");
    let wall = start.elapsed();
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "identical inputs must produce identical reports"
    );
    Throughput {
        workers,
        trees,
        wall,
    }
}
