//! Case study 2 (§5.2): AST traversals for a simple imperative language.
//!
//! Twenty node types (Fig. 10) and six passes (Table 2): two de-sugaring
//! passes (`++`/`--` become assignments — real `new`/`delete` topology
//! mutation), constant propagation written as *two* cooperating traversals
//! (`propagateConstants` initiates `replaceVarRefs` on the statements that
//! follow a constant assignment; the replacement truncates at the next
//! reassignment via `return`), constant folding, and unused-branch removal
//! (deletes whole subtrees).
//!
//! Dynamic type tests use a `kind` tag field (set at construction) because
//! the language — like Grafter's — has no `instanceof`; conditional
//! initiation of `replaceVarRefs` uses the paper's §3.5 idiom of pushing
//! the condition into an unconditionally-invoked traversal that returns
//! immediately when disabled.

use grafter::pipeline::Compiled;
use grafter_frontend::Program;
use grafter_runtime::{Heap, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statement kind tags.
pub mod kind {
    pub const STMT_ASSIGN: i64 = 1;
    pub const STMT_IF: i64 = 2;
    pub const STMT_INCR: i64 = 3;
    pub const STMT_DECR: i64 = 4;
    pub const STMT_RETURN: i64 = 6;
    pub const EXPR_CONST: i64 = 1;
    pub const EXPR_VAR: i64 = 2;
    pub const EXPR_BIN: i64 = 3;
    pub const EXPR_UN: i64 = 4;
    pub const OP_ADD: i64 = 0;
    pub const OP_SUB: i64 = 1;
    pub const OP_MUL: i64 = 2;
}

/// The AST program in the Grafter DSL.
pub const SOURCE: &str = include_str!("ast.gr");

/// The AST passes, in invocation order (Table 2). `replaceVarRefs` is
/// initiated internally by `propagateConstants`.
pub const PASSES: [&str; 5] = [
    "desugarIncr",
    "desugarDecr",
    "propagateConstants",
    "foldConstants",
    "removeUnusedBranches",
];

/// Root class the passes are invoked on.
pub const ROOT_CLASS: &str = "ProgramRoot";

/// Compiles the AST program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn program() -> Program {
    compiled().into_program()
}

/// Compiles the workload through the staged pipeline, keeping the source
/// and any frontend warnings attached for later stages.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn compiled() -> Compiled {
    match Compiled::compile(SOURCE) {
        Ok(c) => c,
        Err(err) => panic!("ast program: {err}"),
    }
}

// ---- input generators ------------------------------------------------------

fn constant(heap: &mut Heap, v: i64) -> NodeId {
    let c = heap.alloc_by_name("ConstantExpr").unwrap();
    heap.set_by_name(c, "kind", Value::Int(kind::EXPR_CONST))
        .unwrap();
    heap.set_by_name(c, "Value", Value::Int(v)).unwrap();
    c
}

fn var_ref(heap: &mut Heap, var: i64) -> NodeId {
    let v = heap.alloc_by_name("VarRefExpr").unwrap();
    heap.set_by_name(v, "kind", Value::Int(kind::EXPR_VAR))
        .unwrap();
    heap.set_by_name(v, "VarId", Value::Int(var)).unwrap();
    v
}

fn binary(heap: &mut Heap, op: i64, lhs: NodeId, rhs: NodeId) -> NodeId {
    let b = heap.alloc_by_name("BinaryExpr").unwrap();
    heap.set_by_name(b, "kind", Value::Int(kind::EXPR_BIN))
        .unwrap();
    heap.set_by_name(b, "Op", Value::Int(op)).unwrap();
    heap.set_child_by_name(b, "Lhs", Some(lhs)).unwrap();
    heap.set_child_by_name(b, "Rhs", Some(rhs)).unwrap();
    b
}

fn random_expr(heap: &mut Heap, rng: &mut StdRng, depth: usize, n_vars: i64) -> NodeId {
    if depth == 0 || rng.gen_bool(0.35) {
        if rng.gen_bool(0.5) {
            constant(heap, rng.gen_range(-20..20))
        } else {
            var_ref(heap, rng.gen_range(0..n_vars))
        }
    } else if rng.gen_bool(0.15) {
        let operand = random_expr(heap, rng, depth - 1, n_vars);
        let u = heap.alloc_by_name("UnaryExpr").unwrap();
        heap.set_by_name(u, "kind", Value::Int(kind::EXPR_UN))
            .unwrap();
        heap.set_child_by_name(u, "Operand", Some(operand)).unwrap();
        u
    } else {
        let lhs = random_expr(heap, rng, depth - 1, n_vars);
        let rhs = random_expr(heap, rng, depth - 1, n_vars);
        binary(heap, rng.gen_range(0..3), lhs, rhs)
    }
}

fn assign(heap: &mut Heap, var: i64, rhs: NodeId) -> NodeId {
    let a = heap.alloc_by_name("AssignStmt").unwrap();
    heap.set_by_name(a, "kind", Value::Int(kind::STMT_ASSIGN))
        .unwrap();
    let lhs = var_ref(heap, var);
    heap.set_child_by_name(a, "Lhs", Some(lhs)).unwrap();
    heap.set_child_by_name(a, "Rhs", Some(rhs)).unwrap();
    a
}

fn stmt_list(heap: &mut Heap, stmts: Vec<NodeId>) -> NodeId {
    let mut list = heap.alloc_by_name("StmtListEnd").unwrap();
    for s in stmts.into_iter().rev() {
        let cell = heap.alloc_by_name("StmtListInner").unwrap();
        heap.set_child_by_name(cell, "S", Some(s)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    list
}

fn random_stmt(heap: &mut Heap, rng: &mut StdRng, depth: usize, n_vars: i64) -> NodeId {
    let roll: f64 = rng.gen();
    if roll < 0.35 {
        // Half of the assignments are constant (seeds for propagation).
        let rhs = if rng.gen_bool(0.5) {
            constant(heap, rng.gen_range(-50..50))
        } else {
            random_expr(heap, rng, 2, n_vars)
        };
        assign(heap, rng.gen_range(0..n_vars), rhs)
    } else if roll < 0.55 {
        let s = if rng.gen_bool(0.5) {
            heap.alloc_by_name("IncrStmt").unwrap()
        } else {
            heap.alloc_by_name("DecrStmt").unwrap()
        };
        let k = if rng.gen_bool(0.5) {
            kind::STMT_INCR
        } else {
            kind::STMT_DECR
        };
        // kind matches the allocated class.
        let k = if heap.program().classes[heap.class_of_raw(s).index()].name == "IncrStmt" {
            kind::STMT_INCR
        } else {
            let _ = k;
            kind::STMT_DECR
        };
        heap.set_by_name(s, "kind", Value::Int(k)).unwrap();
        heap.set_by_name(s, "VarId", Value::Int(rng.gen_range(0..n_vars)))
            .unwrap();
        s
    } else if roll < 0.7 && depth > 0 {
        let cond = random_expr(heap, rng, 2, n_vars);
        let n_then = rng.gen_range(1..4);
        let n_else = rng.gen_range(0..3);
        let then_stmts = (0..n_then)
            .map(|_| random_stmt(heap, rng, depth - 1, n_vars))
            .collect();
        let else_stmts = (0..n_else)
            .map(|_| random_stmt(heap, rng, depth - 1, n_vars))
            .collect();
        let then_list = stmt_list(heap, then_stmts);
        let else_list = stmt_list(heap, else_stmts);
        let i = heap.alloc_by_name("IfStmt").unwrap();
        heap.set_by_name(i, "kind", Value::Int(kind::STMT_IF))
            .unwrap();
        heap.set_child_by_name(i, "Cond", Some(cond)).unwrap();
        heap.set_child_by_name(i, "Then", Some(then_list)).unwrap();
        heap.set_child_by_name(i, "Else", Some(else_list)).unwrap();
        i
    } else {
        let val = random_expr(heap, rng, 2, n_vars);
        let r = heap.alloc_by_name("ReturnStmt").unwrap();
        heap.set_by_name(r, "kind", Value::Int(kind::STMT_RETURN))
            .unwrap();
        heap.set_child_by_name(r, "Val", Some(val)).unwrap();
        r
    }
}

fn function(heap: &mut Heap, rng: &mut StdRng, id: i64, n_stmts: usize, n_vars: i64) -> NodeId {
    let stmts = (0..n_stmts)
        .map(|_| random_stmt(heap, rng, 2, n_vars))
        .collect();
    let body = stmt_list(heap, stmts);
    let f = heap.alloc_by_name("Function").unwrap();
    heap.set_by_name(f, "FuncId", Value::Int(id)).unwrap();
    heap.set_child_by_name(f, "Body", Some(body)).unwrap();
    f
}

fn program_of(heap: &mut Heap, funcs: Vec<NodeId>) -> NodeId {
    let mut list = heap.alloc_by_name("FunctionListEnd").unwrap();
    for f in funcs.into_iter().rev() {
        let cell = heap.alloc_by_name("FunctionListInner").unwrap();
        heap.set_child_by_name(cell, "F", Some(f)).unwrap();
        heap.set_child_by_name(cell, "Next", Some(list)).unwrap();
        list = cell;
    }
    let root = heap.alloc_by_name("ProgramRoot").unwrap();
    heap.set_child_by_name(root, "Funcs", Some(list)).unwrap();
    root
}

/// Builds a program of `n_funcs` replicated random functions (Fig. 11's
/// generator: "a function ... replicated in order to obtain bigger trees").
pub fn build_program(heap: &mut Heap, n_funcs: usize, seed: u64) -> NodeId {
    build_custom(heap, n_funcs, 12, 6, seed)
}

/// Fully parameterised random program builder (used by shrinking tests).
pub fn build_custom(
    heap: &mut Heap,
    n_funcs: usize,
    n_stmts: usize,
    n_vars: i64,
    seed: u64,
) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let funcs = (0..n_funcs)
        .map(|i| function(heap, &mut rng, i as i64, n_stmts, n_vars))
        .collect();
    program_of(heap, funcs)
}

/// Table 4 Prog1: a large number of normal-sized functions.
pub fn build_prog1(heap: &mut Heap, n_funcs: usize, seed: u64) -> NodeId {
    build_program(heap, n_funcs, seed)
}

/// Table 4 Prog2: one large function.
pub fn build_prog2(heap: &mut Heap, n_stmts: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = function(heap, &mut rng, 0, n_stmts, 6);
    program_of(heap, vec![f])
}

/// Table 4 Prog3: functions with long live ranges — each constant
/// assignment is followed by a long run of statements that use the
/// variable, so `replaceVarRefs` traversals stay active for a long time.
pub fn build_prog3(heap: &mut Heap, n_funcs: usize, range_len: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut funcs = Vec::new();
    for i in 0..n_funcs {
        let mut stmts = Vec::new();
        // Constant seed assignment, then a long live range of uses.
        let c = constant(heap, rng.gen_range(1..20));
        stmts.push(assign(heap, 0, c));
        for _ in 0..range_len {
            let lhs = var_ref(heap, 0);
            let rhs = random_expr(heap, &mut rng, 1, 4);
            let use_expr = binary(heap, kind::OP_ADD, lhs, rhs);
            stmts.push(assign(heap, rng.gen_range(1..5), use_expr));
        }
        let body = stmt_list(heap, stmts);
        let f = heap.alloc_by_name("Function").unwrap();
        heap.set_by_name(f, "FuncId", Value::Int(i as i64)).unwrap();
        heap.set_child_by_name(f, "Body", Some(body)).unwrap();
        funcs.push(f);
    }
    program_of(heap, funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Experiment;

    #[test]
    fn program_compiles_with_20_types() {
        let p = program();
        assert_eq!(p.classes.len(), 20);
    }

    #[test]
    fn fused_equals_unfused_on_random_programs() {
        for seed in [1, 7, 23] {
            let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, move |heap| {
                build_program(heap, 6, seed)
            });
            assert!(exp.check_equivalence(), "seed {seed}");
        }
    }

    #[test]
    fn fused_equals_unfused_on_prog_configs() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_prog2(heap, 40, 5)
        });
        assert!(exp.check_equivalence());
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_prog3(heap, 4, 20, 5)
        });
        assert!(exp.check_equivalence());
    }

    #[test]
    fn desugaring_rewrites_incr_and_decr() {
        let p = program();
        let fp = grafter::fuse(&p, ROOT_CLASS, &PASSES, &grafter::FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        let incr = heap.alloc_by_name("IncrStmt").unwrap();
        heap.set_by_name(incr, "kind", Value::Int(kind::STMT_INCR))
            .unwrap();
        heap.set_by_name(incr, "VarId", Value::Int(3)).unwrap();
        let body = stmt_list(&mut heap, vec![incr]);
        let f = heap.alloc_by_name("Function").unwrap();
        heap.set_child_by_name(f, "Body", Some(body)).unwrap();
        let root = program_of(&mut heap, vec![f]);

        let mut interp = grafter_runtime::Interp::new(&fp);
        interp.run(&mut heap, root, &[]).unwrap();

        // The IncrStmt was replaced by `v3 = v3 + 1`, which constant
        // folding cannot collapse (v3 is not constant).
        let funcs = heap.child_by_name(root, "Funcs").unwrap().unwrap();
        let f = heap.child_by_name(funcs, "F").unwrap().unwrap();
        let body = heap.child_by_name(f, "Body").unwrap().unwrap();
        let s = heap.child_by_name(body, "S").unwrap().unwrap();
        let class = &p.classes[heap.class_of_raw(s).index()].name;
        assert_eq!(class, "AssignStmt");
        assert_eq!(
            heap.get_by_name(s, "kind").unwrap(),
            Value::Int(kind::STMT_ASSIGN)
        );
        let rhs = heap.child_by_name(s, "Rhs").unwrap().unwrap();
        assert_eq!(
            heap.program().classes[heap.class_of_raw(rhs).index()].name,
            "BinaryExpr"
        );
    }

    #[test]
    fn constant_propagation_and_folding_collapse_branches() {
        let p = program();
        let fp = grafter::fuse(&p, ROOT_CLASS, &PASSES, &grafter::FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        // x = 2; if (x - 2) { y = 1 } else { y = 2 }
        let two = constant(&mut heap, 2);
        let seed_assign = assign(&mut heap, 0, two);
        let cond_lhs = var_ref(&mut heap, 0);
        let cond_rhs = constant(&mut heap, 2);
        let cond = binary(&mut heap, kind::OP_SUB, cond_lhs, cond_rhs);
        let then_s = {
            let c = constant(&mut heap, 1);
            assign(&mut heap, 1, c)
        };
        let else_s = {
            let c = constant(&mut heap, 2);
            assign(&mut heap, 1, c)
        };
        let then_list = stmt_list(&mut heap, vec![then_s]);
        let else_list = stmt_list(&mut heap, vec![else_s]);
        let ifs = heap.alloc_by_name("IfStmt").unwrap();
        heap.set_by_name(ifs, "kind", Value::Int(kind::STMT_IF))
            .unwrap();
        heap.set_child_by_name(ifs, "Cond", Some(cond)).unwrap();
        heap.set_child_by_name(ifs, "Then", Some(then_list))
            .unwrap();
        heap.set_child_by_name(ifs, "Else", Some(else_list))
            .unwrap();
        let body = stmt_list(&mut heap, vec![seed_assign, ifs]);
        let f = heap.alloc_by_name("Function").unwrap();
        heap.set_child_by_name(f, "Body", Some(body)).unwrap();
        let root = program_of(&mut heap, vec![f]);

        let mut interp = grafter_runtime::Interp::new(&fp);
        interp.run(&mut heap, root, &[]).unwrap();

        // x propagated into the condition, folded to 0, so the Then branch
        // was deleted and replaced with an empty list.
        let funcs = heap.child_by_name(root, "Funcs").unwrap().unwrap();
        let f = heap.child_by_name(funcs, "F").unwrap().unwrap();
        let body = heap.child_by_name(f, "Body").unwrap().unwrap();
        let next = heap.child_by_name(body, "Next").unwrap().unwrap();
        let if_node = heap.child_by_name(next, "S").unwrap().unwrap();
        let cond = heap.child_by_name(if_node, "Cond").unwrap().unwrap();
        assert_eq!(
            heap.get_by_name(cond, "kind").unwrap(),
            Value::Int(kind::EXPR_CONST)
        );
        assert_eq!(heap.get_by_name(cond, "Value").unwrap(), Value::Int(0));
        let then_branch = heap.child_by_name(if_node, "Then").unwrap().unwrap();
        assert_eq!(
            heap.program().classes[heap.class_of_raw(then_branch).index()].name,
            "StmtListEnd",
            "false branch contents were removed"
        );
    }

    #[test]
    fn fusion_reduces_visits() {
        let exp = Experiment::new(compiled(), ROOT_CLASS, &PASSES, |heap| {
            build_program(heap, 30, 2)
        });
        let cmp = exp.compare();
        let n = cmp.normalized();
        assert!(n.visits < 0.95, "visit ratio {}", n.visits);
    }
}
