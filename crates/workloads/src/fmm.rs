//! Case study 4 (§5.4): a fast-multipole-method kernel.
//!
//! Reimplements the Treelogy-derived FMM benchmark shape used by TreeFuser
//! and Grafter: a spatial binary tree over a 1-D point distribution with
//! two passes that Grafter can fully fuse:
//!
//! 1. `computeMultipole` — post-order upward pass aggregating mass and
//!    centre-of-mass of every cell;
//! 2. `computePotential` — evaluates a far-field potential approximation
//!    per cell from its children's multipole expansions plus a near-field
//!    self term.
//!
//! The original benchmark ran on up to 10⁸ points; the reproduction sweeps
//! a scaled-down range (the interpreter substrate is ~100× slower than
//! native code, and the *relative* fused/unfused behaviour is
//! size-stable).

use grafter::pipeline::Compiled;
use grafter_frontend::Program;
use grafter_runtime::{Heap, NodeId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The FMM program in the Grafter DSL.
pub const SOURCE: &str = r#"
global float THETA = 0.5;

tree class FmmNode {
    float Lo = 0.0;
    float Hi = 0.0;
    float Mass = 0.0;
    float Center = 0.0;
    float Potential = 0.0;
    virtual traversal computeMultipole() {}
    virtual traversal computePotential() {}
}

tree class FmmCell : FmmNode {
    child FmmNode* Left;
    child FmmNode* Right;
    traversal computeMultipole() {
        Left->computeMultipole();
        Right->computeMultipole();
        Mass = Left.Mass + Right.Mass;
        Center = 0.0;
        if (Mass > 0.0) {
            Center = (Left.Mass * Left.Center + Right.Mass * Right.Center) / Mass;
        }
    }
    traversal computePotential() {
        Left->computePotential();
        Right->computePotential();
        // Far-field approximation: children interact through their
        // multipole expansions (mass, centre) instead of point pairs.
        float dist = Right.Center - Left.Center;
        if (dist < 0.0) { dist = 0.0 - dist; }
        float interaction = 0.0;
        if (dist > 0.0001) { interaction = Left.Mass * Right.Mass / dist; }
        Potential = Left.Potential + Right.Potential + interaction;
    }
}

tree class FmmBody : FmmNode {
    float SelfPotential = 0.0;
    traversal computeMultipole() {
        // Mass and Center were assigned at construction; the pass
        // normalises them into the multipole fields.
        Mass = Mass;
        Center = Center;
    }
    traversal computePotential() {
        Potential = SelfPotential * Mass;
    }
}
"#;

/// The two FMM passes.
pub const PASSES: [&str; 2] = ["computeMultipole", "computePotential"];

/// Root class the passes are invoked on.
pub const ROOT_CLASS: &str = "FmmNode";

/// Compiles the FMM program.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn program() -> Program {
    compiled().into_program()
}

/// Compiles the workload through the staged pipeline, keeping the source
/// and any frontend warnings attached for later stages.
///
/// # Panics
///
/// Panics if the embedded source fails to compile (a bug in this crate).
pub fn compiled() -> Compiled {
    match Compiled::compile(SOURCE) {
        Ok(c) => c,
        Err(err) => panic!("fmm program: {err}"),
    }
}

/// Builds the spatial tree over `n_points` uniformly distributed points.
///
/// Points are sorted and recursively bisected, giving the balanced cell
/// tree the Treelogy benchmark constructs.
pub fn build_tree(heap: &mut Heap, n_points: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points: Vec<(f64, f64)> = (0..n_points)
        .map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.1..2.0)))
        .collect();
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    // The bisection tree over n sorted points has n bodies and n - 1
    // cells: pre-size the arena so construction never regrows the pool.
    let body = heap.program().class_by_name("FmmBody").unwrap();
    let cell = heap.program().class_by_name("FmmCell").unwrap();
    heap.reserve_classes(&[(body, n_points), (cell, n_points.saturating_sub(1))]);
    build_cell(heap, &points)
}

fn build_cell(heap: &mut Heap, points: &[(f64, f64)]) -> NodeId {
    if points.len() == 1 {
        let (x, mass) = points[0];
        let body = heap.alloc_by_name("FmmBody").unwrap();
        heap.set_by_name(body, "Lo", Value::Float(x)).unwrap();
        heap.set_by_name(body, "Hi", Value::Float(x)).unwrap();
        heap.set_by_name(body, "Mass", Value::Float(mass)).unwrap();
        heap.set_by_name(body, "Center", Value::Float(x)).unwrap();
        heap.set_by_name(body, "SelfPotential", Value::Float(0.25))
            .unwrap();
        return body;
    }
    let mid = points.len() / 2;
    let left = build_cell(heap, &points[..mid]);
    let right = build_cell(heap, &points[mid..]);
    let cell = heap.alloc_by_name("FmmCell").unwrap();
    heap.set_by_name(cell, "Lo", Value::Float(points[0].0))
        .unwrap();
    heap.set_by_name(cell, "Hi", Value::Float(points[points.len() - 1].0))
        .unwrap();
    heap.set_child_by_name(cell, "Left", Some(left)).unwrap();
    heap.set_child_by_name(cell, "Right", Some(right)).unwrap();
    cell
}

/// Builds the FMM [`crate::harness::Experiment`] for `n_points`.
pub fn experiment(n_points: usize, seed: u64) -> crate::harness::Experiment {
    crate::harness::Experiment::new(compiled(), ROOT_CLASS, &PASSES, move |heap| {
        build_tree(heap, n_points, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafter::{fuse, FuseOptions};
    use grafter_runtime::Interp;

    #[test]
    fn program_compiles() {
        assert_eq!(program().classes.len(), 3);
    }

    #[test]
    fn passes_fully_fuse() {
        let p = program();
        let fp = fuse(&p, ROOT_CLASS, &PASSES, &FuseOptions::default()).unwrap();
        assert!(fp.fully_fused(), "FMM passes must fuse completely");
    }

    #[test]
    fn multipole_conserves_mass() {
        let p = program();
        let fp = fuse(&p, ROOT_CLASS, &PASSES, &FuseOptions::default()).unwrap();
        let mut heap = Heap::new(&p);
        let root = build_tree(&mut heap, 64, 5);
        let mut interp = Interp::new(&fp);
        interp.run(&mut heap, root, &[]).unwrap();
        let total = heap.get_by_name(root, "Mass").unwrap().as_f64();
        assert!(total > 0.0);
        // Sum of leaf masses equals the root multipole mass.
        let mut acc = 0.0;
        for id in 0..heap.len() {
            let class = heap.class_of_raw(grafter_runtime::NodeId(id as u32));
            if heap.program().classes[class.index()].name == "FmmBody" {
                acc += heap
                    .get_by_name(grafter_runtime::NodeId(id as u32), "Mass")
                    .unwrap()
                    .as_f64();
            }
        }
        assert!((acc - total).abs() < 1e-9, "{acc} vs {total}");
    }

    #[test]
    fn fused_equals_unfused() {
        let exp = experiment(256, 11);
        assert!(exp.check_equivalence());
    }

    #[test]
    fn fusion_halves_visits() {
        let exp = experiment(512, 2);
        let n = exp.compare().normalized();
        assert!((n.visits - 0.5).abs() < 0.05, "visit ratio {}", n.visits);
    }
}
