//! The four case studies as uniform descriptors.
//!
//! Every driver that sweeps "all the workloads" — the Criterion bench,
//! the `vm_compare` backend comparison, the backend differential tests —
//! reads this one matrix, so a change to a workload's entry sequence (or
//! to the kd-tree schedule selection) propagates to every driver at once
//! instead of requiring three copies to be edited in lockstep.

use grafter::pipeline::Compiled;
use grafter::FusionOptions;
use grafter_engine::{Backend, Engine, OptLevel};
use grafter_runtime::{Heap, NodeId, Value};

use crate::{ast, fmm, kdtree, render};

/// One case study's full entry configuration.
pub struct CaseStudy {
    /// Short name (`ast`, `render`, `kdtree`, `fmm`).
    pub name: &'static str,
    /// The workload compiled through the pipeline's frontend stage.
    pub compiled: Compiled,
    /// The workload's DSL source text (what `compiled` was built from) —
    /// lets drivers re-run the frontend, e.g. to trace parse/sema stages.
    pub source: &'static str,
    /// Root class of the entry sequence.
    pub root_class: &'static str,
    /// Entry traversal names, in invocation order.
    pub passes: Vec<&'static str>,
    /// Per-traversal entry arguments.
    pub args: Vec<Vec<Value>>,
    /// Deterministic input builder: `(heap, size, seed) -> root`.
    pub build: fn(&mut Heap, usize, u64) -> NodeId,
    /// Input size used by wall-clock benches.
    pub bench_size: usize,
    /// Smaller input size used by differential test suites.
    pub test_size: usize,
}

impl CaseStudy {
    /// Builds the benchmark-sized input tree (seed 42).
    pub fn build_bench(&self, heap: &mut Heap) -> NodeId {
        (self.build)(heap, self.bench_size, 42)
    }

    /// Builds the test-sized input tree (seed 42).
    pub fn build_test(&self, heap: &mut Heap) -> NodeId {
        (self.build)(heap, self.test_size, 42)
    }

    /// The case study's pre-wired engine builder (program, entry
    /// sequence, fusion options and arguments filled in) — the single
    /// place every `engine*` helper below goes through, so a new builder
    /// knob applies to all drivers at once.
    fn builder(&self, opts: FusionOptions, backend: Backend) -> grafter_engine::EngineBuilder {
        Engine::builder()
            .compiled(self.compiled.clone())
            .entry(self.root_class, &self.passes)
            .fusion(opts)
            .backend(backend)
            .args(self.args.clone())
    }

    /// Builds the case study's immutable [`Engine`] for `backend` with
    /// custom fusion options (entry sequence and arguments pre-wired).
    pub fn engine_with(&self, opts: FusionOptions, backend: Backend) -> Engine {
        self.builder(opts, backend)
            .build()
            .expect("case-study entry sequence resolves")
    }

    /// [`CaseStudy::engine_with`] with default (fused) options.
    pub fn engine(&self, backend: Backend) -> Engine {
        self.engine_with(FusionOptions::default(), backend)
    }

    /// [`CaseStudy::engine`] with an observability probe attached: the
    /// build delivers its compile trace and every session run records
    /// the tier's runtime profile (see `grafter_obs`).
    pub fn engine_probed(
        &self,
        backend: Backend,
        probe: std::sync::Arc<dyn grafter_engine::Probe>,
    ) -> Engine {
        self.builder(FusionOptions::default(), backend)
            .probe(probe)
            .build()
            .expect("case-study entry sequence resolves")
    }

    /// Builds the case study's VM-tier engine at a specific bytecode
    /// optimization level (the per-opt-level sweep of `vm_compare` and
    /// the opt differential suite).
    pub fn engine_opt(&self, opts: FusionOptions, opt_level: OptLevel) -> Engine {
        self.builder(opts, Backend::Vm)
            .opt_level(opt_level)
            .build()
            .expect("case-study entry sequence resolves")
    }
}

/// The four case studies of the paper's evaluation (§5), with the
/// kd-tree running its first equation's schedule.
pub fn case_studies() -> Vec<CaseStudy> {
    let schedules = kdtree::equation_schedules();
    let (_, schedule) = &schedules[0];
    vec![
        CaseStudy {
            name: "ast",
            compiled: ast::compiled(),
            source: ast::SOURCE,
            root_class: ast::ROOT_CLASS,
            passes: ast::PASSES.to_vec(),
            args: Vec::new(),
            build: ast::build_program,
            bench_size: 100,
            test_size: 20,
        },
        CaseStudy {
            name: "render",
            compiled: render::compiled(),
            source: render::SOURCE,
            root_class: render::ROOT_CLASS,
            passes: render::PASSES.to_vec(),
            args: Vec::new(),
            build: render::build_document,
            bench_size: 300,
            test_size: 30,
        },
        CaseStudy {
            name: "kdtree",
            compiled: kdtree::compiled(),
            source: kdtree::SOURCE,
            root_class: kdtree::ROOT_CLASS,
            passes: schedule.iter().map(|op| op.pass()).collect(),
            args: schedule.iter().map(|op| op.args()).collect(),
            build: kdtree::build_balanced,
            bench_size: 12,
            test_size: 8,
        },
        CaseStudy {
            name: "fmm",
            compiled: fmm::compiled(),
            source: fmm::SOURCE,
            root_class: fmm::ROOT_CLASS,
            passes: fmm::PASSES.to_vec(),
            args: Vec::new(),
            build: fmm::build_tree,
            bench_size: 20_000,
            test_size: 1_000,
        },
    ]
}
