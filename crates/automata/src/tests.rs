//! Unit and property tests for the automata crate.

use crate::{Nfa, PathSym};

fn path(word: &str) -> Vec<char> {
    word.chars().collect()
}

fn lit(word: &str) -> Nfa<char> {
    Nfa::from_path(&path(word), false)
}

fn lit_prefixes(word: &str) -> Nfa<char> {
    Nfa::from_path(&path(word), true)
}

#[test]
fn empty_automaton_accepts_nothing() {
    let a: Nfa<char> = Nfa::new();
    assert!(a.is_empty_language());
    assert!(!a.accepts(&path("a")));
    assert!(!a.accepts(&[]));
}

#[test]
fn primitive_path_accepts_exactly_itself() {
    let a = lit("abc");
    assert!(a.accepts(&path("abc")));
    assert!(!a.accepts(&path("ab")));
    assert!(!a.accepts(&path("abcd")));
    assert!(!a.accepts(&path("abd")));
    assert!(!a.accepts(&[]));
}

#[test]
fn prefix_reads_accept_every_nonempty_prefix() {
    let a = lit_prefixes("abc");
    assert!(a.accepts(&path("a")));
    assert!(a.accepts(&path("ab")));
    assert!(a.accepts(&path("abc")));
    assert!(!a.accepts(&[]));
    assert!(!a.accepts(&path("abcd")));
}

#[test]
fn union_accepts_both_languages() {
    let a = lit("ab").union(&lit("cd"));
    assert!(a.accepts(&path("ab")));
    assert!(a.accepts(&path("cd")));
    assert!(!a.accepts(&path("ac")));
    assert!(!a.is_empty_language());
}

#[test]
fn union_in_place_matches_union() {
    let mut a = lit("ab");
    a.union_in_place(&lit("cd"));
    assert!(a.accepts(&path("ab")));
    assert!(a.accepts(&path("cd")));
    assert!(!a.accepts(&path("ad")));
}

#[test]
fn intersects_detects_shared_word() {
    let a = lit("ab").union(&lit("xy"));
    let b = lit("xy").union(&lit("qq"));
    assert!(a.intersects(&b));
    let c = lit("zz");
    assert!(!a.intersects(&c));
}

#[test]
fn intersects_is_prefix_sensitive() {
    // write `a.b` vs read of prefixes of `a.b.c` — the read touches `a.b`.
    let write = lit("ab");
    let read = lit_prefixes("abc");
    assert!(write.intersects(&read));
    // write `a.b.q` does not clash with read prefixes of `a.b` only if no
    // prefix equals it.
    let write2 = lit("abq");
    let read2 = lit_prefixes("ab");
    assert!(!write2.intersects(&read2));
}

#[test]
fn wildcard_overlaps_everything() {
    // `a.*` (opaque object write) intersects a read of `a.x`.
    let w = lit("a*");
    let r = lit("ax");
    assert!(w.intersects(&r));
    assert!(r.intersects(&w));
    // ... but not a read of `b.x`.
    let r2 = lit("bx");
    assert!(!w.intersects(&r2));
}

#[test]
fn wildcard_self_loop_matches_any_suffix() {
    // Automaton for delete: `a` then any sequence of members.
    let mut a = lit("a");
    let last = a.len() - 1;
    a.add_transition(last, '*', last);
    assert!(a.accepts(&path("a")));
    assert!(a.accepts(&path("axyz")));
    assert!(!a.accepts(&path("bx")));
    let deep = lit("axq");
    assert!(a.intersects(&deep));
}

#[test]
fn accepts_wildcard_word_symbol() {
    let a = lit("ab");
    // A word containing a wildcard symbol (an "any" access) overlaps.
    assert!(a.accepts(&['a', '*']));
}

#[test]
fn intersection_product_agrees_with_on_the_fly() {
    let a = lit("ab").union(&lit_prefixes("xyz"));
    let b = lit("xy").union(&lit("qq"));
    let prod = a.intersection(&b);
    assert_eq!(prod.is_empty_language(), !a.intersects(&b));
    assert!(prod.accepts(&path("xy")));
    assert!(!prod.accepts(&path("ab")));
}

#[test]
fn intersection_with_disjoint_is_empty() {
    let a = lit("abc");
    let b = lit("abd");
    assert!(a.intersection(&b).is_empty_language());
    assert!(!a.intersects(&b));
}

#[test]
fn determinize_preserves_language() {
    let a = lit("ab").union(&lit_prefixes("ax"));
    let d = a.determinize('!');
    for w in ["ab", "a", "ax", "axx", "b", ""] {
        assert_eq!(a.accepts(&path(w)), d.accepts(&path(w)), "word {w:?}");
    }
}

#[test]
fn minimize_collapses_equivalent_states() {
    // Two branches with identical suffix language should collapse.
    let a = lit("ax").union(&lit("bx"));
    let d = a.determinize('!');
    let m = d.minimize();
    assert!(m.len() <= d.len());
    for w in ["ax", "bx", "a", "b", "x", "abx"] {
        assert_eq!(a.accepts(&path(w)), m.accepts(&path(w)), "word {w:?}");
    }
}

#[test]
fn minimize_handles_wildcards_via_fresh_symbol() {
    let mut a = lit("a");
    let last = a.len() - 1;
    a.add_transition(last, '*', last);
    let m = a.minimize('!');
    assert!(m.accepts(&path("a")));
    assert!(m.accepts(&path("axy")));
}

#[test]
fn path_sym_meet_and_overlap() {
    use crate::Symbol;
    assert!(PathSym::Any.overlaps(&PathSym::Field(3)));
    assert!(PathSym::Field(3).overlaps(&PathSym::Any));
    assert!(!PathSym::Field(3).overlaps(&PathSym::Field(4)));
    assert!(PathSym::Root.overlaps(&PathSym::Root));
    assert!(!PathSym::Root.overlaps(&PathSym::Field(0)));
    assert_eq!(PathSym::Any.meet(&PathSym::Field(7)), PathSym::Field(7));
    assert_eq!(PathSym::Field(7).meet(&PathSym::Any), PathSym::Field(7));
}

#[test]
fn dot_output_contains_states_and_labels() {
    let a = lit("ab");
    let dot = a.to_dot("g");
    assert!(dot.contains("digraph g"));
    assert!(dot.contains("doublecircle"));
    assert!(dot.contains("label=\"'a'\""));
}

#[test]
fn realistic_grafter_statement_automata() {
    // Models Fig. 4: reads of `Width = Content->Width + Border.Size*2`.
    // Tree reads: this->Content (prefix), this->Content.Width, this->Border.Size.
    const CONTENT: PathSym = PathSym::Field(0);
    const WIDTH: PathSym = PathSym::Field(1);
    const BORDER: PathSym = PathSym::Field(2);
    const SIZE: PathSym = PathSym::Field(3);

    let mut reads = Nfa::from_path(&[PathSym::Root, CONTENT, WIDTH], true);
    reads.union_in_place(&Nfa::from_path(&[PathSym::Root, BORDER, SIZE], true));
    // Write automaton of the same statement: this->Width.
    let write = Nfa::from_path(&[PathSym::Root, WIDTH], false);

    // A later statement writing this->Content.Width conflicts with the reads.
    let w2 = Nfa::from_path(&[PathSym::Root, CONTENT, WIDTH], false);
    assert!(reads.intersects(&w2));
    // Writing this->Content.Height does not.
    let w3 = Nfa::from_path(&[PathSym::Root, CONTENT, PathSym::Field(9)], false);
    assert!(!reads.intersects(&w3));
    // But it reads the prefix this->Content, which a topology mutation
    // (delete this->Content, i.e. Content followed by any suffix) clobbers.
    let mut del = Nfa::from_path(&[PathSym::Root, CONTENT], false);
    let last = del.len() - 1;
    del.add_transition(last, PathSym::Any, last);
    assert!(reads.intersects(&del));
    assert!(write.intersects(&Nfa::from_path(&[PathSym::Root, WIDTH], true)));
}

/// Randomised language properties. Originally proptest strategies; the
/// build environment is offline, so cases are drawn from the vendored
/// deterministic `rand` shim with fixed seeds instead.
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CASES: usize = 128;

    fn word(rng: &mut StdRng) -> Vec<char> {
        let len = rng.gen_range(0..6usize);
        (0..len)
            .map(|_| ['a', 'b', 'c'][rng.gen_range(0..3usize)])
            .collect()
    }

    fn words(rng: &mut StdRng) -> Vec<Vec<char>> {
        let n = rng.gen_range(1..5usize);
        (0..n).map(|_| word(rng)).collect()
    }

    fn nfa_from_words(words: &[Vec<char>]) -> Nfa<char> {
        let mut a = Nfa::from_path(&words[0], false);
        for w in &words[1..] {
            a.union_in_place(&Nfa::from_path(w, false));
        }
        a
    }

    #[test]
    fn union_accepts_all_members() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..CASES {
            let ws = words(&mut rng);
            let a = nfa_from_words(&ws);
            for w in &ws {
                assert!(a.accepts(w));
            }
        }
    }

    #[test]
    fn intersects_iff_shared_word() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..CASES {
            let ws1 = words(&mut rng);
            let ws2 = words(&mut rng);
            let a = nfa_from_words(&ws1);
            let b = nfa_from_words(&ws2);
            let shared = ws1.iter().any(|w| ws2.contains(w));
            assert_eq!(a.intersects(&b), shared);
            // And the explicit product agrees.
            assert_eq!(!a.intersection(&b).is_empty_language(), shared);
        }
    }

    #[test]
    fn intersects_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..CASES {
            let a = nfa_from_words(&words(&mut rng));
            let b = nfa_from_words(&words(&mut rng));
            assert_eq!(a.intersects(&b), b.intersects(&a));
        }
    }

    #[test]
    fn determinize_minimize_preserve_language() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..CASES {
            let a = nfa_from_words(&words(&mut rng));
            let probe = word(&mut rng);
            let d = a.determinize('!');
            let m = d.minimize();
            assert_eq!(a.accepts(&probe), d.accepts(&probe));
            assert_eq!(a.accepts(&probe), m.accepts(&probe));
            assert!(m.len() <= d.len());
        }
    }

    #[test]
    fn empty_language_iff_no_word_accepted() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..CASES {
            let a = nfa_from_words(&words(&mut rng));
            assert!(!a.is_empty_language());
        }
    }

    #[test]
    fn prefix_automaton_accepts_prefixes() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..CASES {
            let w = word(&mut rng);
            if w.is_empty() {
                continue;
            }
            let a = Nfa::from_path(&w, true);
            for k in 1..=w.len() {
                assert!(a.accepts(&w[..k]));
            }
            assert!(!a.accepts(&[]));
        }
    }
}
