//! Nondeterministic finite automata with epsilon transitions.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::Write as _;

use crate::sym::Symbol;

/// Index of an automaton state.
pub type StateId = usize;

/// A nondeterministic finite automaton with epsilon transitions.
///
/// States are dense indices; state `start` is the unique initial state.
/// The automaton accepts a word if some path from `start` spelling the word
/// (modulo epsilon transitions and wildcard overlap) ends in an accepting
/// state.
#[derive(Clone, Debug, Default)]
pub struct Nfa<S> {
    transitions: Vec<Vec<(S, StateId)>>,
    epsilons: Vec<Vec<StateId>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl<S: Symbol> Nfa<S> {
    /// Creates an automaton with a single, non-accepting start state.
    ///
    /// Its language is empty until transitions and accept states are added.
    pub fn new() -> Self {
        Nfa {
            transitions: vec![Vec::new()],
            epsilons: vec![Vec::new()],
            accepting: vec![false],
            start: 0,
        }
    }

    /// Builds the primitive automaton for a single access path.
    ///
    /// A *read* of an access path also reads every non-empty prefix of the
    /// path, so with `prefixes_accept = true` every state except the start is
    /// accepting. A *write* touches only the full path, so with
    /// `prefixes_accept = false` only the final state accepts (the implied
    /// prefix reads are added to the statement's read automaton separately).
    pub fn from_path(path: &[S], prefixes_accept: bool) -> Self {
        let mut a = Nfa::new();
        let mut cur = a.start;
        for sym in path {
            let next = a.add_state();
            a.add_transition(cur, sym.clone(), next);
            if prefixes_accept {
                a.set_accepting(next, true);
            }
            cur = next;
        }
        a.set_accepting(cur, true);
        a
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the automaton has no states other than an inert
    /// start state. Note this is *not* a language-emptiness test; see
    /// [`Nfa::is_empty_language`].
    pub fn is_empty(&self) -> bool {
        self.len() == 1 && self.transitions[0].is_empty() && !self.accepting[0]
    }

    /// The initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(Vec::new());
        self.epsilons.push(Vec::new());
        self.accepting.push(false);
        self.transitions.len() - 1
    }

    /// Adds a labelled transition.
    pub fn add_transition(&mut self, from: StateId, sym: S, to: StateId) {
        if !self.transitions[from]
            .iter()
            .any(|(s, t)| *s == sym && *t == to)
        {
            self.transitions[from].push((sym, to));
        }
    }

    /// Adds an epsilon transition.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        if from != to && !self.epsilons[from].contains(&to) {
            self.epsilons[from].push(to);
        }
    }

    /// Marks (or unmarks) a state as accepting.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Outgoing labelled transitions of a state.
    pub fn transitions_from(&self, state: StateId) -> &[(S, StateId)] {
        &self.transitions[state]
    }

    /// Outgoing epsilon transitions of a state.
    pub fn epsilons_from(&self, state: StateId) -> &[StateId] {
        &self.epsilons[state]
    }

    /// Copies `other` into `self` (disjoint state renaming) and returns the
    /// mapping applied to `other`'s state ids (i.e. the offset).
    fn absorb(&mut self, other: &Nfa<S>) -> usize {
        let offset = self.len();
        for st in 0..other.len() {
            self.transitions.push(
                other.transitions[st]
                    .iter()
                    .map(|(s, t)| (s.clone(), t + offset))
                    .collect(),
            );
            self.epsilons
                .push(other.epsilons[st].iter().map(|t| t + offset).collect());
            self.accepting.push(other.accepting[st]);
        }
        offset
    }

    /// Language union: returns an automaton accepting `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nfa<S>) -> Nfa<S> {
        let mut u = Nfa::new();
        let a = u.absorb(self);
        let b = u.absorb(other);
        u.add_epsilon(u.start, self.start + a);
        u.add_epsilon(u.start, other.start + b);
        u
    }

    /// In-place union: merges `other` into `self` behind an epsilon edge
    /// from `self`'s start state.
    pub fn union_in_place(&mut self, other: &Nfa<S>) {
        let offset = self.absorb(other);
        let start = self.start;
        self.add_epsilon(start, other.start + offset);
    }

    /// Computes the epsilon closure of a set of states.
    fn eps_closure(&self, states: &mut BTreeSet<StateId>) {
        let mut queue: VecDeque<StateId> = states.iter().copied().collect();
        while let Some(st) = queue.pop_front() {
            for &next in &self.epsilons[st] {
                if states.insert(next) {
                    queue.push_back(next);
                }
            }
        }
    }

    /// Returns `true` if the automaton accepts no word at all.
    pub fn is_empty_language(&self) -> bool {
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start] = true;
        while let Some(st) = queue.pop_front() {
            if self.accepting[st] {
                return false;
            }
            for &next in &self.epsilons[st] {
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
            }
            for (_, next) in &self.transitions[st] {
                if !seen[*next] {
                    seen[*next] = true;
                    queue.push_back(*next);
                }
            }
        }
        true
    }

    /// Returns `true` if the automaton accepts `word`, taking wildcard
    /// transitions into account (a wildcard transition matches any input
    /// symbol, and a wildcard input symbol matches any transition).
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut current = BTreeSet::from([self.start]);
        self.eps_closure(&mut current);
        for sym in word {
            let mut next = BTreeSet::new();
            for &st in &current {
                for (label, to) in &self.transitions[st] {
                    if label.overlaps(sym) {
                        next.insert(*to);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            self.eps_closure(&mut next);
            current = next;
        }
        current.iter().any(|&st| self.accepting[st])
    }

    /// Returns `true` if `L(self) ∩ L(other)` is non-empty.
    ///
    /// This is the core dependence test of the compiler: two statements may
    /// conflict iff the write automaton of one intersects a read or write
    /// automaton of the other. The product is explored on the fly; wildcard
    /// transitions overlap every symbol.
    pub fn intersects(&self, other: &Nfa<S>) -> bool {
        let mut start = (BTreeSet::from([self.start]), BTreeSet::from([other.start]));
        self.eps_closure(&mut start.0);
        other.eps_closure(&mut start.1);

        let mut seen: HashSet<(BTreeSet<StateId>, BTreeSet<StateId>)> = HashSet::new();
        let mut queue = VecDeque::from([start.clone()]);
        seen.insert(start);

        while let Some((a_states, b_states)) = queue.pop_front() {
            let a_accepts = a_states.iter().any(|&s| self.accepting[s]);
            let b_accepts = b_states.iter().any(|&s| other.accepting[s]);
            if a_accepts && b_accepts {
                return true;
            }
            // Collect candidate symbols from both sides and advance the
            // product by every overlapping pair.
            let mut moves: BTreeMap<(BTreeSet<StateId>, BTreeSet<StateId>), ()> = BTreeMap::new();
            let mut a_syms: Vec<&S> = Vec::new();
            for &s in &a_states {
                for (sym, _) in &self.transitions[s] {
                    a_syms.push(sym);
                }
            }
            for a_sym in a_syms {
                // Destination on the `self` side under `a_sym`.
                let mut a_next = BTreeSet::new();
                for &s in &a_states {
                    for (sym, to) in &self.transitions[s] {
                        if sym.overlaps(a_sym) {
                            a_next.insert(*to);
                        }
                    }
                }
                // Destination on the `other` side under `a_sym`.
                let mut b_next = BTreeSet::new();
                for &s in &b_states {
                    for (sym, to) in &other.transitions[s] {
                        if sym.overlaps(a_sym) {
                            b_next.insert(*to);
                        }
                    }
                }
                if a_next.is_empty() || b_next.is_empty() {
                    continue;
                }
                self.eps_closure(&mut a_next);
                other.eps_closure(&mut b_next);
                moves.insert((a_next, b_next), ());
            }
            for (pair, ()) in moves {
                if !seen.contains(&pair) {
                    seen.insert(pair.clone());
                    queue.push_back(pair);
                }
            }
        }
        false
    }

    /// Builds an explicit product automaton accepting `L(self) ∩ L(other)`.
    ///
    /// Mostly useful for tests and debugging; the dependence test uses the
    /// cheaper on-the-fly [`Nfa::intersects`].
    pub fn intersection(&self, other: &Nfa<S>) -> Nfa<S> {
        let mut out = Nfa::new();
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut queue = VecDeque::new();

        // Work on raw state pairs; epsilon closures are chased per side when
        // a pair is expanded.
        let pair_state = |out: &mut Nfa<S>,
                          index: &mut HashMap<(StateId, StateId), StateId>,
                          queue: &mut VecDeque<(StateId, StateId)>,
                          a: StateId,
                          b: StateId| {
            *index.entry((a, b)).or_insert_with(|| {
                let id = out.add_state();
                queue.push_back((a, b));
                id
            })
        };

        index.insert((self.start, other.start), out.start);
        queue.push_back((self.start, other.start));

        while let Some((a, b)) = queue.pop_front() {
            let from = index[&(a, b)];
            let mut a_cl = BTreeSet::from([a]);
            self.eps_closure(&mut a_cl);
            let mut b_cl = BTreeSet::from([b]);
            other.eps_closure(&mut b_cl);
            if a_cl.iter().any(|&s| self.accepting[s]) && b_cl.iter().any(|&s| other.accepting[s]) {
                out.set_accepting(from, true);
            }
            for &sa in &a_cl {
                for (asym, ato) in &self.transitions[sa] {
                    for &sb in &b_cl {
                        for (bsym, bto) in &other.transitions[sb] {
                            if asym.overlaps(bsym) {
                                let to = pair_state(&mut out, &mut index, &mut queue, *ato, *bto);
                                out.add_transition(from, asym.meet(bsym), to);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Determinizes the automaton by subset construction.
    ///
    /// Wildcard transitions are expanded over the concrete alphabet of the
    /// automaton plus a designated "fresh" symbol representing every symbol
    /// not otherwise mentioned; `fresh` must not appear in the automaton.
    pub fn determinize(&self, fresh: S) -> Dfa<S> {
        let mut alphabet: BTreeSet<S> = BTreeSet::new();
        let mut has_wildcard = false;
        for st in 0..self.len() {
            for (sym, _) in &self.transitions[st] {
                if sym.is_wildcard() {
                    has_wildcard = true;
                } else {
                    alphabet.insert(sym.clone());
                }
            }
        }
        if has_wildcard {
            alphabet.insert(fresh.clone());
        }
        let alphabet: Vec<S> = alphabet.into_iter().collect();
        let other = if has_wildcard {
            alphabet.iter().position(|s| *s == fresh)
        } else {
            None
        };

        let mut start = BTreeSet::from([self.start]);
        self.eps_closure(&mut start);

        let mut index: HashMap<BTreeSet<StateId>, StateId> = HashMap::new();
        let mut dfa = Dfa {
            alphabet: alphabet.clone(),
            other,
            transitions: Vec::new(),
            accepting: Vec::new(),
            start: 0,
        };
        index.insert(start.clone(), 0);
        dfa.transitions.push(vec![None; alphabet.len()]);
        dfa.accepting.push(start.iter().any(|&s| self.accepting[s]));
        let mut queue = VecDeque::from([start]);

        while let Some(states) = queue.pop_front() {
            let from = index[&states];
            for (ai, sym) in alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &s in &states {
                    for (label, to) in &self.transitions[s] {
                        if label.overlaps(sym) {
                            next.insert(*to);
                        }
                    }
                }
                if next.is_empty() {
                    continue;
                }
                self.eps_closure(&mut next);
                let to = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.transitions.len();
                        index.insert(next.clone(), id);
                        dfa.transitions.push(vec![None; alphabet.len()]);
                        dfa.accepting.push(next.iter().any(|&s| self.accepting[s]));
                        queue.push_back(next);
                        id
                    }
                };
                dfa.transitions[from][ai] = Some(to);
            }
        }
        dfa
    }

    /// Determinizes and minimises the automaton, returning an equivalent
    /// automaton with the minimal number of states (plus possibly a dead
    /// state removed). This mirrors the paper's Fig. 5c reduction step.
    pub fn minimize(&self, fresh: S) -> Dfa<S> {
        self.determinize(fresh).minimize()
    }

    /// Renders the automaton in Graphviz DOT format.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        for st in 0..self.len() {
            let shape = if self.accepting[st] {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{st} [shape={shape}];");
        }
        let _ = writeln!(out, "  init [shape=point]; init -> s{};", self.start);
        for st in 0..self.len() {
            for (sym, to) in &self.transitions[st] {
                let _ = writeln!(out, "  s{st} -> s{to} [label=\"{sym:?}\"];");
            }
            for to in &self.epsilons[st] {
                let _ = writeln!(out, "  s{st} -> s{to} [label=\"eps\", style=dashed];");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// A deterministic finite automaton produced by [`Nfa::determinize`].
///
/// The transition table is dense over the discovered alphabet; `None` is the
/// (implicit) dead state.
#[derive(Clone, Debug)]
pub struct Dfa<S> {
    alphabet: Vec<S>,
    /// Column standing in for "every symbol not in the alphabet" when the
    /// source NFA had wildcard transitions.
    other: Option<usize>,
    transitions: Vec<Vec<Option<StateId>>>,
    accepting: Vec<bool>,
    start: StateId,
}

impl<S: Symbol> Dfa<S> {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the DFA has no states (never constructed this way,
    /// provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Returns `true` if the DFA accepts `word` (wildcard-free input).
    pub fn accepts(&self, word: &[S]) -> bool {
        let mut st = self.start;
        for sym in word {
            let ai = match self
                .alphabet
                .iter()
                .position(|a| !a.is_wildcard() && a == sym)
                .or(self.other)
            {
                Some(ai) => ai,
                None => return false,
            };
            match self.transitions[st][ai] {
                Some(next) => st = next,
                None => return false,
            }
        }
        self.accepting[st]
    }

    /// Moore minimisation by iterated partition refinement.
    pub fn minimize(&self) -> Dfa<S> {
        let n = self.len();
        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<usize> = self.accepting.iter().map(|&a| usize::from(a)).collect();
        loop {
            // Signature of a state: its class and the classes of successors.
            let mut sig_index: HashMap<(usize, Vec<Option<usize>>), usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for st in 0..n {
                let sig = (
                    class[st],
                    self.transitions[st]
                        .iter()
                        .map(|t| t.map(|to| class[to]))
                        .collect::<Vec<_>>(),
                );
                let len = sig_index.len();
                let id = *sig_index.entry(sig).or_insert(len);
                next_class[st] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let n_classes = class.iter().max().map_or(0, |&m| m + 1);
        let mut transitions = vec![vec![None; self.alphabet.len()]; n_classes];
        let mut accepting = vec![false; n_classes];
        for st in 0..n {
            accepting[class[st]] = accepting[class[st]] || self.accepting[st];
            for (ai, t) in self.transitions[st].iter().enumerate() {
                transitions[class[st]][ai] = t.map(|to| class[to]);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            other: self.other,
            transitions,
            accepting,
            start: class[self.start],
        }
    }
}
