//! Alphabet symbols for access-path automata.

use std::fmt;
use std::hash::Hash;

/// An alphabet symbol usable in an [`Nfa`](crate::Nfa).
///
/// The only non-standard requirement is wildcard awareness: Grafter's access
/// automata use an "any member" transition for opaque objects and for tree
/// mutations (`new` / `delete`), so language intersection must treat a
/// wildcard as overlapping every symbol.
pub trait Symbol: Clone + Ord + Eq + Hash + fmt::Debug {
    /// Returns `true` if the two symbols can label the same concrete access
    /// edge. For ordinary symbols this is equality; a wildcard overlaps
    /// everything.
    fn overlaps(&self, other: &Self) -> bool;

    /// Returns the more specific of two overlapping symbols (used to label
    /// transitions of a product automaton).
    ///
    /// # Panics
    ///
    /// May panic if the symbols do not overlap; callers must check
    /// [`Symbol::overlaps`] first.
    fn meet(&self, other: &Self) -> Self;

    /// Returns `true` if this symbol matches any member access.
    fn is_wildcard(&self) -> bool;
}

/// A single member-access step of a Grafter access path.
///
/// Access paths are sequences of these symbols. On-tree paths begin with
/// [`PathSym::Root`], the "traversed node" transition that replaces `this`
/// (the paper's `root` transition in Fig. 4/5); the remaining symbols are the
/// program's fields, interned as dense indices by the frontend. Off-tree
/// paths begin directly with the global variable's symbol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathSym {
    /// The traversed-node transition: the node the summarised function is
    /// invoked on.
    Root,
    /// A named member access (child pointer, data field, global variable or
    /// struct member), interned to a dense index.
    Field(u32),
    /// The "any" transition: any possible member. Used for opaque off-tree
    /// objects and for the sub-fields of nodes manipulated by `new` and
    /// `delete`.
    Any,
}

impl Symbol for PathSym {
    fn overlaps(&self, other: &Self) -> bool {
        matches!((self, other), (PathSym::Any, _) | (_, PathSym::Any)) || self == other
    }

    fn meet(&self, other: &Self) -> Self {
        match (self, other) {
            (PathSym::Any, s) => *s,
            (s, _) => *s,
        }
    }

    fn is_wildcard(&self) -> bool {
        matches!(self, PathSym::Any)
    }
}

impl fmt::Debug for PathSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSym::Root => write!(f, "root"),
            PathSym::Field(i) => write!(f, "f{i}"),
            PathSym::Any => write!(f, "any"),
        }
    }
}

impl fmt::Display for PathSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Plain characters are symbols too; handy for unit tests.
impl Symbol for char {
    fn overlaps(&self, other: &Self) -> bool {
        self == other || *self == '*' || *other == '*'
    }

    fn meet(&self, other: &Self) -> Self {
        if *self == '*' {
            *other
        } else {
            *self
        }
    }

    fn is_wildcard(&self) -> bool {
        *self == '*'
    }
}
