//! Finite automata over access-path alphabets.
//!
//! Grafter (Sakka et al., PLDI 2019) summarises the memory locations a
//! statement or a traversal call may touch as a finite automaton over
//! *access paths*: sequences of member accesses starting either at the
//! traversed node (`this`) or at an off-tree root such as a global. The
//! original implementation used OpenFST; this crate provides the subset of
//! automata machinery Grafter actually needs, built from scratch:
//!
//! - nondeterministic finite automata with epsilon transitions ([`Nfa`]),
//! - primitive automata for single access paths ([`Nfa::from_path`]),
//! - union ([`Nfa::union`]) and language intersection tests
//!   ([`Nfa::intersects`], [`Nfa::intersection`]) that are aware of the
//!   wildcard "any member" symbol used for opaque objects and for `new` /
//!   `delete` tree mutations,
//! - subset construction ([`Nfa::determinize`]) and Moore minimisation
//!   ([`Nfa::minimize`]) used when rendering automata (the paper's Fig. 5c
//!   "minimize" step),
//! - Graphviz rendering for debugging ([`Nfa::to_dot`]).
//!
//! The alphabet is generic over the [`Symbol`] trait so the automata can be
//! tested independently of the compiler; the compiler instantiates it with
//! [`PathSym`].
//!
//! # Example
//!
//! ```
//! use grafter_automata::{Nfa, PathSym};
//!
//! // reads of `this->Next.Width` (every non-empty prefix is also read)
//! let read = Nfa::from_path(
//!     &[PathSym::Root, PathSym::Field(0), PathSym::Field(7)],
//!     true,
//! );
//! // write of `this->Next.Width`
//! let write = Nfa::from_path(
//!     &[PathSym::Root, PathSym::Field(0), PathSym::Field(7)],
//!     false,
//! );
//! assert!(read.intersects(&write));
//! let other = Nfa::from_path(&[PathSym::Root, PathSym::Field(3)], false);
//! assert!(!read.intersects(&other));
//! ```

mod nfa;
mod sym;

pub use nfa::{Dfa, Nfa, StateId};
pub use sym::{PathSym, Symbol};

#[cfg(test)]
mod tests;
