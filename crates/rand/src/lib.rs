//! Minimal stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim provides the subset the workload generators use —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_bool` and `gen_range` over integer and float ranges — backed
//! by the xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic per seed (the property the experiment harnesses rely on),
//! though not bit-identical to upstream `StdRng`.

use std::ops::Range;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that `Rng::gen` can produce, mirroring the `Standard`
/// distribution for the primitives the workloads draw.
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

/// A type usable as `Rng::gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self;
}

/// Raw 64-bit output, the base everything else is derived from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, range: Range<$t>) -> $t {
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything the synthetic workloads could observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut impl RngCore, range: Range<f64>) -> f64 {
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut impl RngCore, range: Range<f32>) -> f32 {
        range.start + f64::sample(rng) as f32 * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-20..20);
            assert!((-20..20).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "got {hits} hits");
    }
}
