//! Observability for the Grafter execution stack: a probe layer that is
//! *monomorphized away* when disabled.
//!
//! Two layers, deliberately separate:
//!
//! - **Hot-loop hooks** — [`ExecProbe`] is the compile-time switch the
//!   execution tiers are generic over. [`NoProbe`] (the default) has
//!   `ENABLED = false` and empty inline methods, so every hook guarded by
//!   `if P::ENABLED { .. }` constant-folds to nothing: the uninstrumented
//!   dispatch loop is *bit-identical machine code* to a build without the
//!   probe layer. [`ExecCounters`] / [`ChainCounters`] are the recording
//!   implementations (dense per-site counters, one add per hook).
//! - **Sinks** — [`Probe`] is the user-facing trait wired through
//!   `Engine::builder().probe(..)`. Every method has a no-op default;
//!   [`TraceProbe`] is the everything-recorder behind `grafterc
//!   --profile`, collecting a [`CompileTrace`], per-run [`RunTrace`]s and
//!   per-batch [`BatchTrace`]s, and exporting them as Chrome trace-event
//!   JSON ([`TraceProbe::chrome_trace`], loadable in Perfetto /
//!   `chrome://tracing`) or a ranked text summary
//!   ([`TraceProbe::summary`]).
//!
//! The crate is a leaf: `std` only, so every layer of the stack (vm,
//! runtime, engine, tools) can depend on it without cycles. JSON is
//! hand-rolled both ways in the shared [`json`] module — a
//! [`json::JsonWriter`] and a [`json::parse`] — because the build
//! environment vendors no serde; the trace exporter ([`chrome`]),
//! `grafterc --json`, and the `grafter-server` wire protocol all speak
//! JSON through it.

pub mod chrome;
pub mod json;

use std::sync::Mutex;
use std::time::Duration;

// ---- hot-loop hooks ------------------------------------------------------

/// Compile-time execution hooks the VM dispatch loop is generic over.
///
/// `ENABLED` is an associated `const`: tiers guard every call with
/// `if P::ENABLED { probe.exec_op(pc) }`, which the compiler folds away
/// entirely for [`NoProbe`]. The recording implementation pays one
/// bounds-checked increment per hook.
pub trait ExecProbe {
    /// Whether this probe records anything (hooks are compiled out when
    /// `false`).
    const ENABLED: bool;

    /// One function activation is starting.
    #[inline(always)]
    fn enter_func(&mut self, _fidx: usize) {}

    /// The op at `pc` is about to execute.
    #[inline(always)]
    fn exec_op(&mut self, _pc: usize) {}
}

/// The disabled probe: zero-sized, `ENABLED = false`, every hook a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl ExecProbe for NoProbe {
    const ENABLED: bool = false;
}

/// Dense per-site counters for a probed VM run: one slot per lowered
/// function and one per bytecode pc. Aggregated into named
/// [`TierProfile`] rows by the module that owns the site tables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Activations per lowered function index.
    pub func_hits: Vec<u64>,
    /// Executions per bytecode pc.
    pub op_hits: Vec<u64>,
}

impl ExecCounters {
    /// Zeroed counters sized for a module with `n_funcs` functions and
    /// `n_ops` instructions.
    pub fn new(n_funcs: usize, n_ops: usize) -> Self {
        ExecCounters {
            func_hits: vec![0; n_funcs],
            op_hits: vec![0; n_ops],
        }
    }

    /// Folds a worker's counters into this histogram (fork-join
    /// reduction: u64 sums, so any deterministic order gives the
    /// sequential totals).
    pub fn merge(&mut self, other: &ExecCounters) {
        debug_assert_eq!(self.func_hits.len(), other.func_hits.len());
        debug_assert_eq!(self.op_hits.len(), other.op_hits.len());
        for (a, b) in self.func_hits.iter_mut().zip(&other.func_hits) {
            *a += b;
        }
        for (a, b) in self.op_hits.iter_mut().zip(&other.op_hits) {
            *a += b;
        }
    }
}

impl ExecProbe for ExecCounters {
    const ENABLED: bool = true;

    #[inline(always)]
    fn enter_func(&mut self, fidx: usize) {
        self.func_hits[fidx] += 1;
    }

    #[inline(always)]
    fn exec_op(&mut self, pc: usize) {
        self.op_hits[pc] += 1;
    }
}

/// Dense hit counters for a probed JIT run: one slot per compiled
/// function and one per compiled basic-block closure (flattened across
/// functions in block order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainCounters {
    /// Activations per compiled function index.
    pub func_hits: Vec<u64>,
    /// Entries per compiled block, flattened function-major.
    pub block_hits: Vec<u64>,
}

impl ChainCounters {
    /// Zeroed counters for `n_funcs` functions and `n_blocks` total
    /// compiled blocks.
    pub fn new(n_funcs: usize, n_blocks: usize) -> Self {
        ChainCounters {
            func_hits: vec![0; n_funcs],
            block_hits: vec![0; n_blocks],
        }
    }

    /// Records one activation of function `fidx`.
    #[inline(always)]
    pub fn func(&mut self, fidx: usize) {
        self.func_hits[fidx] += 1;
    }

    /// Records one entry into flattened block slot `slot`.
    #[inline(always)]
    pub fn block(&mut self, slot: usize) {
        self.block_hits[slot] += 1;
    }

    /// Folds a worker's counters into this histogram (fork-join
    /// reduction: u64 sums, so any deterministic order gives the
    /// sequential totals).
    pub fn merge(&mut self, other: &ChainCounters) {
        debug_assert_eq!(self.func_hits.len(), other.func_hits.len());
        debug_assert_eq!(self.block_hits.len(), other.block_hits.len());
        for (a, b) in self.func_hits.iter_mut().zip(&other.func_hits) {
            *a += b;
        }
        for (a, b) in self.block_hits.iter_mut().zip(&other.block_hits) {
            *a += b;
        }
    }
}

// ---- trace model ---------------------------------------------------------

/// One timed compile stage: name, offset from the start of the build, and
/// a few `key=value` size/delta annotations (op counts, rewrites, ...).
#[derive(Clone, Debug)]
pub struct Span {
    /// Stage name (`parse`, `sema`, `fusion`, `lower`, `opt/fold`,
    /// `jit`, ...).
    pub name: String,
    /// Offset of the stage start from the beginning of the build.
    pub start: Duration,
    /// Wall time the stage took.
    pub dur: Duration,
    /// Size deltas and other per-stage annotations.
    pub meta: Vec<(String, String)>,
}

/// Every compile-side stage of one `Engine` build, in execution order:
/// frontend (when the engine was built from source), fusion, bytecode
/// lowering, each optimizer pass, and JIT chain construction.
#[derive(Clone, Debug, Default)]
pub struct CompileTrace {
    /// The stages, in execution order.
    pub spans: Vec<Span>,
    /// Wall time of the whole build.
    pub total: Duration,
}

impl CompileTrace {
    /// The span named `name`, if that stage ran.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Stage names in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }
}

/// One named, aggregated profile row: per-opcode fire counts.
#[derive(Clone, Debug)]
pub struct OpFire {
    /// Disassembly mnemonic (`navcall`, `bin.c`, ...).
    pub name: String,
    /// How many times an op with this mnemonic executed.
    pub fires: u64,
    /// Whether the op is optimizer-introduced (a superinstruction or
    /// folded/devirtualised form).
    pub superinstruction: bool,
}

/// The aggregated, named profile of one probed run on one tier. Which
/// rows are populated depends on the tier: the interpreter records class
/// visits, the VM records function hits and the opcode histogram, the
/// JIT records function and basic-block hits.
#[derive(Clone, Debug, Default)]
pub struct TierProfile {
    /// Activations per function, named.
    pub func_hits: Vec<(String, u64)>,
    /// Entries per basic block (`fn/bN`), named.
    pub block_hits: Vec<(String, u64)>,
    /// Per-opcode (and per-superinstruction) fire histogram.
    pub op_fires: Vec<OpFire>,
    /// Interpreter visits per dynamic receiver class.
    pub class_visits: Vec<(String, u64)>,
}

impl TierProfile {
    /// Whether the profile recorded anything at all.
    pub fn is_empty(&self) -> bool {
        self.func_hits.is_empty()
            && self.block_hits.is_empty()
            && self.op_fires.is_empty()
            && self.class_visits.is_empty()
    }
}

/// The runtime profile of one probed run, attached to the run's `Report`
/// and delivered to [`Probe::on_run`].
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// The tier that ran (`interp`, `vm`, `jit-counted`, `jit-release`).
    pub tier: String,
    /// Wall time of the run.
    pub wall: Duration,
    /// The tier's aggregated counters.
    pub profile: TierProfile,
}

/// One batch worker's telemetry.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Inputs this worker processed.
    pub inputs: u64,
    /// Session resets this worker performed (pooled-session reuse).
    pub resets: u64,
    /// Wall time spent building inputs and running them.
    pub busy: Duration,
    /// Wall time spent waiting (worker lifetime minus busy).
    pub idle: Duration,
}

/// Telemetry of one `run_batch` fan-out, delivered to
/// [`Probe::on_batch`].
#[derive(Clone, Debug)]
pub struct BatchTrace {
    /// Per-worker splits.
    pub workers: Vec<WorkerStats>,
    /// Wall time of the whole batch.
    pub wall: Duration,
}

// ---- sinks ---------------------------------------------------------------

/// The user-facing probe sink, wired through `Engine::builder().probe(..)`.
///
/// Every method has a no-op default implementation, so a probe can opt
/// into exactly the events it cares about; an engine with no probe
/// attached calls nothing and runs the fully uninstrumented paths.
pub trait Probe: Send + Sync {
    /// The engine finished building; every compile stage was timed.
    fn on_compile(&self, _trace: &CompileTrace) {}

    /// One probed run finished.
    fn on_run(&self, _trace: &RunTrace) {}

    /// One `run_batch` fan-out finished.
    fn on_batch(&self, _trace: &BatchTrace) {}
}

/// The explicit do-nothing probe (equivalent to attaching none).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

#[derive(Default)]
struct TraceStore {
    compile: Option<CompileTrace>,
    runs: Vec<RunTrace>,
    batches: Vec<BatchTrace>,
}

/// The everything-recorder: stores every compile/run/batch trace it is
/// handed (interior mutability, so one `Arc<TraceProbe>` serves engine
/// build and any number of concurrent sessions) and renders them as a
/// Chrome trace or a ranked text summary.
#[derive(Default)]
pub struct TraceProbe {
    store: Mutex<TraceStore>,
}

impl TraceProbe {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceProbe::default()
    }

    /// The recorded compile trace, if a build completed.
    pub fn compile(&self) -> Option<CompileTrace> {
        self.store.lock().unwrap().compile.clone()
    }

    /// All recorded run traces, in completion order.
    pub fn runs(&self) -> Vec<RunTrace> {
        self.store.lock().unwrap().runs.clone()
    }

    /// All recorded batch traces, in completion order.
    pub fn batches(&self) -> Vec<BatchTrace> {
        self.store.lock().unwrap().batches.clone()
    }

    /// Renders everything recorded so far as Chrome trace-event JSON
    /// (open in Perfetto or `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        let store = self.store.lock().unwrap();
        chrome::render(store.compile.as_ref(), &store.runs, &store.batches)
    }

    /// Renders everything recorded so far as a ranked text summary.
    pub fn summary(&self) -> String {
        let store = self.store.lock().unwrap();
        chrome::summary(store.compile.as_ref(), &store.runs, &store.batches)
    }
}

impl Probe for TraceProbe {
    fn on_compile(&self, trace: &CompileTrace) {
        self.store.lock().unwrap().compile = Some(trace.clone());
    }

    fn on_run(&self, trace: &RunTrace) {
        self.store.lock().unwrap().runs.push(trace.clone());
    }

    fn on_batch(&self, trace: &BatchTrace) {
        self.store.lock().unwrap().batches.push(trace.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
        const _: () = assert!(!NoProbe::ENABLED);
        const _: () = assert!(ExecCounters::ENABLED);
    }

    #[test]
    fn counters_record_hits() {
        let mut c = ExecCounters::new(2, 4);
        c.enter_func(1);
        c.exec_op(3);
        c.exec_op(3);
        assert_eq!(c.func_hits, vec![0, 1]);
        assert_eq!(c.op_hits, vec![0, 0, 0, 2]);

        let mut j = ChainCounters::new(1, 2);
        j.func(0);
        j.block(1);
        assert_eq!(j.func_hits, vec![1]);
        assert_eq!(j.block_hits, vec![0, 1]);
    }

    #[test]
    fn trace_probe_is_send_sync_and_records() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceProbe>();

        let probe = TraceProbe::new();
        probe.on_compile(&CompileTrace {
            spans: vec![Span {
                name: "parse".into(),
                start: Duration::ZERO,
                dur: Duration::from_micros(5),
                meta: Vec::new(),
            }],
            total: Duration::from_micros(5),
        });
        probe.on_run(&RunTrace {
            tier: "vm".into(),
            wall: Duration::from_micros(9),
            profile: TierProfile::default(),
        });
        assert_eq!(probe.compile().unwrap().stage_names(), vec!["parse"]);
        assert_eq!(probe.runs().len(), 1);
        assert!(probe.batches().is_empty());
    }
}
