//! The workspace's hand-rolled JSON machinery: a writer, a minimal
//! parser, and a Chrome trace-event schema check.
//!
//! The build environment vendors no serde, so everything that speaks
//! JSON — the Chrome trace exporter ([`crate::chrome`]), `grafterc
//! --json` (diagnostics and `Report` serialization), and the
//! `grafter-server` wire protocol — shares this one module instead of
//! each growing another copy:
//!
//! - [`JsonWriter`] is a streaming writer with automatic comma
//!   management (and [`escape`] for string contents).
//! - [`parse`] turns a JSON document into a [`Json`] tree (numbers kept
//!   as `f64`, which is enough for microsecond timestamps at trace
//!   scale and for the server protocol's sizes/seeds).
//! - [`validate_chrome_trace`] checks the shape Perfetto requires —
//!   a top-level `traceEvents` array whose events carry
//!   `name`/`ph`/`pid`, with `ts` and `dur` on every complete (`"X"`)
//!   event.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Escapes `s` as the inside of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A streaming JSON writer with automatic comma management.
///
/// Containers nest via [`JsonWriter::begin_obj`] / [`JsonWriter::begin_arr`];
/// inside an object every value is preceded by a [`JsonWriter::key`], inside
/// an array values follow each other directly. The writer inserts the commas,
/// so callers never thread `if i > 0` through their emission loops. Output is
/// compact (no whitespace), matching what the parser half of this module and
/// every external consumer (Perfetto, `python3 -m json`) accept.
///
/// ```
/// use grafter_obs::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_obj();
/// w.key("xs").begin_arr();
/// w.num(1);
/// w.num(2);
/// w.end_arr();
/// w.key("ok").bool(true);
/// w.end_obj();
/// assert_eq!(w.finish(), r#"{"xs":[1,2],"ok":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Per-open-container count of items written so far.
    items: Vec<usize>,
    /// Whether the next value completes a `key(..)` (no comma, no count).
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// An empty writer with `n` bytes of output pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        JsonWriter {
            buf: String::with_capacity(n),
            ..JsonWriter::default()
        }
    }

    /// Comma bookkeeping before a value (or container opening) begins.
    fn pad_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(n) = self.items.last_mut() {
            if *n > 0 {
                self.buf.push(',');
            }
            *n += 1;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pad_value();
        self.buf.push('{');
        self.items.push(0);
        self
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) -> &mut Self {
        self.items.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pad_value();
        self.buf.push('[');
        self.items.push(0);
        self
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) -> &mut Self {
        self.items.pop();
        self.buf.push(']');
        self
    }

    /// Writes an object key (escaped); the next write is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(n) = self.items.last_mut() {
            if *n > 0 {
                self.buf.push(',');
            }
            *n += 1;
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self.after_key = true;
        self
    }

    /// Writes a string value (escaped).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.pad_value();
        self.buf.push('"');
        self.buf.push_str(&escape(s));
        self.buf.push('"');
        self
    }

    /// Writes an integer value (any type formatting as a plain decimal).
    pub fn num(&mut self, n: impl fmt::Display) -> &mut Self {
        self.pad_value();
        let _ = write!(self.buf, "{n}");
        self
    }

    /// Writes a float value; non-finite floats become quoted strings to
    /// keep the document parseable (JSON has no NaN/Inf literals).
    pub fn float(&mut self, x: f64) -> &mut Self {
        self.pad_value();
        if x.is_finite() {
            let _ = write!(self.buf, "{x}");
        } else {
            let _ = write!(self.buf, "\"{x}\"");
        }
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.pad_value();
        self.buf.push_str(if b { "true" } else { "false" });
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.pad_value();
        self.buf.push_str("null");
        self
    }

    /// Writes a pre-rendered JSON fragment as one value, verbatim.
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.pad_value();
        self.buf.push_str(json);
        self
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse or validation failure, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for schema errors).
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError {
            msg: msg.to_string(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are not needed for the
                                // identifiers this crate emits.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through byte-by-byte; input is valid UTF-8 by
                    // construction of &str).
                    let rest = &self.src[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        msg: "invalid utf-8".into(),
                        at: self.pos,
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err("bad number"),
        }
    }
}

/// Parses a JSON document, requiring it to be fully consumed.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let val = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return p.err("trailing data after document");
    }
    Ok(val)
}

fn schema_err(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Checks that `doc` has the shape of a Chrome trace-event document:
/// a top-level object with a `traceEvents` array, every event an object
/// with string `name`/`ph` and numeric `pid`, and `ts`/`dur` present and
/// non-negative on every complete (`"X"`) event. Returns the number of
/// events on success.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, JsonError> {
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| schema_err("missing traceEvents"))?
        .as_arr()
        .ok_or_else(|| schema_err("traceEvents is not an array"))?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| schema_err(format!("event {i}: {what}"));
        if !matches!(ev, Json::Obj(_)) {
            return Err(fail("not an object"));
        }
        let name = ev.get("name").and_then(Json::as_str);
        if name.map_or(true, str::is_empty) {
            return Err(fail("missing name"));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing ph"))?;
        if ev.get("pid").and_then(Json::as_num).is_none() {
            return Err(fail("missing pid"));
        }
        if ph == "X" {
            for field in ["ts", "dur"] {
                match ev.get(field).and_then(Json::as_num) {
                    Some(n) if n >= 0.0 => {}
                    _ => return Err(fail(&format!("complete event missing {field}"))),
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_num(),
            Some(300.0)
        );
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn validates_trace_shape() {
        let good =
            parse(r#"{"traceEvents":[{"name":"parse","ph":"X","pid":1,"tid":1,"ts":0,"dur":5}]}"#)
                .unwrap();
        assert_eq!(validate_chrome_trace(&good), Ok(1));

        let no_dur =
            parse(r#"{"traceEvents":[{"name":"parse","ph":"X","pid":1,"ts":0}]}"#).unwrap();
        assert!(validate_chrome_trace(&no_dur).is_err());

        let no_events = parse(r#"{"displayTimeUnit":"ms"}"#).unwrap();
        assert!(validate_chrome_trace(&no_events).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let doc = parse(r#""Aé""#).unwrap();
        assert_eq!(doc.as_str(), Some("Aé"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_manages_commas_and_nesting() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a").num(1u64);
        w.key("b").begin_arr();
        w.str("x\n");
        w.null();
        w.bool(false);
        w.begin_obj();
        w.key("c").float(2.5);
        w.end_obj();
        w.end_arr();
        w.key("d").raw("{\"pre\":1}");
        w.end_obj();
        let doc = w.finish();
        assert_eq!(
            doc,
            r#"{"a":1,"b":["x\n",null,false,{"c":2.5}],"d":{"pre":1}}"#
        );
        // The writer's output must satisfy this module's own parser.
        assert!(parse(&doc).is_ok());
    }

    #[test]
    fn writer_quotes_non_finite_floats() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.end_arr();
        let doc = w.finish();
        assert_eq!(doc, r#"["NaN","inf"]"#);
        assert!(parse(&doc).is_ok());
    }
}
