//! A minimal JSON parser and a Chrome trace-event schema check.
//!
//! The build environment vendors no serde, so the schema round-trip the
//! `probe_parity` suite needs is done by hand: [`parse`] turns a JSON
//! document into a [`Json`] tree (numbers kept as `f64`, which is enough
//! for microsecond timestamps at trace scale), and
//! [`validate_chrome_trace`] checks the shape Perfetto requires —
//! a top-level `traceEvents` array whose events carry `name`/`ph`/`pid`,
//! with `ts` and `dur` on every complete (`"X"`) event.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse or validation failure, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input (0 for schema errors).
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn err<T>(&self, msg: &str) -> Result<T, JsonError> {
        Err(JsonError {
            msg: msg.to_string(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are not needed for the
                                // identifiers this crate emits.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through byte-by-byte; input is valid UTF-8 by
                    // construction of &str).
                    let rest = &self.src[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        msg: "invalid utf-8".into(),
                        at: self.pos,
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err("bad number"),
        }
    }
}

/// Parses a JSON document, requiring it to be fully consumed.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let val = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return p.err("trailing data after document");
    }
    Ok(val)
}

fn schema_err(msg: impl Into<String>) -> JsonError {
    JsonError {
        msg: msg.into(),
        at: 0,
    }
}

/// Checks that `doc` has the shape of a Chrome trace-event document:
/// a top-level object with a `traceEvents` array, every event an object
/// with string `name`/`ph` and numeric `pid`, and `ts`/`dur` present and
/// non-negative on every complete (`"X"`) event. Returns the number of
/// events on success.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, JsonError> {
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| schema_err("missing traceEvents"))?
        .as_arr()
        .ok_or_else(|| schema_err("traceEvents is not an array"))?;
    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| schema_err(format!("event {i}: {what}"));
        if !matches!(ev, Json::Obj(_)) {
            return Err(fail("not an object"));
        }
        let name = ev.get("name").and_then(Json::as_str);
        if name.map_or(true, str::is_empty) {
            return Err(fail("missing name"));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing ph"))?;
        if ev.get("pid").and_then(Json::as_num).is_none() {
            return Err(fail("missing pid"));
        }
        if ph == "X" {
            for field in ["ts", "dur"] {
                match ev.get(field).and_then(Json::as_num) {
                    Some(n) if n >= 0.0 => {}
                    _ => return Err(fail(&format!("complete event missing {field}"))),
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_num(),
            Some(300.0)
        );
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn validates_trace_shape() {
        let good =
            parse(r#"{"traceEvents":[{"name":"parse","ph":"X","pid":1,"tid":1,"ts":0,"dur":5}]}"#)
                .unwrap();
        assert_eq!(validate_chrome_trace(&good), Ok(1));

        let no_dur =
            parse(r#"{"traceEvents":[{"name":"parse","ph":"X","pid":1,"ts":0}]}"#).unwrap();
        assert!(validate_chrome_trace(&no_dur).is_err());

        let no_events = parse(r#"{"displayTimeUnit":"ms"}"#).unwrap();
        assert!(validate_chrome_trace(&no_events).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let doc = parse(r#""Aé""#).unwrap();
        assert_eq!(doc.as_str(), Some("Aé"));
    }
}
