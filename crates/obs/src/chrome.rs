//! Chrome trace-event rendering and the ranked text summary.
//!
//! The JSON writer targets the trace-event format's "JSON object" flavor:
//! `{"displayTimeUnit": "ms", "traceEvents": [...]}` with complete
//! (`"ph": "X"`) events carrying microsecond `ts`/`dur`. Perfetto and
//! `chrome://tracing` both load it directly. Compile stages render on one
//! track (`tid` 1), runs and batch workers on tracks of their own, and
//! profile rows ride along as `args` on the run events so nothing needs a
//! second file.

use crate::json::JsonWriter;
use crate::{BatchTrace, CompileTrace, RunTrace, TierProfile};
use std::fmt::Write as _;
use std::time::Duration;

/// Escapes `s` as the inside of a JSON string literal (re-exported from
/// the shared [`crate::json`] machinery for existing callers).
pub use crate::json::escape;

fn us(d: Duration) -> u128 {
    d.as_micros()
}

struct Events {
    out: Vec<String>,
}

impl Events {
    fn complete(
        &mut self,
        name: &str,
        cat: &str,
        tid: u32,
        ts: u128,
        dur: u128,
        args: &[(String, String)],
    ) {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name").str(name);
        w.key("cat").str(cat);
        w.key("ph").str("X");
        w.key("pid").num(1);
        w.key("tid").num(tid);
        w.key("ts").num(ts);
        w.key("dur").num(dur);
        if !args.is_empty() {
            w.key("args").begin_obj();
            for (k, v) in args {
                w.key(k).str(v);
            }
            w.end_obj();
        }
        w.end_obj();
        self.out.push(w.finish());
    }

    fn thread_name(&mut self, tid: u32, name: &str) {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name").str("thread_name");
        w.key("ph").str("M");
        w.key("pid").num(1);
        w.key("tid").num(tid);
        w.key("args").begin_obj();
        w.key("name").str(name);
        w.end_obj();
        w.end_obj();
        self.out.push(w.finish());
    }
}

fn top<T: Copy>(rows: &[(String, T)], n: usize, count: impl Fn(T) -> u64) -> Vec<(&str, u64)> {
    let mut v: Vec<(&str, u64)> = rows
        .iter()
        .map(|(name, c)| (name.as_str(), count(*c)))
        .collect();
    v.retain(|&(_, c)| c > 0);
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    v.truncate(n);
    v
}

fn profile_args(p: &TierProfile) -> Vec<(String, String)> {
    let mut args = Vec::new();
    for (name, hits) in top(&p.func_hits, 8, |c| c) {
        args.push((format!("fn {name}"), hits.to_string()));
    }
    for (name, hits) in top(&p.block_hits, 8, |c| c) {
        args.push((format!("block {name}"), hits.to_string()));
    }
    let fires: Vec<(String, u64)> = p
        .op_fires
        .iter()
        .map(|f| (f.name.clone(), f.fires))
        .collect();
    for (name, n) in top(&fires, 10, |c| c) {
        args.push((format!("op {name}"), n.to_string()));
    }
    for (name, visits) in top(&p.class_visits, 8, |c| c) {
        args.push((format!("class {name}"), visits.to_string()));
    }
    args
}

/// Renders the recorded traces as Chrome trace-event JSON.
pub fn render(compile: Option<&CompileTrace>, runs: &[RunTrace], batches: &[BatchTrace]) -> String {
    let mut ev = Events { out: Vec::new() };
    ev.thread_name(1, "compile");

    if let Some(ct) = compile {
        if !ct.spans.is_empty() {
            // One envelope event spanning the whole build.
            ev.complete("compile", "compile", 1, 0, us(ct.total).max(1), &[]);
        }
        for span in &ct.spans {
            ev.complete(
                &span.name,
                "compile",
                1,
                us(span.start),
                us(span.dur).max(1),
                &span.meta,
            );
        }
    }

    // Runs and batches each get a track; offsets are synthetic (events are
    // laid end to end) because the probe records durations, not absolute
    // timestamps.
    let mut tid = 2u32;
    let mut cursor: u128 = 0;
    if !runs.is_empty() {
        ev.thread_name(tid, "runs");
        for (i, run) in runs.iter().enumerate() {
            let args = profile_args(&run.profile);
            ev.complete(
                &format!("run#{i} [{}]", run.tier),
                "run",
                tid,
                cursor,
                us(run.wall).max(1),
                &args,
            );
            cursor += us(run.wall).max(1);
        }
        tid += 1;
    }
    for (bi, batch) in batches.iter().enumerate() {
        for w in &batch.workers {
            ev.thread_name(tid, &format!("batch#{bi} worker {}", w.worker));
            let args = vec![
                ("inputs".to_string(), w.inputs.to_string()),
                ("resets".to_string(), w.resets.to_string()),
                ("idle_us".to_string(), us(w.idle).to_string()),
            ];
            ev.complete("busy", "batch", tid, 0, us(w.busy).max(1), &args);
            tid += 1;
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in ev.out.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

fn pct(part: Duration, whole: Duration) -> f64 {
    if whole.is_zero() {
        0.0
    } else {
        100.0 * part.as_secs_f64() / whole.as_secs_f64()
    }
}

fn ranked_lines(out: &mut String, label: &str, rows: Vec<(&str, u64)>) {
    if rows.is_empty() {
        return;
    }
    let total: u64 = rows.iter().map(|&(_, c)| c).sum();
    let _ = writeln!(out, "  {label}:");
    for (name, c) in rows {
        let share = if total == 0 {
            0.0
        } else {
            100.0 * c as f64 / total as f64
        };
        let _ = writeln!(out, "    {c:>12}  {share:5.1}%  {name}");
    }
}

/// Renders the recorded traces as a ranked, human-readable text summary.
pub fn summary(
    compile: Option<&CompileTrace>,
    runs: &[RunTrace],
    batches: &[BatchTrace],
) -> String {
    let mut out = String::new();

    if let Some(ct) = compile {
        let _ = writeln!(
            out,
            "compile ({:.3} ms total)",
            ct.total.as_secs_f64() * 1e3
        );
        let mut spans: Vec<_> = ct.spans.iter().collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.dur));
        for span in spans {
            let mut meta = String::new();
            if !span.meta.is_empty() {
                let parts: Vec<String> =
                    span.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
                meta = format!("  [{}]", parts.join(", "));
            }
            let _ = writeln!(
                out,
                "  {:>10.3} ms  {:5.1}%  {}{}",
                span.dur.as_secs_f64() * 1e3,
                pct(span.dur, ct.total),
                span.name,
                meta
            );
        }
    }

    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "run#{i} [{}] ({:.3} ms)",
            run.tier,
            run.wall.as_secs_f64() * 1e3
        );
        let p = &run.profile;
        ranked_lines(&mut out, "hottest functions", top(&p.func_hits, 10, |c| c));
        ranked_lines(&mut out, "hottest blocks", top(&p.block_hits, 10, |c| c));
        let fires: Vec<(String, u64)> = p
            .op_fires
            .iter()
            .map(|f| {
                let name = if f.superinstruction {
                    format!("{} (super)", f.name)
                } else {
                    f.name.clone()
                };
                (name, f.fires)
            })
            .collect();
        ranked_lines(&mut out, "opcode fires", top(&fires, 15, |c| c));
        ranked_lines(&mut out, "class visits", top(&p.class_visits, 10, |c| c));
    }

    for (bi, batch) in batches.iter().enumerate() {
        let _ = writeln!(
            out,
            "batch#{bi} ({:.3} ms, {} worker(s))",
            batch.wall.as_secs_f64() * 1e3,
            batch.workers.len()
        );
        for w in &batch.workers {
            let _ = writeln!(
                out,
                "  worker {:>2}: {:>6} input(s), {:>6} reset(s), busy {:.3} ms, idle {:.3} ms",
                w.worker,
                w.inputs,
                w.resets,
                w.busy.as_secs_f64() * 1e3,
                w.idle.as_secs_f64() * 1e3
            );
        }
    }

    if out.is_empty() {
        out.push_str("(no trace recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpFire, RunTrace, Span, TierProfile};

    fn sample_compile() -> CompileTrace {
        CompileTrace {
            spans: vec![
                Span {
                    name: "parse".into(),
                    start: Duration::ZERO,
                    dur: Duration::from_micros(40),
                    meta: vec![("decls".into(), "7".into())],
                },
                Span {
                    name: "fusion".into(),
                    start: Duration::from_micros(40),
                    dur: Duration::from_micros(60),
                    meta: Vec::new(),
                },
            ],
            total: Duration::from_micros(100),
        }
    }

    #[test]
    fn render_is_valid_chrome_trace() {
        let runs = vec![RunTrace {
            tier: "vm".into(),
            wall: Duration::from_micros(123),
            profile: TierProfile {
                func_hits: vec![("main".into(), 1)],
                block_hits: Vec::new(),
                op_fires: vec![OpFire {
                    name: "navcall".into(),
                    fires: 42,
                    superinstruction: true,
                }],
                class_visits: Vec::new(),
            },
        }];
        let json = render(Some(&sample_compile()), &runs, &[]);
        let parsed = crate::json::parse(&json).expect("trace must parse");
        crate::json::validate_chrome_trace(&parsed).expect("trace must validate");
        assert!(json.contains("\"parse\""));
        assert!(json.contains("run#0 [vm]"));
    }

    #[test]
    fn summary_ranks_by_duration() {
        let text = summary(Some(&sample_compile()), &[], &[]);
        let fusion = text.find("fusion").unwrap();
        let parse = text.find("parse").unwrap();
        assert!(fusion < parse, "slower stage should rank first:\n{text}");
    }
}
