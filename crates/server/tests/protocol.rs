//! End-to-end protocol tests against a live in-process daemon: every
//! edge case a hostile or buggy client can produce must fail *typed* —
//! the connection (and always the daemon) survives, sessions don't leak,
//! and subsequent requests work.

use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use grafter_engine::{Backend, FusionOptions, OptLevel, ParallelOptions};
use grafter_obs::json::{parse, Json};
use grafter_runtime::Value;
use grafter_server::proto::{
    render_bare, render_explain, render_run, render_run_batch, render_run_with, write_frame,
    FrameReader, Incoming, InputSpec, ProgramSpec, TreeSpec, MAX_BODY,
};
use grafter_server::{Daemon, DaemonOptions};

const SRC: &str = "tree class N { int a = 0; virtual traversal t() { a = a + 1; } }";

fn program() -> ProgramSpec {
    ProgramSpec {
        source: SRC.to_string(),
        root: "N".to_string(),
        passes: vec!["t".to_string()],
        backend: Backend::Vm,
        opt_level: OptLevel::default(),
        fusion: FusionOptions::default(),
        args: Vec::new(),
    }
}

fn leaf() -> InputSpec {
    InputSpec::Tree(TreeSpec {
        class: "N".to_string(),
        fields: vec![("a".to_string(), Value::Int(0))],
        children: Vec::new(),
    })
}

/// A daemon serving on an ephemeral port until `shutdown` flips.
fn spawn_daemon() -> (SocketAddr, Arc<AtomicBool>, thread::JoinHandle<()>) {
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        DaemonOptions {
            cache_capacity: 8,
            workers: 2,
        },
    )
    .expect("bind ephemeral port");
    let addr = daemon.local_addr().expect("resolved address");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = thread::spawn(move || daemon.serve(&flag).expect("serve"));
    (addr, shutdown, handle)
}

struct Client {
    reader: FrameReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            reader: FrameReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    /// Writes raw bytes (deliberately malformed frames).
    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send raw");
        self.writer.flush().expect("flush raw");
    }

    fn recv(&mut self) -> Json {
        loop {
            match self.reader.read_frame().expect("read response frame") {
                Incoming::Frame(body) => return parse(&body).expect("parse response"),
                Incoming::Idle => {}
                Incoming::Closed => panic!("daemon closed the connection"),
            }
        }
    }

    fn call(&mut self, body: &str) -> Json {
        write_frame(&mut self.writer, body).expect("send frame");
        self.recv()
    }
}

fn is_ok(doc: &Json) -> bool {
    matches!(doc.get("ok"), Some(Json::Bool(true)))
}

fn error_stage(doc: &Json) -> &str {
    doc.get("error")
        .and_then(|e| e.get("stage"))
        .and_then(Json::as_str)
        .expect("error stage")
}

/// Extracts a response's `fusion` coverage object as (fused, missed,
/// blocked), asserting all three keys are present numbers.
fn fusion_counts(doc: &Json) -> (u64, u64, u64) {
    let f = doc.get("fusion").expect("fusion object");
    let n = |key: &str| f.get(key).and_then(Json::as_num).expect(key) as u64;
    (n("fused"), n("missed"), n("blocked"))
}

#[test]
fn ping_run_and_batch_round_trip() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    let pong = client.call(&render_bare("ping"));
    assert!(is_ok(&pong));

    let report = client.call(&render_run(&program(), &leaf()));
    assert!(is_ok(&report), "run failed: {report:?}");
    let visits = report
        .get("report")
        .and_then(|r| r.get("metrics"))
        .and_then(|m| m.get("visits"))
        .and_then(Json::as_num)
        .expect("report.metrics.visits");
    assert_eq!(visits as u64, 1, "one leaf, one visit");
    // Single-pass program: the run's fusion coverage object is present
    // with all-zero pair counts.
    assert_eq!(fusion_counts(&report), (0, 0, 0));

    // A batch streams back ordered chunks then a done frame.
    let inputs: Vec<InputSpec> = (0..5).map(|_| leaf()).collect();
    write_frame(
        &mut client.writer,
        &render_run_batch(&program(), &inputs, 4),
    )
    .expect("send batch");
    let mut seen = 0;
    let mut last_first = None;
    loop {
        let frame = client.recv();
        assert!(is_ok(&frame), "batch frame failed: {frame:?}");
        if matches!(frame.get("done"), Some(Json::Bool(true))) {
            assert_eq!(
                frame.get("total").and_then(Json::as_num).map(|n| n as u64),
                Some(5)
            );
            break;
        }
        let first = frame.get("first").and_then(Json::as_num).expect("first") as usize;
        if let Some(prev) = last_first {
            assert!(first > prev, "chunks must arrive in input order");
        }
        last_first = Some(first);
        seen += frame
            .get("results")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
    }
    assert_eq!(seen, 5);

    let stats = client.call(&render_bare("stats"));
    assert!(is_ok(&stats));
    // Stats aggregate coverage over resident engines; only the one
    // zero-pair engine is cached here.
    assert_eq!(fusion_counts(&stats), (0, 0, 0));
    let misses = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(Json::as_num)
        .expect("cache.misses");
    assert_eq!(misses as u64, 1, "run and batch share one cached engine");
    let pool = stats.get("pool").expect("pool stats");
    let busy = pool.get("busy").and_then(Json::as_num).expect("pool.busy");
    let idle = pool.get("idle").and_then(Json::as_num).expect("pool.idle");
    let threads = pool
        .get("threads")
        .and_then(Json::as_num)
        .expect("pool.threads");
    assert_eq!(
        busy + idle,
        threads,
        "busy and idle gauges partition the pool"
    );

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn malformed_json_and_unknown_method_are_typed_and_survivable() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    let resp = client.call("this is not json");
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "proto");

    let resp = client.call("{\"method\":\"teleport\"}");
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "proto");

    // Schema violation inside a known method.
    let resp = client.call("{\"method\":\"run\"}");
    assert!(!is_ok(&resp));

    // A compile error is typed with its pipeline stage.
    let mut bad = program();
    bad.source = "tree class N { this does not parse }".to_string();
    let resp = client.call(&render_run(&bad, &leaf()));
    assert!(!is_ok(&resp));
    assert_ne!(
        error_stage(&resp),
        "proto",
        "compile errors carry their stage"
    );

    // The same connection still works.
    assert!(is_ok(&client.call(&render_bare("ping"))));

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn oversized_body_is_refused_but_connection_survives() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    let huge = "x".repeat(MAX_BODY + 1);
    let mut frame = Vec::with_capacity(huge.len() + 16);
    frame.extend_from_slice(format!("{}\n", huge.len()).as_bytes());
    frame.extend_from_slice(huge.as_bytes());
    frame.push(b'\n');
    client.send_raw(&frame);

    let resp = client.recv();
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "proto");
    assert!(
        resp.get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .expect("message")
            .contains("cap"),
        "error names the body cap"
    );

    assert!(is_ok(&client.call(&render_bare("ping"))));

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn bad_utf8_body_is_typed_and_survivable() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    client.send_raw(b"4\n\xff\xfeab\n");
    let resp = client.recv();
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "proto");

    assert!(is_ok(&client.call(&render_bare("ping"))));

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn mid_stream_disconnect_does_not_kill_the_daemon() {
    let (addr, shutdown, handle) = spawn_daemon();

    // Kick off a batch big enough for several chunk frames, read one
    // frame, then vanish.
    {
        let mut client = Client::connect(addr);
        let inputs: Vec<InputSpec> = (0..40).map(|_| leaf()).collect();
        write_frame(
            &mut client.writer,
            &render_run_batch(&program(), &inputs, 4),
        )
        .expect("send batch");
        let first = client.recv();
        assert!(is_ok(&first));
        // Dropped here: mid-stream disconnect.
    }

    // The daemon keeps serving: a fresh connection completes a full
    // batch with every result accounted for.
    let mut client = Client::connect(addr);
    let inputs: Vec<InputSpec> = (0..10).map(|_| leaf()).collect();
    write_frame(
        &mut client.writer,
        &render_run_batch(&program(), &inputs, 4),
    )
    .expect("send batch");
    let mut seen = 0;
    loop {
        let frame = client.recv();
        assert!(is_ok(&frame));
        if matches!(frame.get("done"), Some(Json::Bool(true))) {
            break;
        }
        seen += frame
            .get("results")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
    }
    assert_eq!(seen, 10, "post-disconnect batches are complete");

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn unknown_workload_and_oversized_gen_are_config_errors() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    let resp = client.call(&render_run(
        &program(),
        &InputSpec::Gen {
            workload: "btree".to_string(),
            size: 8,
            seed: 1,
        },
    ));
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "config");

    // A kdtree depth that would OOM the daemon is refused up front.
    let resp = client.call(&render_run(
        &program(),
        &InputSpec::Gen {
            workload: "kdtree".to_string(),
            size: 48,
            seed: 1,
        },
    ));
    assert!(!is_ok(&resp));
    assert_eq!(error_stage(&resp), "config");

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

#[test]
fn shutdown_waits_for_a_partially_received_request() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);
    let body = render_bare("ping");

    // Send only the length header, flip shutdown, then finish the frame
    // within the grace period: the in-flight request must still be
    // answered before the daemon exits.
    client.send_raw(format!("{}\n", body.len()).as_bytes());
    thread::sleep(Duration::from_millis(120));
    shutdown.store(true, Ordering::SeqCst);
    thread::sleep(Duration::from_millis(120));
    client.send_raw(format!("{body}\n").as_bytes());

    let resp = client.recv();
    assert!(is_ok(&resp), "in-flight request answered during drain");

    handle.join().expect("daemon drains and exits");
}

/// The `explain` method compiles (or reuses) the program's engine and
/// returns its per-pair verdicts; a subsequent `run` and `stats` report
/// matching coverage counts.
#[test]
fn explain_round_trips_verdicts_and_matches_run_coverage() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    // Two independent same-receiver calls: one pair per recursion depth,
    // all fused under default options.
    let mut fusable = program();
    fusable.source = "tree class Node { child Node* next; int a = 0; virtual traversal go() {} } \
                      tree class Cons : Node { traversal go() { a = a + 1; this->next->go(); \
                      this->next->go(); } } \
                      tree class End : Node { }"
        .to_string();
    fusable.root = "Node".to_string();
    fusable.passes = vec!["go".to_string()];

    let resp = client.call(&render_explain(&fusable));
    assert!(is_ok(&resp), "explain failed: {resp:?}");
    let explain = resp.get("explain").expect("explain document");
    let totals = explain.get("totals").expect("totals");
    let fused = totals.get("fused").and_then(Json::as_num).expect("fused") as u64;
    assert!(fused >= 1, "the pair program fuses at least one pair");
    let pairs = explain.get("pairs").and_then(Json::as_arr).expect("pairs");
    assert!(!pairs.is_empty());
    for p in pairs {
        assert!(p.get("verdict").and_then(Json::as_str).is_some());
        assert!(p.get("reason").and_then(Json::as_str).is_some());
        assert!(p.get("left").and_then(|l| l.get("span")).is_some());
    }

    // A run on the same program reports the same coverage, and the
    // explain-built engine is reused (same cache key).
    let report = client.call(&render_run(
        &fusable,
        &InputSpec::Tree(TreeSpec {
            class: "End".to_string(),
            fields: Vec::new(),
            children: Vec::new(),
        }),
    ));
    assert!(is_ok(&report), "run failed: {report:?}");
    let (run_fused, run_missed, run_blocked) = fusion_counts(&report);
    assert_eq!(run_fused, fused);

    let stats = client.call(&render_bare("stats"));
    assert!(is_ok(&stats));
    let misses = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(Json::as_num)
        .expect("cache.misses");
    assert_eq!(misses as u64, 1, "explain and run share one cached engine");
    assert_eq!(fusion_counts(&stats), (run_fused, run_missed, run_blocked));

    // Explain on a broken program is a typed compile error.
    let mut bad = program();
    bad.source = "tree class N { nonsense }".to_string();
    let resp = client.call(&render_explain(&bad));
    assert!(!is_ok(&resp));
    assert_ne!(error_stage(&resp), "proto");

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}

/// A `run` with the `parallel` field must return the same report as a
/// sequential run of the same input — parallelism is server-side wall
/// time only, never a response change.
#[test]
fn parallel_run_matches_sequential_over_the_wire() {
    let (addr, shutdown, handle) = spawn_daemon();
    let mut client = Client::connect(addr);

    // Use a generated kdtree input against the real case-study program:
    // fetch its source from the workload crate so the daemon compiles
    // the same engine the differential suite exercises.
    let case = grafter_workloads::case_studies()
        .into_iter()
        .find(|c| c.name == "kdtree")
        .expect("kdtree case");
    let program = ProgramSpec {
        source: case.source.to_string(),
        root: case.root_class.to_string(),
        passes: case.passes.iter().map(|s| (*s).to_string()).collect(),
        backend: Backend::Vm,
        opt_level: OptLevel::default(),
        fusion: FusionOptions::default(),
        args: case.args.clone(),
    };
    let input = InputSpec::Gen {
        workload: "kdtree".to_string(),
        size: 8,
        seed: 42,
    };

    let seq = client.call(&render_run(&program, &input));
    assert!(is_ok(&seq), "sequential run failed: {seq:?}");
    let par_opts = ParallelOptions {
        workers: 4,
        fork_depth: 4,
        seq_cutoff: 1,
    };
    let par = client.call(&render_run_with(&program, &input, Some(&par_opts)));
    assert!(is_ok(&par), "parallel run failed: {par:?}");

    // Bit-identical everywhere except wall time.
    for key in ["metrics", "globals", "backend"] {
        assert_eq!(
            format!("{:?}", seq.get("report").and_then(|r| r.get(key))),
            format!("{:?}", par.get("report").and_then(|r| r.get(key))),
            "report.{key} diverged between sequential and parallel"
        );
    }

    shutdown.store(true, Ordering::SeqCst);
    drop(client);
    handle.join().expect("daemon thread");
}
