//! Single-flight compilation, asserted end-to-end against the VM's
//! process-wide lowering counter: N concurrent requests for one uncached
//! program must trigger exactly one compile.
//!
//! This lives in its own test binary because `lowering_count()` is
//! process-global — other tests compiling engines in the same process
//! would make the delta meaningless.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use grafter_engine::{Backend, Engine, FusionOptions, OptLevel};
use grafter_obs::json::{parse, Json};
use grafter_runtime::Value;
use grafter_server::proto::{
    render_bare, render_run, write_frame, FrameReader, Incoming, InputSpec, ProgramSpec, TreeSpec,
};
use grafter_server::{Daemon, DaemonOptions};
use grafter_vm::lowering_count;

fn program(source: &str) -> ProgramSpec {
    ProgramSpec {
        source: source.to_string(),
        root: "N".to_string(),
        passes: vec!["t".to_string()],
        backend: Backend::Vm,
        opt_level: OptLevel::default(),
        fusion: FusionOptions::default(),
        args: Vec::new(),
    }
}

fn leaf() -> InputSpec {
    InputSpec::Tree(TreeSpec {
        class: "N".to_string(),
        fields: vec![("a".to_string(), Value::Int(0))],
        children: Vec::new(),
    })
}

fn call(addr: SocketAddr, body: &str) -> Json {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, body).expect("send");
    loop {
        match reader.read_frame().expect("read") {
            Incoming::Frame(resp) => return parse(&resp).expect("parse"),
            Incoming::Idle => {}
            Incoming::Closed => panic!("daemon closed the connection"),
        }
    }
}

#[test]
fn concurrent_identical_requests_compile_exactly_once() {
    // Reference: how many lowerings does compiling this program shape
    // cost? Measured on a same-shape program with a different source so
    // it cannot collide with the daemon's cache.
    let reference = "tree class N { int a = 1; virtual traversal t() { a = a + 2; } }";
    let before = lowering_count();
    Engine::builder()
        .source(reference)
        .entry("N", &["t"])
        .backend(Backend::Vm)
        .build()
        .expect("reference compiles");
    let per_compile = lowering_count() - before;
    assert!(per_compile > 0, "VM compiles lower at least once");

    let daemon = Daemon::bind(
        "127.0.0.1:0",
        DaemonOptions {
            cache_capacity: 8,
            workers: 2,
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().expect("addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let serve = thread::spawn(move || daemon.serve(&flag).expect("serve"));

    let source = "tree class N { int a = 0; virtual traversal t() { a = a + 1; } }";
    let body = render_run(&program(source), &leaf());
    let before = lowering_count();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            thread::spawn(move || call(addr, &body))
        })
        .collect();
    for c in clients {
        let resp = c.join().expect("client thread");
        assert!(
            matches!(resp.get("ok"), Some(Json::Bool(true))),
            "every concurrent request succeeds: {resp:?}"
        );
    }
    let delta = lowering_count() - before;
    assert_eq!(
        delta, per_compile,
        "8 concurrent identical requests must lower exactly one program"
    );

    // The cache agrees: one miss, seven hits.
    let stats = call(addr, &render_bare("stats"));
    let cache = stats.get("cache").expect("cache stats");
    let misses = cache.get("misses").and_then(Json::as_num).expect("misses") as u64;
    let hits = cache.get("hits").and_then(Json::as_num).expect("hits") as u64;
    assert_eq!(misses, 1);
    assert_eq!(hits, 7);

    // And steady state is quiet: repeating a request compiles nothing.
    let before = lowering_count();
    let resp = call(addr, &body);
    assert!(matches!(resp.get("ok"), Some(Json::Bool(true))));
    assert_eq!(
        lowering_count() - before,
        0,
        "cached request lowers nothing"
    );

    shutdown.store(true, Ordering::SeqCst);
    serve.join().expect("daemon thread");
}
