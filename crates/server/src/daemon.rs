//! The grafterd connection loop: accept, serve, drain, exit.
//!
//! One thread per connection (requests within a connection are
//! sequential; concurrency comes from concurrent connections), all
//! execution routed through the engine crate's persistent worker pool —
//! the daemon itself never runs a traversal on a connection thread, so
//! connection stacks stay small while traversal recursion gets the
//! pool's 2 GiB reserved stacks, and per-input `catch_unwind` isolation
//! applies to every request shape.
//!
//! Shutdown is cooperative: when the shutdown flag flips (SIGTERM in the
//! binary, a test hook here), the acceptor stops taking connections and
//! every connection finishes its **in-flight** request — including a
//! partially received frame, within a grace period — before closing.
//! [`Daemon::serve`] returns only after the last connection thread
//! exits, so the process can exit 0 with no lost responses.

use std::io::{self, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use grafter_engine::{pool_stats, BatchOptions, Engine, Error, Report};
use grafter_obs::json::JsonWriter;
use grafter_runtime::{Heap, NodeId};
use grafter_vm::lowering_count;
use grafter_workloads::case_studies;

use crate::cache::EngineCache;
use crate::proto::{
    build_tree_spec, parse_request, render_error, write_frame, AppError, FrameReader, Incoming,
    InputSpec, ProgramSpec, ProtoError, Request,
};

/// Results per streamed `run_batch` response frame.
const CHUNK: usize = 16;

/// Connection-thread stack: big enough for deep JSON recursion, small
/// next to the pool's traversal stacks (which do the actual running).
const CONN_STACK: usize = 64 << 20;

/// How long a connection waits on a *partially received* frame after
/// shutdown begins before giving up on the peer.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// Poll quantum for the acceptor and connection read timeouts.
const POLL: Duration = Duration::from_millis(50);

/// Daemon tuning.
#[derive(Clone, Debug)]
pub struct DaemonOptions {
    /// Ready engines kept resident (LRU beyond this).
    pub cache_capacity: usize,
    /// Worker-pool width used for batch requests.
    pub workers: usize,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            cache_capacity: 32,
            workers: thread::available_parallelism().map_or(4, usize::from),
        }
    }
}

/// A bound (not yet serving) grafterd instance.
pub struct Daemon {
    listener: TcpListener,
    cache: EngineCache,
    opts: DaemonOptions,
}

impl Daemon {
    /// Binds the listening socket (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors (address in use, permission).
    pub fn bind(addr: impl ToSocketAddrs, opts: DaemonOptions) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        Ok(Daemon {
            listener,
            cache: EngineCache::new(opts.cache_capacity),
            opts,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` socket errors.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` becomes true, then drains: stops
    /// accepting, lets every connection finish its in-flight request,
    /// and returns once all connection threads exited.
    ///
    /// # Errors
    ///
    /// Propagates acceptor socket errors (per-connection I/O errors only
    /// close that connection).
    pub fn serve(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        thread::scope(|scope| {
            while !shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        thread::Builder::new()
                            .name("grafterd-conn".to_string())
                            .stack_size(CONN_STACK)
                            .spawn_scoped(scope, move || {
                                // A connection failing (I/O, desync) only
                                // drops that connection.
                                let _ = self.handle_conn(stream, shutdown);
                            })
                            .expect("spawn connection thread");
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
            // Scope exit joins every connection thread: the drain.
        })
    }

    fn handle_conn(&self, stream: TcpStream, shutdown: &AtomicBool) -> io::Result<()> {
        stream.set_read_timeout(Some(POLL))?;
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let mut grace_left = SHUTDOWN_GRACE;
        loop {
            match reader.read_frame() {
                Ok(Incoming::Frame(body)) => {
                    grace_left = SHUTDOWN_GRACE;
                    if self.handle_request(&body, &mut writer).is_err() {
                        // The peer vanished mid-response; nothing left to
                        // say to it.
                        return Ok(());
                    }
                }
                Ok(Incoming::Idle) => {
                    if shutdown.load(Ordering::SeqCst) {
                        if !reader.mid_frame() {
                            // Drained: no in-flight request on this
                            // connection.
                            return Ok(());
                        }
                        // A request is partially received; give the peer
                        // a bounded grace to finish it.
                        grace_left = grace_left.saturating_sub(POLL);
                        if grace_left.is_zero() {
                            return Ok(());
                        }
                    }
                }
                Ok(Incoming::Closed) => return Ok(()),
                Err(ProtoError::Oversized(len)) => {
                    let body = render_error(
                        "proto",
                        &format!(
                            "body of {len} bytes exceeds the {} byte cap",
                            crate::proto::MAX_BODY
                        ),
                    );
                    write_frame(&mut writer, &body)?;
                }
                Err(ProtoError::BadUtf8) => {
                    write_frame(
                        &mut writer,
                        &render_error("proto", "body is not valid UTF-8"),
                    )?;
                }
                Err(ProtoError::Fatal(msg)) => {
                    // Framing desynced; answer if possible, then close.
                    let _ = write_frame(&mut writer, &render_error("proto", &msg));
                    return Ok(());
                }
                Err(ProtoError::Io(_)) => return Ok(()),
            }
        }
    }

    /// Dispatches one parsed frame. `Err` means the *transport* failed
    /// (close the connection); request-level failures are answered with
    /// typed error frames and return `Ok`.
    fn handle_request(&self, body: &str, writer: &mut impl Write) -> io::Result<()> {
        let request = match parse_request(body) {
            Ok(r) => r,
            Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
        };
        match request {
            Request::Ping => {
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("ok").bool(true);
                w.key("pong").bool(true);
                w.end_obj();
                write_frame(writer, &w.finish())
            }
            Request::Stats => write_frame(writer, &self.stats_body()),
            Request::Explain { program } => {
                let engine = match self.engine_for(&program) {
                    Ok(e) => e,
                    Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
                };
                let mut w = JsonWriter::with_capacity(1024);
                w.begin_obj();
                w.key("ok").bool(true);
                w.key("explain")
                    .raw(&engine.explain().render_json(engine.source()));
                w.end_obj();
                write_frame(writer, &w.finish())
            }
            Request::Run {
                program,
                input,
                parallel,
            } => {
                let engine = match self.engine_for(&program) {
                    Ok(e) => e,
                    Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
                };
                let builder = match make_builder(input) {
                    Ok(b) => b,
                    Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
                };
                // Routed through the pool: pooled session, 2 GiB stack,
                // per-input catch_unwind — even for a single run. Requested
                // intra-tree parallelism forks further pool jobs from there.
                let mut opts = BatchOptions::with_workers(1);
                opts.parallel = parallel;
                let mut results = engine.try_run_batch(vec![builder], &opts);
                let result = results.pop().expect("one input, one result");
                let body = match result {
                    Ok(report) => {
                        let mut w = JsonWriter::with_capacity(512);
                        w.begin_obj();
                        w.key("ok").bool(true);
                        w.key("report").raw(&report.to_json());
                        // Pair coverage of the engine this run executed on,
                        // so clients see fusion quality without a separate
                        // `explain` round trip.
                        let c = &engine.fused_program().coverage;
                        write_fusion(&mut w, c.fused_pairs, c.missed_pairs, c.blocked_pairs);
                        w.end_obj();
                        w.finish()
                    }
                    Err(e) => engine_error_body(&e),
                };
                write_frame(writer, &body)
            }
            Request::RunBatch {
                program,
                inputs,
                window,
                parallel,
            } => {
                let engine = match self.engine_for(&program) {
                    Ok(e) => e,
                    Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
                };
                let total = inputs.len();
                let mut builders = Vec::with_capacity(total);
                for input in inputs {
                    match make_builder(input) {
                        Ok(b) => builders.push(b),
                        Err(e) => return write_frame(writer, &render_error(&e.stage, &e.message)),
                    }
                }
                let mut opts = BatchOptions::with_workers(self.opts.workers.min(total.max(1)));
                opts.parallel = parallel;

                // Stream input-ordered chunks; TCP write stalls propagate
                // through the sink into the batch window (backpressure).
                let broken = {
                    let mut chunk = ChunkState::new(writer);
                    engine.run_batch_streamed(builders, &opts, window, |i, result| {
                        chunk.push(i, &result);
                    });
                    chunk.finish()
                };
                if broken {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "peer vanished mid-stream",
                    ));
                }
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("ok").bool(true);
                w.key("done").bool(true);
                w.key("total").num(total);
                w.end_obj();
                write_frame(writer, &w.finish())
            }
        }
    }

    /// The cached (or freshly compiled, single-flight) engine for a spec.
    fn engine_for(&self, program: &ProgramSpec) -> Result<Arc<Engine>, AppError> {
        let key = program.key();
        self.cache
            .get_or_build(&key, || {
                Engine::builder()
                    .source(program.source.clone())
                    .entry(program.root.clone(), &program.passes)
                    .fusion(program.fusion.clone())
                    .backend(program.backend)
                    .opt_level(program.opt_level)
                    .args(program.args.clone())
                    .build()
            })
            .map_err(|e| AppError {
                stage: e.stage().to_string(),
                message: e.to_string(),
            })
    }

    fn stats_body(&self) -> String {
        let cache = self.cache.stats();
        let pool = pool_stats();
        // Fusion pair coverage aggregated over the resident engines: how
        // well the programs this daemon currently serves fused.
        let (mut fused, mut missed, mut blocked) = (0usize, 0usize, 0usize);
        self.cache.for_each_ready(|e| {
            let c = &e.fused_program().coverage;
            fused += c.fused_pairs;
            missed += c.missed_pairs;
            blocked += c.blocked_pairs;
        });
        let mut w = JsonWriter::with_capacity(256);
        w.begin_obj();
        w.key("ok").bool(true);
        w.key("lowerings").num(lowering_count());
        write_fusion(&mut w, fused, missed, blocked);
        w.key("cache").begin_obj();
        w.key("size").num(cache.size);
        w.key("hits").num(cache.hits);
        w.key("misses").num(cache.misses);
        w.key("evictions").num(cache.evictions);
        w.key("single_flight_waits").num(cache.single_flight_waits);
        w.end_obj();
        w.key("pool").begin_obj();
        w.key("threads").num(pool.threads);
        w.key("spawned_total").num(pool.spawned_total);
        w.key("jobs_executed").num(pool.jobs_executed);
        w.key("busy").num(pool.busy);
        w.key("idle").num(pool.idle);
        w.end_obj();
        w.end_obj();
        w.finish()
    }
}

/// Accumulates streamed results and frames them every [`CHUNK`] inputs.
struct ChunkState<'w, W: Write> {
    writer: &'w mut W,
    first: usize,
    chunk_no: usize,
    results: Vec<String>,
    broken: bool,
}

impl<'w, W: Write> ChunkState<'w, W> {
    fn new(writer: &'w mut W) -> ChunkState<'w, W> {
        ChunkState {
            writer,
            first: 0,
            chunk_no: 0,
            results: Vec::with_capacity(CHUNK),
            broken: false,
        }
    }

    fn push(&mut self, i: usize, result: &Result<Report, Error>) {
        if self.results.is_empty() {
            self.first = i;
        }
        self.results.push(match result {
            Ok(report) => report.to_json(),
            Err(e) => {
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("error").begin_obj();
                w.key("stage").str(&e.stage().to_string());
                w.key("message").str(&e.to_string());
                w.end_obj();
                w.end_obj();
                w.finish()
            }
        });
        if self.results.len() >= CHUNK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.results.is_empty() || self.broken {
            self.results.clear();
            return;
        }
        let mut w = JsonWriter::with_capacity(256 + 512 * self.results.len());
        w.begin_obj();
        w.key("ok").bool(true);
        w.key("chunk").num(self.chunk_no);
        w.key("first").num(self.first);
        w.key("results").begin_arr();
        for r in &self.results {
            w.raw(r);
        }
        w.end_arr();
        w.end_obj();
        // A dead peer cannot abort the batch (the engine owns it); mark
        // the stream broken and drop the remaining output.
        if write_frame(self.writer, &w.finish()).is_err() {
            self.broken = true;
        }
        self.chunk_no += 1;
        self.results.clear();
    }

    /// Flushes the final partial chunk and reports whether the peer
    /// vanished mid-stream.
    fn finish(mut self) -> bool {
        self.flush();
        self.broken
    }
}

/// Resolves an input spec into a `Send` tree builder for the batch API.
/// Unknown workloads fail fast here (typed config error); unknown
/// classes/fields in an inline tree surface as per-input runtime errors
/// via the pool's `catch_unwind`.
fn make_builder(input: InputSpec) -> Result<Builder, AppError> {
    // Generator sizes are capped so one request cannot OOM-abort the
    // whole daemon (allocation failure aborts, catch_unwind can't help).
    // kdtree's `size` is a tree *depth* — 2^size nodes — so its cap is
    // far lower than the node/point-count workloads'.
    const MAX_GEN_SIZE: usize = 1 << 22;
    const MAX_KD_DEPTH: usize = 24;
    match input {
        InputSpec::Gen {
            workload,
            size,
            seed,
        } => {
            let build = *gen_builders()
                .iter()
                .find(|(name, _)| *name == workload)
                .map(|(_, build)| build)
                .ok_or_else(|| {
                    AppError::config(format!(
                        "unknown workload `{workload}` (expected ast|render|kdtree|fmm)"
                    ))
                })?;
            let cap = if workload == "kdtree" {
                MAX_KD_DEPTH
            } else {
                MAX_GEN_SIZE
            };
            if size > cap {
                return Err(AppError::config(format!(
                    "gen size {size} for `{workload}` exceeds the cap of {cap}"
                )));
            }
            Ok(Box::new(move |heap: &mut Heap| build(heap, size, seed)))
        }
        InputSpec::Tree(spec) => Ok(Box::new(move |heap: &mut Heap| {
            build_tree_spec(heap, &spec)
        })),
    }
}

type Builder = Box<dyn FnOnce(&mut Heap) -> NodeId + Send>;

type GenBuilder = fn(&mut Heap, usize, u64) -> NodeId;

/// The workload-name → tree-builder table, resolved once: constructing a
/// [`grafter_workloads::CaseStudy`] compiles its DSL frontend (~ms), far
/// too slow to repeat per request.
fn gen_builders() -> &'static [(String, GenBuilder)] {
    static TABLE: std::sync::OnceLock<Vec<(String, GenBuilder)>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        case_studies()
            .into_iter()
            .map(|c| (c.name.to_string(), c.build))
            .collect()
    })
}

fn engine_error_body(e: &Error) -> String {
    render_error(&e.stage().to_string(), &e.to_string())
}

/// Writes the protocol's `fusion` coverage object
/// (`{"fused":..,"missed":..,"blocked":..}`) under the current key.
fn write_fusion(w: &mut JsonWriter, fused: usize, missed: usize, blocked: usize) {
    w.key("fusion").begin_obj();
    w.key("fused").num(fused);
    w.key("missed").num(missed);
    w.key("blocked").num(blocked);
    w.end_obj();
}
