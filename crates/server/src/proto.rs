//! The grafterd wire protocol.
//!
//! # Framing
//!
//! One frame per message, in both directions:
//!
//! ```text
//! <len>\n<body>\n
//! ```
//!
//! where `<len>` is the body's byte length in ASCII decimal and `<body>`
//! is UTF-8 JSON. The trailing newline is part of the frame (it makes
//! `nc` sessions readable) but not counted in `<len>`. Bodies are capped
//! at [`MAX_BODY`]; a frame declaring more gets a typed error and is
//! drained (up to [`DRAIN_CAP`], beyond which the connection closes —
//! the peer is either broken or hostile).
//!
//! # Requests
//!
//! The body is one JSON object with a `"method"` key:
//!
//! - `{"method":"ping"}` — liveness check.
//! - `{"method":"stats"}` — compile/cache/pool counters plus a `fusion`
//!   object aggregating pair coverage over the resident engines.
//! - `{"method":"explain","program":P}` — compiles (or reuses) the
//!   program's engine and returns its per-pair fusability verdicts as
//!   the `explain` document (`totals` + `pairs`).
//! - `{"method":"run","program":P,"input":I}` — one traversal run.
//! - `{"method":"run_batch","program":P,"inputs":[I...],"window":W}` —
//!   a batch; responses stream back as input-ordered chunks.
//!
//! `run` and `run_batch` additionally accept an optional top-level
//! `"parallel":{"workers":N,"fork_depth":D,"seq_cutoff":C}` object
//! enabling intra-tree parallelism for each run (`fork_depth` and
//! `seq_cutoff` optional). Parallel runs are bit-identical to
//! sequential ones, so the setting never changes a response body —
//! only server-side wall time.
//!
//! A program spec `P` is `{"source":S,"root":C,"passes":[..],
//! "backend":"vm","opt_level":"O2","fusion":{..},"args":[[..]..]}`
//! (everything but `source`, `root` and `passes` optional). An input
//! spec `I` is either a generator reference
//! `{"gen":{"workload":"ast","size":64,"seed":7}}` into the four paper
//! case studies, or an inline tree
//! `{"tree":{"class":C,"fields":{..},"children":{..}}}`. Leaf values are
//! tagged — `{"i":1}`, `{"f":2.5}`, `{"b":true}` — because JSON numbers
//! alone cannot distinguish the DSL's int and float types.
//!
//! # Responses
//!
//! `{"ok":true,...}` or `{"ok":false,"error":{"stage":S,"message":M}}`
//! where `S` is a pipeline stage name (`parse`, `sema`, `fuse`,
//! `runtime`, `config`) or `proto` for transport-level faults.

use std::io::{self, Read, Write};

use grafter_engine::{fnv1a, Backend, EngineKey, FusionOptions, OptLevel, ParallelOptions};
use grafter_obs::json::{parse, Json, JsonWriter};
use grafter_runtime::{Heap, NodeId, Value};

/// Hard cap on one frame's body, request or response chunk.
pub const MAX_BODY: usize = 8 << 20;

/// An oversized frame declaring up to this much is drained (typed error,
/// connection survives); beyond it the connection closes.
pub const DRAIN_CAP: usize = 64 << 20;

/// Longest accepted length header (digits before the newline).
const MAX_LEN_DIGITS: usize = 12;

/// A protocol-level fault while reading one frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Body length over [`MAX_BODY`]; the frame was drained and the
    /// connection is still usable.
    Oversized(usize),
    /// Body length over [`DRAIN_CAP`] (or the stream desynced): the
    /// caller must close the connection.
    Fatal(String),
    /// Frame body was not valid UTF-8; the frame was consumed.
    BadUtf8,
    /// Transport error (includes EOF mid-frame).
    Io(io::Error),
}

/// One `read_frame` outcome.
#[derive(Debug)]
pub enum Incoming {
    /// A complete frame body.
    Frame(String),
    /// The read timed out; call again. [`FrameReader::mid_frame`] tells
    /// whether a partial frame (an in-flight request) is pending.
    Idle,
    /// Clean EOF at a frame boundary.
    Closed,
}

/// Incremental frame reader over a (possibly read-timeout) byte stream.
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of an oversized frame still to discard (plus its trailing
    /// newline), and the declared length to report once drained.
    drain: Option<(usize, usize)>,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            drain: None,
        }
    }

    /// Whether a partially received frame is buffered (an in-flight
    /// request the daemon should wait out before shutting the
    /// connection down).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty() || self.drain.is_some()
    }

    /// Reads the next frame. [`Incoming::Idle`] on a read timeout (state
    /// is kept; call again), [`Incoming::Closed`] on EOF between frames.
    pub fn read_frame(&mut self) -> Result<Incoming, ProtoError> {
        loop {
            if let Some((left, declared)) = self.drain {
                let eat = left.min(self.buf.len());
                self.buf.drain(..eat);
                if eat < left {
                    self.drain = Some((left - eat, declared));
                    match self.fill()? {
                        Fill::Got => continue,
                        Fill::Timeout => return Ok(Incoming::Idle),
                        Fill::Eof => {
                            return Err(ProtoError::Io(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "eof while draining oversized frame",
                            )))
                        }
                    }
                }
                self.drain = None;
                return Err(ProtoError::Oversized(declared));
            }

            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let len = parse_len(&self.buf[..nl])?;
                if len > MAX_BODY {
                    if len > DRAIN_CAP {
                        return Err(ProtoError::Fatal(format!(
                            "frame of {len} bytes exceeds the drain cap"
                        )));
                    }
                    // Discard header + body + trailing newline, then
                    // report the refusal.
                    self.buf.drain(..=nl);
                    self.drain = Some((len + 1, len));
                    continue;
                }
                let need = nl + 1 + len + 1;
                if self.buf.len() >= need {
                    if self.buf[need - 1] != b'\n' {
                        return Err(ProtoError::Fatal(
                            "frame body not newline-terminated".to_string(),
                        ));
                    }
                    let body = self.buf[nl + 1..need - 1].to_vec();
                    self.buf.drain(..need);
                    return match String::from_utf8(body) {
                        Ok(s) => Ok(Incoming::Frame(s)),
                        Err(_) => Err(ProtoError::BadUtf8),
                    };
                }
            } else if self.buf.len() > MAX_LEN_DIGITS {
                return Err(ProtoError::Fatal("length header too long".to_string()));
            }

            match self.fill()? {
                Fill::Got => {}
                Fill::Timeout => return Ok(Incoming::Idle),
                Fill::Eof if self.buf.is_empty() => return Ok(Incoming::Closed),
                Fill::Eof => {
                    return Err(ProtoError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    )))
                }
            }
        }
    }

    fn fill(&mut self) -> Result<Fill, ProtoError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(Fill::Got);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Fill::Timeout)
                }
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
    }
}

enum Fill {
    Got,
    Timeout,
    Eof,
}

fn parse_len(header: &[u8]) -> Result<usize, ProtoError> {
    if header.is_empty() || header.len() > MAX_LEN_DIGITS {
        return Err(ProtoError::Fatal("bad length header".to_string()));
    }
    let mut len: usize = 0;
    for &b in header {
        if !b.is_ascii_digit() {
            return Err(ProtoError::Fatal(format!(
                "non-digit in length header: 0x{b:02x}"
            )));
        }
        len = len * 10 + usize::from(b - b'0');
    }
    Ok(len)
}

/// Writes one frame: `<len>\n<body>\n`.
///
/// # Errors
///
/// Propagates transport errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    write!(w, "{}\n{body}\n", body.len())?;
    w.flush()
}

// ---------------------------------------------------------------------
// Request schema
// ---------------------------------------------------------------------

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    Ping,
    Stats,
    /// Per-pair fusability verdicts of a program, without running it.
    Explain {
        program: ProgramSpec,
    },
    Run {
        program: ProgramSpec,
        input: InputSpec,
        /// Intra-tree parallelism for the run (`None` = sequential).
        parallel: Option<ParallelOptions>,
    },
    RunBatch {
        program: ProgramSpec,
        inputs: Vec<InputSpec>,
        /// Reorder/backpressure window for the streamed response.
        window: usize,
        /// Intra-tree parallelism per input (`None` = sequential).
        parallel: Option<ParallelOptions>,
    },
}

/// Everything that determines the engine a request runs on.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    pub source: String,
    pub root: String,
    pub passes: Vec<String>,
    pub backend: Backend,
    pub opt_level: OptLevel,
    pub fusion: FusionOptions,
    pub args: Vec<Vec<Value>>,
}

impl ProgramSpec {
    /// The engine-cache key of this spec.
    pub fn key(&self) -> EngineKey {
        EngineKey::new(
            &self.source,
            &self.root,
            &self.passes,
            &self.fusion,
            self.backend,
            self.opt_level,
        )
        .with_args_hash(fnv1a(canon_args(&self.args).as_bytes()))
    }
}

/// Canonical text form of entry arguments (the args-hash input): floats
/// print in Rust's shortest round-trip form, so equal values — and only
/// equal values — canonicalize equally.
pub fn canon_args(args: &[Vec<Value>]) -> String {
    let mut out = String::new();
    for (i, pass) in args.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        for (j, v) in pass.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                Value::Int(n) => out.push_str(&format!("i{n}")),
                Value::Float(x) => out.push_str(&format!("f{x}")),
                Value::Bool(b) => out.push_str(&format!("b{b}")),
                Value::Ref(r) => out.push_str(&format!("r{:?}", r.map(|n| n.0))),
            }
        }
    }
    out
}

/// One input of a run/batch request.
#[derive(Clone, Debug)]
pub enum InputSpec {
    /// A tree from one of the paper's workload generators, built
    /// server-side (`size` nodes-ish, deterministic in `seed`).
    Gen {
        workload: String,
        size: usize,
        seed: u64,
    },
    /// An inline tree shipped over the wire.
    Tree(TreeSpec),
}

/// An inline tree: class, scalar fields, children (recursively).
#[derive(Clone, Debug)]
pub struct TreeSpec {
    pub class: String,
    pub fields: Vec<(String, Value)>,
    pub children: Vec<(String, Option<TreeSpec>)>,
}

/// Materializes an inline tree spec into `heap`, returning the root.
///
/// Unknown classes or fields panic with a descriptive message; the batch
/// layer's per-input `catch_unwind` turns that into a typed runtime
/// error for exactly this input.
pub fn build_tree_spec(heap: &mut Heap, spec: &TreeSpec) -> NodeId {
    let node = heap
        .alloc_by_name(&spec.class)
        .unwrap_or_else(|| panic!("unknown tree class `{}`", spec.class));
    for (field, value) in &spec.fields {
        heap.set_by_name(node, field, *value)
            .unwrap_or_else(|| panic!("unknown field `{field}` on `{}`", spec.class));
    }
    for (field, child) in &spec.children {
        let child = child.as_ref().map(|c| build_tree_spec(heap, c));
        heap.set_child_by_name(node, field, child)
            .unwrap_or_else(|| panic!("unknown child field `{field}` on `{}`", spec.class));
    }
    node
}

/// A request-level failure, rendered as `{"ok":false,"error":{...}}`.
#[derive(Debug)]
pub struct AppError {
    pub stage: String,
    pub message: String,
}

impl AppError {
    pub fn proto(message: impl Into<String>) -> AppError {
        AppError {
            stage: "proto".to_string(),
            message: message.into(),
        }
    }

    pub fn config(message: impl Into<String>) -> AppError {
        AppError {
            stage: "config".to_string(),
            message: message.into(),
        }
    }
}

/// Parses one request body.
///
/// # Errors
///
/// Malformed JSON and schema violations come back as [`AppError`]s (the
/// connection survives; only this request fails).
pub fn parse_request(body: &str) -> Result<Request, AppError> {
    let doc = parse(body).map_err(|e| AppError::proto(format!("malformed JSON: {}", e.msg)))?;
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| AppError::proto("missing string `method`"))?;
    match method {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "explain" => {
            let program = parse_program(&doc)?;
            Ok(Request::Explain { program })
        }
        "run" => {
            let program = parse_program(&doc)?;
            let input = parse_input(
                doc.get("input")
                    .ok_or_else(|| AppError::proto("run: missing `input`"))?,
            )?;
            let parallel = parse_parallel(&doc)?;
            Ok(Request::Run {
                program,
                input,
                parallel,
            })
        }
        "run_batch" => {
            let program = parse_program(&doc)?;
            let inputs = doc
                .get("inputs")
                .and_then(Json::as_arr)
                .ok_or_else(|| AppError::proto("run_batch: missing array `inputs`"))?
                .iter()
                .map(parse_input)
                .collect::<Result<Vec<_>, _>>()?;
            let window = doc
                .get("window")
                .and_then(Json::as_num)
                .map_or(8, |w| w as usize)
                .clamp(1, 64);
            let parallel = parse_parallel(&doc)?;
            Ok(Request::RunBatch {
                program,
                inputs,
                window,
                parallel,
            })
        }
        other => Err(AppError::proto(format!("unknown method `{other}`"))),
    }
}

fn parse_program(doc: &Json) -> Result<ProgramSpec, AppError> {
    let p = doc
        .get("program")
        .ok_or_else(|| AppError::proto("missing `program`"))?;
    let source = p
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| AppError::proto("program: missing string `source`"))?
        .to_string();
    let root = p
        .get("root")
        .and_then(Json::as_str)
        .ok_or_else(|| AppError::proto("program: missing string `root`"))?
        .to_string();
    let passes = p
        .get("passes")
        .and_then(Json::as_arr)
        .ok_or_else(|| AppError::proto("program: missing array `passes`"))?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_string)
                .ok_or_else(|| AppError::proto("program: passes must be strings"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let backend = match p.get("backend").and_then(Json::as_str) {
        None => Backend::Vm,
        Some(s) => s.parse().map_err(AppError::config)?,
    };
    let opt_level = match p.get("opt_level").and_then(Json::as_str) {
        None => OptLevel::default(),
        Some(s) => s.parse().map_err(AppError::config)?,
    };
    let mut fusion = FusionOptions::default();
    if let Some(f) = p.get("fusion") {
        if let Some(n) = f.get("max_group_size").and_then(Json::as_num) {
            fusion.max_group_size = n as usize;
        }
        if let Some(n) = f.get("max_occurrences").and_then(Json::as_num) {
            fusion.max_occurrences = n as usize;
        }
        if let Some(Json::Bool(g)) = f.get("grouping") {
            fusion.grouping = *g;
        }
    }
    let args = match p.get("args") {
        None => Vec::new(),
        Some(a) => a
            .as_arr()
            .ok_or_else(|| AppError::proto("program: `args` must be an array"))?
            .iter()
            .map(|pass| {
                pass.as_arr()
                    .ok_or_else(|| AppError::proto("program: each args entry must be an array"))?
                    .iter()
                    .map(parse_value)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(ProgramSpec {
        source,
        root,
        passes,
        backend,
        opt_level,
        fusion,
        args,
    })
}

/// Parses the optional top-level `"parallel"` object. Worker counts are
/// clamped to a sane range so one request cannot demand an absurd
/// fan-out; depth and cutoff fall back to the engine defaults.
fn parse_parallel(doc: &Json) -> Result<Option<ParallelOptions>, AppError> {
    const MAX_WORKERS: usize = 64;
    let Some(p) = doc.get("parallel") else {
        return Ok(None);
    };
    let workers =
        p.get("workers")
            .and_then(Json::as_num)
            .ok_or_else(|| AppError::proto("parallel: missing number `workers`"))? as usize;
    let mut opts = ParallelOptions::with_workers(workers.clamp(1, MAX_WORKERS));
    if let Some(n) = p.get("fork_depth").and_then(Json::as_num) {
        opts.fork_depth = n as usize;
    }
    if let Some(n) = p.get("seq_cutoff").and_then(Json::as_num) {
        opts.seq_cutoff = n as usize;
    }
    Ok(Some(opts))
}

fn parse_input(doc: &Json) -> Result<InputSpec, AppError> {
    if let Some(gen) = doc.get("gen") {
        let workload = gen
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| AppError::proto("gen: missing string `workload`"))?
            .to_string();
        let size =
            gen.get("size")
                .and_then(Json::as_num)
                .ok_or_else(|| AppError::proto("gen: missing number `size`"))? as usize;
        let seed = gen
            .get("seed")
            .and_then(Json::as_num)
            .map_or(42, |s| s as u64);
        return Ok(InputSpec::Gen {
            workload,
            size,
            seed,
        });
    }
    if let Some(tree) = doc.get("tree") {
        return Ok(InputSpec::Tree(parse_tree(tree)?));
    }
    Err(AppError::proto("input needs `gen` or `tree`"))
}

fn parse_tree(doc: &Json) -> Result<TreeSpec, AppError> {
    let class = doc
        .get("class")
        .and_then(Json::as_str)
        .ok_or_else(|| AppError::proto("tree: missing string `class`"))?
        .to_string();
    let mut fields = Vec::new();
    if let Some(Json::Obj(map)) = doc.get("fields") {
        for (name, v) in map {
            fields.push((name.clone(), parse_value(v)?));
        }
        // The parser's map loses wire order; field *values* are
        // order-independent, but sort for determinism anyway.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
    }
    let mut children = Vec::new();
    if let Some(Json::Obj(map)) = doc.get("children") {
        for (name, c) in map {
            let child = match c {
                Json::Null => None,
                other => Some(parse_tree(other)?),
            };
            children.push((name.clone(), child));
        }
        // Child order decides allocation order (hence simulated
        // addresses); canonical name order keeps it deterministic
        // regardless of the parser's map iteration order.
        children.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Ok(TreeSpec {
        class,
        fields,
        children,
    })
}

fn parse_value(doc: &Json) -> Result<Value, AppError> {
    if let Some(n) = doc.get("i").and_then(Json::as_num) {
        return Ok(Value::Int(n as i64));
    }
    if let Some(x) = doc.get("f").and_then(Json::as_num) {
        return Ok(Value::Float(x));
    }
    if let Some(Json::Bool(b)) = doc.get("b") {
        return Ok(Value::Bool(*b));
    }
    Err(AppError::proto(
        "value must be tagged: {\"i\":..}, {\"f\":..} or {\"b\":..}",
    ))
}

// ---------------------------------------------------------------------
// Wire rendering (used by the client side: grafter-load and tests)
// ---------------------------------------------------------------------

fn write_value_spec(w: &mut JsonWriter, v: &Value) {
    w.begin_obj();
    match v {
        Value::Int(n) => w.key("i").num(*n),
        Value::Float(x) => w.key("f").float(*x),
        Value::Bool(b) => w.key("b").bool(*b),
        Value::Ref(_) => w.key("i").num(0),
    };
    w.end_obj();
}

fn write_program(w: &mut JsonWriter, p: &ProgramSpec) {
    w.key("program").begin_obj();
    w.key("source").str(&p.source);
    w.key("root").str(&p.root);
    w.key("passes").begin_arr();
    for pass in &p.passes {
        w.str(pass);
    }
    w.end_arr();
    w.key("backend").str(&p.backend.to_string());
    w.key("opt_level").str(&format!("{:?}", p.opt_level));
    w.key("fusion").begin_obj();
    w.key("max_group_size").num(p.fusion.max_group_size);
    w.key("max_occurrences").num(p.fusion.max_occurrences);
    w.key("grouping").bool(p.fusion.grouping);
    w.end_obj();
    if !p.args.is_empty() {
        w.key("args").begin_arr();
        for pass in &p.args {
            w.begin_arr();
            for v in pass {
                write_value_spec(w, v);
            }
            w.end_arr();
        }
        w.end_arr();
    }
    w.end_obj();
}

fn write_parallel(w: &mut JsonWriter, p: &ParallelOptions) {
    w.key("parallel").begin_obj();
    w.key("workers").num(p.workers);
    w.key("fork_depth").num(p.fork_depth);
    w.key("seq_cutoff").num(p.seq_cutoff);
    w.end_obj();
}

fn write_input(w: &mut JsonWriter, input: &InputSpec) {
    w.begin_obj();
    match input {
        InputSpec::Gen {
            workload,
            size,
            seed,
        } => {
            w.key("gen").begin_obj();
            w.key("workload").str(workload);
            w.key("size").num(*size);
            w.key("seed").num(*seed);
            w.end_obj();
        }
        InputSpec::Tree(tree) => {
            w.key("tree");
            write_tree(w, tree);
        }
    }
    w.end_obj();
}

fn write_tree(w: &mut JsonWriter, tree: &TreeSpec) {
    w.begin_obj();
    w.key("class").str(&tree.class);
    if !tree.fields.is_empty() {
        w.key("fields").begin_obj();
        for (name, v) in &tree.fields {
            w.key(name);
            write_value_spec(w, v);
        }
        w.end_obj();
    }
    if !tree.children.is_empty() {
        w.key("children").begin_obj();
        for (name, child) in &tree.children {
            w.key(name);
            match child {
                None => {
                    w.null();
                }
                Some(c) => write_tree(w, c),
            }
        }
        w.end_obj();
    }
    w.end_obj();
}

/// Renders a `run` request body.
pub fn render_run(program: &ProgramSpec, input: &InputSpec) -> String {
    render_run_with(program, input, None)
}

/// Renders a `run` request body with optional intra-tree parallelism.
pub fn render_run_with(
    program: &ProgramSpec,
    input: &InputSpec,
    parallel: Option<&ParallelOptions>,
) -> String {
    let mut w = JsonWriter::with_capacity(program.source.len() + 256);
    w.begin_obj();
    w.key("method").str("run");
    write_program(&mut w, program);
    w.key("input");
    write_input(&mut w, input);
    if let Some(p) = parallel {
        write_parallel(&mut w, p);
    }
    w.end_obj();
    w.finish()
}

/// Renders a `run_batch` request body.
pub fn render_run_batch(program: &ProgramSpec, inputs: &[InputSpec], window: usize) -> String {
    render_run_batch_with(program, inputs, window, None)
}

/// Renders a `run_batch` request body with optional intra-tree
/// parallelism.
pub fn render_run_batch_with(
    program: &ProgramSpec,
    inputs: &[InputSpec],
    window: usize,
    parallel: Option<&ParallelOptions>,
) -> String {
    let mut w = JsonWriter::with_capacity(program.source.len() + 256 + 64 * inputs.len());
    w.begin_obj();
    w.key("method").str("run_batch");
    write_program(&mut w, program);
    w.key("inputs").begin_arr();
    for input in inputs {
        write_input(&mut w, input);
    }
    w.end_arr();
    w.key("window").num(window);
    if let Some(p) = parallel {
        write_parallel(&mut w, p);
    }
    w.end_obj();
    w.finish()
}

/// Renders an `explain` request body.
pub fn render_explain(program: &ProgramSpec) -> String {
    let mut w = JsonWriter::with_capacity(program.source.len() + 128);
    w.begin_obj();
    w.key("method").str("explain");
    write_program(&mut w, program);
    w.end_obj();
    w.finish()
}

/// Renders a bare `{"method":M}` request body (`ping`, `stats`).
pub fn render_bare(method: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("method").str(method);
    w.end_obj();
    w.finish()
}

/// Renders the error response body for a failed request.
pub fn render_error(stage: &str, message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("ok").bool(false);
    w.key("error").begin_obj();
    w.key("stage").str(stage);
    w.key("message").str(message);
    w.end_obj();
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"method\":\"ping\"}").unwrap();
        write_frame(&mut wire, "{}").unwrap();
        let mut reader = FrameReader::new(wire.as_slice());
        match reader.read_frame().unwrap() {
            Incoming::Frame(b) => assert_eq!(b, "{\"method\":\"ping\"}"),
            other => panic!("expected frame, got {other:?}"),
        }
        match reader.read_frame().unwrap() {
            Incoming::Frame(b) => assert_eq!(b, "{}"),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(reader.read_frame().unwrap(), Incoming::Closed));
    }

    #[test]
    fn oversized_frame_is_drained_and_reported() {
        let body = "x".repeat(MAX_BODY + 1);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        write_frame(&mut wire, "{}").unwrap();
        let mut reader = FrameReader::new(wire.as_slice());
        match reader.read_frame() {
            Err(ProtoError::Oversized(n)) => assert_eq!(n, MAX_BODY + 1),
            other => panic!("expected oversized, got {other:?}"),
        }
        // The connection survives: the next frame parses.
        assert!(matches!(reader.read_frame().unwrap(), Incoming::Frame(b) if b == "{}"));
    }

    #[test]
    fn absurd_frame_is_fatal() {
        let wire = format!("{}\n", DRAIN_CAP + 1);
        let mut reader = FrameReader::new(wire.as_bytes());
        assert!(matches!(reader.read_frame(), Err(ProtoError::Fatal(_))));
    }

    #[test]
    fn bad_utf8_body_is_typed_not_fatal() {
        let mut wire: Vec<u8> = b"4\n".to_vec();
        wire.extend_from_slice(&[0xff, 0xfe, 0x61, 0x62]);
        wire.push(b'\n');
        wire.extend_from_slice(b"2\n{}\n");
        let mut reader = FrameReader::new(wire.as_slice());
        assert!(matches!(reader.read_frame(), Err(ProtoError::BadUtf8)));
        assert!(matches!(reader.read_frame().unwrap(), Incoming::Frame(b) if b == "{}"));
    }

    #[test]
    fn non_digit_length_header_is_fatal() {
        let mut reader = FrameReader::new(&b"12abc\n{}\n"[..]);
        assert!(matches!(reader.read_frame(), Err(ProtoError::Fatal(_))));
    }

    fn tiny_program() -> ProgramSpec {
        ProgramSpec {
            source: "tree class N { int a = 0; virtual traversal t() {} }".to_string(),
            root: "N".to_string(),
            passes: vec!["t".to_string()],
            backend: Backend::Vm,
            opt_level: OptLevel::O2,
            fusion: FusionOptions::default(),
            args: vec![vec![Value::Float(2.5), Value::Int(3)]],
        }
    }

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let program = tiny_program();
        let input = InputSpec::Tree(TreeSpec {
            class: "N".to_string(),
            fields: vec![("a".to_string(), Value::Int(7))],
            children: Vec::new(),
        });
        let body = render_run(&program, &input);
        match parse_request(&body).expect("round-trips") {
            Request::Run {
                program: p,
                input: InputSpec::Tree(t),
                parallel: None,
            } => {
                assert_eq!(p.source, program.source);
                assert_eq!(p.key(), program.key());
                assert_eq!(t.class, "N");
                assert_eq!(t.fields, vec![("a".to_string(), Value::Int(7))]);
            }
            other => panic!("wrong parse: {other:?}"),
        }

        let body = render_run_batch(
            &program,
            &[
                InputSpec::Gen {
                    workload: "ast".to_string(),
                    size: 64,
                    seed: 7,
                },
                input,
            ],
            5,
        );
        match parse_request(&body).expect("round-trips") {
            Request::RunBatch { inputs, window, .. } => {
                assert_eq!(inputs.len(), 2);
                assert_eq!(window, 5);
                assert!(
                    matches!(&inputs[0], InputSpec::Gen { workload, size, seed } if workload == "ast" && *size == 64 && *seed == 7)
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parallel_field_round_trips_and_clamps() {
        let program = tiny_program();
        let input = InputSpec::Gen {
            workload: "ast".to_string(),
            size: 64,
            seed: 7,
        };
        let par = ParallelOptions {
            workers: 4,
            fork_depth: 3,
            seq_cutoff: 128,
        };
        let body = render_run_with(&program, &input, Some(&par));
        match parse_request(&body).expect("round-trips") {
            Request::Run { parallel, .. } => assert_eq!(parallel, Some(par.clone())),
            other => panic!("wrong parse: {other:?}"),
        }
        let body = render_run_batch_with(&program, &[input], 4, Some(&par));
        match parse_request(&body).expect("round-trips") {
            Request::RunBatch { parallel, .. } => assert_eq!(parallel, Some(par)),
            other => panic!("wrong parse: {other:?}"),
        }

        // Absent field parses as None; absurd worker counts clamp.
        let body = render_run(
            &tiny_program(),
            &InputSpec::Tree(TreeSpec {
                class: "N".to_string(),
                fields: Vec::new(),
                children: Vec::new(),
            }),
        );
        assert!(matches!(
            parse_request(&body).expect("parses"),
            Request::Run { parallel: None, .. }
        ));
        let body = "{\"method\":\"run\",\"program\":{\"source\":\"tree class N { virtual traversal t() {} }\",\"root\":\"N\",\"passes\":[\"t\"]},\"input\":{\"tree\":{\"class\":\"N\"}},\"parallel\":{\"workers\":100000}}";
        match parse_request(body).expect("parses") {
            Request::Run { parallel, .. } => assert_eq!(parallel.expect("present").workers, 64),
            other => panic!("wrong parse: {other:?}"),
        }
        let body = "{\"method\":\"run\",\"program\":{\"source\":\"s\",\"root\":\"N\",\"passes\":[]},\"input\":{\"tree\":{\"class\":\"N\"}},\"parallel\":{}}";
        assert!(
            parse_request(body).is_err(),
            "parallel without workers is refused"
        );
    }

    #[test]
    fn schema_violations_are_typed() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"method\":\"teleport\"}").is_err());
        assert!(parse_request("{\"method\":\"run\"}").is_err());
        let e = parse_request("{}").unwrap_err();
        assert_eq!(e.stage, "proto");
    }

    #[test]
    fn args_hash_distinguishes_values() {
        let a = tiny_program();
        let mut b = tiny_program();
        b.args = vec![vec![Value::Float(2.5), Value::Int(4)]];
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), tiny_program().key());
    }
}
